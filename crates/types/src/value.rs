//! Dynamically typed values flowing through operators.
//!
//! Packet-monitoring queries are overwhelmingly integer-typed (timestamps,
//! IPv4 addresses, lengths, counters), so [`Value`] keeps the integer
//! variants unboxed and cheap to copy. Strings are reference-counted so
//! tuples remain cheap to clone on the hot path.

use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::TypeError;

/// Coarse static type of an expression, used by signature metadata and
/// the query analyzer. This is the compile-time counterpart of
/// [`Value::kind`]: `UInt`/`Int`/`Float` map one-to-one onto the
/// runtime variants, while `Num` ("some numeric kind") and `Any`
/// describe polymorphic positions such as `UMAX`'s result or an
/// unresolvable column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// Statically [`Value::Null`].
    Null,
    /// Boolean.
    Bool,
    /// Unsigned 64-bit integer.
    UInt,
    /// Signed 64-bit integer.
    Int,
    /// Double-precision float.
    Float,
    /// String.
    Str,
    /// Some numeric kind (`UInt`, `Int`, or `Float`), not known which.
    Num,
    /// Statically unknown.
    Any,
}

impl ValueKind {
    /// `true` if values of this kind participate in arithmetic.
    /// `Any`/`Null` pass: they may turn out numeric at runtime.
    pub fn is_numeric(self) -> bool {
        !matches!(self, ValueKind::Str)
    }

    /// Least upper bound of two kinds: the static type of an
    /// expression that may produce either (e.g. the two sides of a
    /// numeric promotion).
    pub fn unify(self, other: ValueKind) -> ValueKind {
        use ValueKind::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, k) | (k, Null) => k,
            (Any, _) | (_, Any) => Any,
            (Float, k) | (k, Float) if k.is_numeric() => Float,
            (a, b) if a.is_numeric() && b.is_numeric() => Num,
            _ => Any,
        }
    }

    /// Short lowercase name, matching [`Value::kind`] where the kinds
    /// coincide.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::UInt => "u64",
            ValueKind::Int => "i64",
            ValueKind::Float => "f64",
            ValueKind::Str => "str",
            ValueKind::Num => "numeric",
            ValueKind::Any => "any",
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar value.
///
/// Arithmetic follows SQL-ish numeric promotion: `U64 op U64 -> U64`
/// (signed if subtraction underflows), any operand `F64` promotes the
/// result to `F64`, and `I64` mixes promote to `I64`.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / undefined value (e.g. an aggregate over an empty group).
    Null,
    /// Boolean, produced by predicates.
    Bool(bool),
    /// Unsigned 64-bit integer: timestamps, lengths, counts, IPv4 addresses.
    U64(u64),
    /// Signed 64-bit integer, produced by subtraction underflow and literals.
    I64(i64),
    /// Double-precision float: thresholds, probabilities, estimates.
    F64(f64),
    /// Interned string (rare on the packet hot path).
    Str(Arc<str>),
}

impl Value {
    /// Short name of this value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
        }
    }

    /// The static [`ValueKind`] of this value.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::U64(_) => ValueKind::UInt,
            Value::I64(_) => ValueKind::Int,
            Value::F64(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// Build a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean. `Null` is `false`; numbers are true iff
    /// nonzero, mirroring the loose C-style predicates of the Gigascope
    /// runtime library.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::U64(v) => *v != 0,
            Value::I64(v) => *v != 0,
            Value::F64(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Convert to `u64`, accepting any non-negative integral value.
    pub fn as_u64(&self) -> Result<u64, TypeError> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) if *v >= 0 => Ok(*v as u64),
            Value::Bool(b) => Ok(*b as u64),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Ok(*v as u64)
            }
            other => Err(TypeError::InvalidConversion { target: "u64", actual: other.kind() }),
        }
    }

    /// Convert to `i64`.
    pub fn as_i64(&self) -> Result<i64, TypeError> {
        match self {
            Value::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            Value::I64(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            Value::F64(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(TypeError::InvalidConversion { target: "i64", actual: other.kind() }),
        }
    }

    /// Convert to `f64`, accepting any numeric value.
    pub fn as_f64(&self) -> Result<f64, TypeError> {
        match self {
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            Value::F64(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as u8 as f64),
            other => Err(TypeError::InvalidConversion { target: "f64", actual: other.kind() }),
        }
    }

    /// Convert to `&str` if this is a string.
    pub fn as_str(&self) -> Result<&str, TypeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(TypeError::InvalidConversion { target: "str", actual: other.kind() }),
        }
    }

    fn numeric_pair(&self, other: &Self, op: &'static str) -> Result<NumPair, TypeError> {
        use Value::*;
        Ok(match (self, other) {
            (F64(a), _) => NumPair::F(*a, other.as_f64().map_err(|_| binop_err(op, self, other))?),
            (_, F64(b)) => NumPair::F(self.as_f64().map_err(|_| binop_err(op, self, other))?, *b),
            (U64(a), U64(b)) => NumPair::U(*a, *b),
            (I64(a), I64(b)) => NumPair::I(*a, *b),
            (U64(a), I64(b)) | (I64(b), U64(a)) => {
                // Mixed signedness: compute in i128 and narrow on use.
                NumPair::Mixed(*a as i128, *b as i128)
            }
            (Bool(a), _) => {
                return U64(*a as u64).numeric_pair(other, op);
            }
            (_, Bool(b)) => {
                return self.numeric_pair(&U64(*b as u64), op);
            }
            _ => return Err(binop_err(op, self, other)),
        })
    }

    /// Addition with numeric promotion.
    pub fn add(&self, other: &Self) -> Result<Value, TypeError> {
        match self.numeric_pair(other, "+")? {
            NumPair::U(a, b) => Ok(Value::U64(a.wrapping_add(b))),
            NumPair::I(a, b) => Ok(Value::I64(a.wrapping_add(b))),
            NumPair::F(a, b) => Ok(Value::F64(a + b)),
            NumPair::Mixed(a, b) => Ok(narrow_i128(a + b)),
        }
    }

    /// Subtraction; `U64 - U64` yields `I64` when the result is negative.
    pub fn sub(&self, other: &Self) -> Result<Value, TypeError> {
        match self.numeric_pair(other, "-")? {
            NumPair::U(a, b) => {
                if a >= b {
                    Ok(Value::U64(a - b))
                } else {
                    Ok(Value::I64(-((b - a) as i64)))
                }
            }
            NumPair::I(a, b) => Ok(Value::I64(a.wrapping_sub(b))),
            NumPair::F(a, b) => Ok(Value::F64(a - b)),
            NumPair::Mixed(a, b) => Ok(narrow_i128(a - b)),
        }
    }

    /// Multiplication with numeric promotion.
    pub fn mul(&self, other: &Self) -> Result<Value, TypeError> {
        match self.numeric_pair(other, "*")? {
            NumPair::U(a, b) => Ok(Value::U64(a.wrapping_mul(b))),
            NumPair::I(a, b) => Ok(Value::I64(a.wrapping_mul(b))),
            NumPair::F(a, b) => Ok(Value::F64(a * b)),
            NumPair::Mixed(a, b) => Ok(narrow_i128(a * b)),
        }
    }

    /// Integer division truncates (this is what `time/60 as tb` relies on);
    /// float division is exact.
    pub fn div(&self, other: &Self) -> Result<Value, TypeError> {
        match self.numeric_pair(other, "/")? {
            NumPair::U(_, 0) | NumPair::I(_, 0) | NumPair::Mixed(_, 0) => {
                Err(TypeError::DivisionByZero)
            }
            NumPair::U(a, b) => Ok(Value::U64(a / b)),
            NumPair::I(a, b) => Ok(Value::I64(a / b)),
            NumPair::F(a, b) => {
                if b == 0.0 {
                    Err(TypeError::DivisionByZero)
                } else {
                    Ok(Value::F64(a / b))
                }
            }
            NumPair::Mixed(a, b) => Ok(narrow_i128(a / b)),
        }
    }

    /// Modulus; errors on zero divisor.
    pub fn rem(&self, other: &Self) -> Result<Value, TypeError> {
        match self.numeric_pair(other, "%")? {
            NumPair::U(_, 0) | NumPair::I(_, 0) | NumPair::Mixed(_, 0) => {
                Err(TypeError::DivisionByZero)
            }
            NumPair::U(a, b) => Ok(Value::U64(a % b)),
            NumPair::I(a, b) => Ok(Value::I64(a % b)),
            NumPair::F(a, b) => {
                if b == 0.0 {
                    Err(TypeError::DivisionByZero)
                } else {
                    Ok(Value::F64(a % b))
                }
            }
            NumPair::Mixed(a, b) => Ok(narrow_i128(a % b)),
        }
    }

    /// Three-way comparison across numeric types and strings.
    ///
    /// `Null` compares equal to `Null` and less than everything else, so
    /// sorting and grouping are total. Cross-kind numeric comparisons
    /// promote to `f64`.
    pub fn compare(&self, other: &Self) -> Result<CmpOrdering, TypeError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, Null) => CmpOrdering::Equal,
            (Null, _) => CmpOrdering::Less,
            (_, Null) => CmpOrdering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (U64(a), U64(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (U64(a), I64(b)) => (*a as i128).cmp(&(*b as i128)),
            (I64(a), U64(b)) => (*a as i128).cmp(&(*b as i128)),
            _ => {
                let a = self.as_f64().map_err(|_| binop_err("<=>", self, other))?;
                let b = other.as_f64().map_err(|_| binop_err("<=>", self, other))?;
                a.partial_cmp(&b).unwrap_or(CmpOrdering::Equal)
            }
        })
    }

    /// Equality via [`Value::compare`].
    pub fn eq_value(&self, other: &Self) -> Result<bool, TypeError> {
        Ok(self.compare(other)? == CmpOrdering::Equal)
    }
}

fn binop_err(op: &'static str, lhs: &Value, rhs: &Value) -> TypeError {
    TypeError::InvalidOperands { op, lhs: lhs.kind(), rhs: Some(rhs.kind()) }
}

fn narrow_i128(v: i128) -> Value {
    if v >= 0 && v <= u64::MAX as i128 {
        Value::U64(v as u64)
    } else {
        Value::I64(v as i64)
    }
}

enum NumPair {
    U(u64, u64),
    I(i64, i64),
    F(f64, f64),
    Mixed(i128, i128),
}

/// Structural equality used for group keys: kinds must match exactly,
/// except numerically equal integers of different signedness, which hash
/// and compare equal so `U64(5)` and `I64(5)` land in the same group.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => *b >= 0 && *a == *b as u64,
            (F64(a), F64(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            // Non-negative I64 hashes like the equal U64 (see PartialEq).
            Value::U64(v) => {
                state.write_u8(2);
                state.write_u64(*v);
            }
            Value::I64(v) if *v >= 0 => {
                state.write_u8(2);
                state.write_u64(*v as u64);
            }
            Value::I64(v) => {
                state.write_u8(3);
                state.write_i64(*v);
            }
            Value::F64(v) => {
                state.write_u8(4);
                state.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(5);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(Value::U64(3).add(&Value::U64(4)).unwrap(), Value::U64(7));
        assert_eq!(Value::U64(3).sub(&Value::U64(4)).unwrap(), Value::I64(-1));
        assert_eq!(Value::U64(4).sub(&Value::U64(3)).unwrap(), Value::U64(1));
        assert_eq!(Value::F64(1.5).add(&Value::U64(1)).unwrap(), Value::F64(2.5));
        assert_eq!(Value::I64(-2).mul(&Value::U64(3)).unwrap(), Value::I64(-6));
        assert_eq!(Value::U64(7).div(&Value::U64(2)).unwrap(), Value::U64(3));
        assert_eq!(Value::U64(7).rem(&Value::U64(2)).unwrap(), Value::U64(1));
    }

    #[test]
    fn integer_division_truncates_like_time_bucketing() {
        // time/60 as tb: the window id of t=119 is 1, of t=120 is 2.
        assert_eq!(Value::U64(119).div(&Value::U64(60)).unwrap(), Value::U64(1));
        assert_eq!(Value::U64(120).div(&Value::U64(60)).unwrap(), Value::U64(2));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(Value::U64(1).div(&Value::U64(0)), Err(TypeError::DivisionByZero));
        assert_eq!(Value::F64(1.0).div(&Value::F64(0.0)), Err(TypeError::DivisionByZero));
        assert_eq!(Value::U64(1).rem(&Value::U64(0)), Err(TypeError::DivisionByZero));
    }

    #[test]
    fn invalid_operands_error() {
        let err = Value::str("a").add(&Value::U64(1)).unwrap_err();
        assert!(matches!(err, TypeError::InvalidOperands { op: "+", .. }));
    }

    #[test]
    fn comparisons_across_kinds() {
        assert_eq!(Value::U64(5).compare(&Value::I64(5)).unwrap(), CmpOrdering::Equal);
        assert_eq!(Value::I64(-1).compare(&Value::U64(0)).unwrap(), CmpOrdering::Less);
        assert_eq!(Value::F64(2.5).compare(&Value::U64(2)).unwrap(), CmpOrdering::Greater);
        assert_eq!(Value::Null.compare(&Value::U64(0)).unwrap(), CmpOrdering::Less);
        assert_eq!(Value::Null.compare(&Value::Null).unwrap(), CmpOrdering::Equal);
        assert_eq!(Value::str("a").compare(&Value::str("b")).unwrap(), CmpOrdering::Less);
    }

    #[test]
    fn mixed_sign_equality_hashes_consistently() {
        // Required for group keys: equal values must have equal hashes.
        assert_eq!(Value::U64(5), Value::I64(5));
        assert_eq!(hash_of(&Value::U64(5)), hash_of(&Value::I64(5)));
        assert_ne!(Value::I64(-5), Value::U64(5));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::U64(1).truthy());
        assert!(!Value::U64(0).truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::str("").truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::U64(7).as_u64().unwrap(), 7);
        assert_eq!(Value::I64(7).as_u64().unwrap(), 7);
        assert!(Value::I64(-7).as_u64().is_err());
        assert_eq!(Value::F64(7.0).as_u64().unwrap(), 7);
        assert!(Value::F64(7.5).as_u64().is_err());
        assert_eq!(Value::U64(7).as_f64().unwrap(), 7.0);
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
        assert!(Value::U64(1).as_str().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::U64(42).to_string(), "42");
        assert_eq!(Value::I64(-1).to_string(), "-1");
        assert_eq!(Value::str("x").to_string(), "x");
    }

    #[test]
    fn value_kind_lattice() {
        use ValueKind::*;
        assert_eq!(Value::U64(1).value_kind(), UInt);
        assert_eq!(Value::F64(1.0).value_kind(), Float);
        assert_eq!(UInt.unify(UInt), UInt);
        assert_eq!(UInt.unify(Float), Float);
        assert_eq!(UInt.unify(Int), Num);
        assert_eq!(Null.unify(Str), Str);
        assert_eq!(Str.unify(UInt), Any);
        assert!(UInt.is_numeric());
        assert!(!Str.is_numeric());
        assert!(Any.is_numeric(), "unknown kinds may be numeric at runtime");
    }

    #[test]
    fn f64_equality_is_bitwise() {
        // NaN == NaN under bitwise semantics, so groups keyed on a float
        // expression cannot multiply without bound.
        let nan = Value::F64(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }
}
