//! `sso` — run sampling queries from the command line against the
//! synthetic feeds.
//!
//! ```sh
//! sso --feed research --seconds 60 \
//!     "SELECT tb, destIP, sum(len), count(*) FROM PKT \
//!      GROUP BY time/20 as tb, destIP \
//!      CLEANING WHEN local_count(1000) = TRUE \
//!      CLEANING BY count(*) + first(current_bucket()) > current_bucket()"
//!
//! sso --explain "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKT ..."
//!
//! sso check queries.sql        # static analysis only; exits 1 on errors
//! sso audit queries.sql        # certify memory bounds + skew safety statically
//! sso optimize queries.sql     # certified multi-query sharing rewrite
//! sso run --metrics - 'QUERY'  # run + dump telemetry snapshots as JSON
//! sso top 'QUERY'              # live metrics view while the query runs
//! ```
//!
//! Options:
//!   --feed research|datacenter|ddos|burst  packet source (default research)
//!   --trace FILE                      read packets from a CSV trace instead
//!   --dump FILE                       also write the packets to a CSV trace
//!   --seconds N                       trace length (default 60)
//!   --seed S                          feed seed (default 1)
//!   --limit R                         print at most R rows per window (default 20)
//!   --shards N                        run N partitioned operator shards (default 1);
//!                                     refuses non-shard-mergeable queries with W102
//!   --routers N|auto                  feed the shards through N supervised router
//!                                     lanes (auto = min(shards, cores/4), at least
//!                                     1); output is byte-identical at any lane
//!                                     count, and a panicked lane degrades one
//!                                     window instead of killing the run
//!   --workers N|auto                  cap worker threads at N (auto = the host's
//!                                     cores): surplus shards multiplex round-robin
//!                                     on pool threads, byte-identical to
//!                                     one-thread-per-shard (default: per-shard)
//!   --fault-plan FILE                 inject faults from a fault-plan file (see
//!                                     `sso-faults`); feed-level events perturb the
//!                                     packets, worker/router events need the
//!                                     sharded runtime (--shards/--routers)
//!   --fault-seed S                    generate a seeded fault plan instead of
//!                                     reading one (same replayable format)
//!   --durable DIR                     persist operator state to DIR: per-shard
//!                                     window checkpoints plus a carry-over WAL,
//!                                     so `sso recover DIR` resumes a killed run
//!                                     with loss bounded to the crash window
//!   --state-budget BYTES              cap live group-table state; shards over
//!                                     budget page cold groups to a spill file
//!                                     under DIR (requires --durable)
//!   --fsync always|never|every=N      WAL durability policy (default never:
//!                                     survives process crashes, not power loss)
//!   --metrics[=FILE]                  collect telemetry; write JSON snapshots to
//!                                     FILE (`-`/omitted = stdout, `*.prom` =
//!                                     Prometheus text of the final snapshot)
//!   --profile[=FILE]                  causal stage tracing: run through the
//!                                     sharded runtime with lineage stamps and
//!                                     print the stage-attribution report; an
//!                                     explicit FILE always gets a flight-recorder
//!                                     dump, bare `--profile` dumps only when a
//!                                     fault trigger fires (panic / straggle /
//!                                     shed / crash; default flight.ssoprof, or
//!                                     under --durable DIR when set)
//!   --meta QUERY                      run a second sampling query over the
//!                                     telemetry snapshots (FROM METRICS)
//!   --explain                         print the plan instead of running
//!   --json                            machine-readable window output
//!
//! `sso run` is an explicit alias for the default run mode. `sso top`
//! runs the query on a background thread and refreshes a metrics table
//! in place until it finishes (windows are counted, not printed); with
//! `--profile` the table gains end-to-end window latency (p50/p99) and
//! the hottest pipeline stage, live from the collector.
//!
//! `sso trace DUMP|DIR` renders a flight-recorder dump written by
//! `--profile` as a human-readable causal timeline, or — with
//! `--chrome FILE` — as Chrome trace-event JSON for chrome://tracing
//! (`about:tracing`). A directory resolves to its `flight.ssoprof`
//! (or the newest `*.ssoprof` inside).
//!
//! `sso recover DIR` replays a durable run from its `MANIFEST`: the
//! original feed is regenerated and re-partitioned across the recorded
//! router-lane cursors (`routers` / `router_cursors` keys), every
//! window already in the store is served back without recomputation,
//! and the run continues from the first unrecorded window. Fault plans
//! are deliberately not replayed — recovery is expected to match the
//! fault-free run.
//!
//! `sso check FILE` runs the static analyzer over every `;`-separated
//! query in FILE without executing anything, printing rustc-style
//! diagnostics with stable codes (E001.., W001..). A query whose FROM
//! names something other than a base stream (PKT/PKTS/TCP/UDP, or
//! METRICS for the telemetry meta-stream) is treated as the high level
//! of a Gigascope cascade: it is checked against the previous query's
//! output schema, and the pair gets the partial-aggregation push-down
//! lint (W101). `--deny-warnings` makes warnings fail the exit code
//! too.
//!
//! `sso audit FILE` goes further: it runs the `sso-analysis` abstract
//! interpretation over the same cascade, certifying a memory ceiling
//! per query against a declared feed envelope (`--feed`, default
//! research), a router-skew verdict at `--shards N`, and degradation
//! behavior (W201–W206). `--budget BYTES` makes the command fail when
//! the certified total exceeds the budget (or cannot be bounded);
//! `--state-budget BYTES` audits a durable run's spill budget (W206
//! fires when it is under the pager's two-page-per-shard floor);
//! `--json` emits the machine-readable `BoundsReport` — including the
//! `durable` section with certified snapshot/WAL bytes per window —
//! plus diagnostics; `--turnstile` additionally flags deletion-unsafe
//! samplers. Nothing is executed: the verdict comes from the paper's
//! closed-form state bounds evaluated symbolically.
//!
//! `sso optimize FILE` runs the certified plan-rewrite optimizer
//! (`sso-rewrite`) over the file's simultaneous query set: plans are
//! normalized to a canonical symbolic form, identical plans over one
//! base stream are deduplicated into share groups, and prefilter
//! clauses every member query implies are hoisted ahead of the fan-out
//! — each applied rewrite carrying a checksummed certificate entry with
//! its discharged side conditions, and the rewritten plan re-audited by
//! `sso-analysis`. `--explain` reports the opportunities as W301
//! instead of applying them; W302 flags plans equivalent modulo
//! constants, W303 explains rewrites blocked by non-mergeable samplers,
//! and W304 spots window periods differing by an integer multiple.

use std::io::Write;

use stream_sampler::obs::{export, metrics_schema, snapshot_tuples, Registry, Snapshot};
use stream_sampler::operator::{OperatorMetrics, OperatorSpec, WindowOutput};
use stream_sampler::prelude::*;
use stream_sampler::query::explain::explain;
use stream_sampler::query::{diag, Span};

struct Options {
    feed: String,
    trace: Option<String>,
    dump: Option<String>,
    seconds: u64,
    seed: u64,
    limit: usize,
    shards: usize,
    /// `--routers N|auto`: supervised router-lane count. `0` = auto
    /// (`min(shards, cores/4).max(1)`); non-zero pins the lane count.
    routers: usize,
    /// `--workers N|auto`: worker-thread cap. `0` = one thread per
    /// shard; `auto` = the host's cores; N pools surplus shards onto
    /// `min(N, shards)` threads (byte-identical results either way).
    workers: usize,
    /// Per-lane segment cursors restored from a MANIFEST by `sso
    /// recover`, so the resumed run re-partitions the regenerated
    /// stream exactly as the crashed run did.
    router_cursors: Option<Vec<u64>>,
    fault_plan: Option<String>,
    fault_seed: Option<u64>,
    durable: Option<String>,
    state_budget: Option<u64>,
    fsync: String,
    /// Resume from an existing store (`sso recover`) instead of
    /// starting it fresh.
    resume: bool,
    metrics: Option<String>,
    /// `--profile[=FILE]`: `-` for report-only (triggered dumps land at
    /// the default path), anything else is an explicit dump target.
    profile: Option<String>,
    meta: Option<String>,
    top: bool,
    explain: bool,
    json: bool,
    query: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sso [run|top] [--feed research|datacenter|ddos|burst] [--trace FILE] \
         [--dump FILE] [--seconds N] [--seed S] [--limit R] [--shards N] [--routers N|auto] \
         [--workers N|auto] [--fault-plan FILE] [--fault-seed S] \
         [--durable DIR] [--state-budget BYTES] [--fsync always|never|every=N] \
         [--metrics[=FILE]] [--profile[=FILE]] [--meta QUERY] [--explain] [--json] 'QUERY'\n\
         \x20      sso recover [--json] [--limit R] [--metrics[=FILE]] STORE-DIR\n\
         \x20      sso trace [--chrome FILE] [--limit N] DUMP-FILE|DIR\n\
         \x20      sso check [--json] [--deny-warnings] QUERY-FILE\n\
         \x20      sso audit [--json] [--deny-warnings] [--feed NAME] [--shards N] \
         [--budget BYTES] [--state-budget BYTES] [--turnstile] QUERY-FILE\n\
         \x20      sso optimize [--json] [--deny-warnings] [--explain] QUERY-FILE"
    );
    std::process::exit(2);
}

use stream_sampler::analysis::split_statements;

/// `sso check [--json] FILE`: statically analyze every query in FILE,
/// printing rustc-style diagnostics — or, with `--json`, one JSON
/// object per diagnostic per line (code, span, message, severity) for
/// editors and CI. Exits 0 when clean (warnings allowed), 1 when any
/// query has errors, 2 on usage or I/O problems.
fn run_check(args: &[String]) -> ! {
    let mut json = false;
    let mut deny_warnings = false;
    let mut paths = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            _ => paths.push(a),
        }
    }
    let [path] = paths[..] else {
        eprintln!("usage: sso check [--json] [--deny-warnings] QUERY-FILE");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let statements = split_statements(&text);
    if statements.is_empty() {
        eprintln!("error: {path} contains no queries");
        std::process::exit(2);
    }

    let config = PlannerConfig::standard();
    // Collect every diagnostic (spans rebased onto the file) before
    // printing, so the cross-statement W103 lint can be appended and
    // duplicates collapsed once over the whole batch.
    let mut all: Vec<stream_sampler::query::Diagnostic> = Vec::new();
    // Consecutive queries form a cascade: each one runs over the
    // previous operator's output rows.
    let mut prev: Option<(stream_sampler::query::Query, OperatorSpec)> = None;
    for (base, stmt) in statements {
        let mut diags;
        let mut next = None;
        match parse_query(stmt) {
            Ok(q) => {
                // A base-stream name (PKT-family or the METRICS
                // meta-stream) starts a fresh pipeline; any other FROM
                // name reads the previous query's output (Gigascope
                // highs read a named low).
                let base_schema = base_stream_schema(&q.from.text);
                let base_stream = base_schema.is_some();
                let schema = match (&prev, base_schema) {
                    (Some((_, spec)), None) => spec.output_schema(&q.from.text),
                    (_, Some(s)) => s,
                    (None, None) => Packet::schema(),
                };
                diags = stream_sampler::query::analyze(&q, &schema, &config);
                if let Some((prev_q, _)) = &prev {
                    if !base_stream {
                        diags.extend(stream_sampler::gigascope::check_pushdown(prev_q, &q));
                    }
                }
                if !diag::has_errors(&diags) {
                    if let Ok(spec) = stream_sampler::query::plan(&q, &schema, &config) {
                        next = Some((q, spec));
                    }
                }
            }
            // Re-run through check() to get the E100/E101 diagnostic
            // form of lex/parse failures.
            Err(_) => diags = stream_sampler::query::check(stmt, &Packet::schema(), &config),
        }
        // Re-base spans from the statement onto the whole file so line
        // numbers match the file the user is editing.
        for d in &mut diags {
            if !d.span.is_dummy() {
                d.span = Span::new(d.span.start + base, d.span.end + base);
            }
        }
        all.extend(diags);
        prev = next;
    }
    // Cross-statement lint: identical normalized prefilters over the
    // same base stream (W103; spans already file-based).
    all.extend(stream_sampler::rewrite::check_file_prefilters(&text));
    // Multi-statement files can repeat the same finding once per
    // statement (dummy-span warnings especially); emit each once.
    diag::dedup_diagnostics(&mut all);

    let errors = all.iter().filter(|d| d.is_error()).count();
    let warnings = all.len() - errors;
    // Ignore write errors so `sso check | head` exits quietly on a
    // closed pipe instead of panicking.
    let mut out = std::io::stdout().lock();
    for d in &all {
        let _ = if json {
            writeln!(out, "{}", d.to_json())
        } else {
            writeln!(out, "{}", diag::render_one(&text, path, d))
        };
    }
    drop(out);
    // The human summary line would corrupt a JSON stream; consumers
    // count objects (and read the exit code) instead.
    if !json {
        let mut out = std::io::stdout().lock();
        let _ = match (errors, warnings) {
            (0, 0) => writeln!(out, "{path}: no problems found"),
            (e, w) => writeln!(out, "{path}: {e} error(s), {w} warning(s)"),
        };
    }
    std::process::exit(if errors > 0 || (deny_warnings && warnings > 0) { 1 } else { 0 });
}

/// `sso audit [--json] [--deny-warnings] [--feed NAME] [--shards N]
/// [--budget BYTES] [--turnstile] FILE`: run the static
/// abstract-interpretation pass over every query in FILE, printing the
/// certified bounds (or the JSON `BoundsReport`) plus any W2xx
/// diagnostics. Exits 0 when the file certifies cleanly, 1 on errors,
/// budget violations, or (with `--deny-warnings`) any warning, 2 on
/// usage or I/O problems.
fn run_audit(args: &[String]) -> ! {
    use stream_sampler::analysis::AuditOptions;

    let usage = || -> ! {
        eprintln!(
            "usage: sso audit [--json] [--deny-warnings] [--feed NAME] [--shards N] \
             [--routers N] [--budget BYTES] [--state-budget BYTES] [--turnstile] QUERY-FILE"
        );
        std::process::exit(2);
    };
    let mut opts = AuditOptions::default();
    let mut json = false;
    let mut deny_warnings = false;
    let mut path = None;
    let mut i = 0usize;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i - 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        let a = args[i].clone();
        i += 1;
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--turnstile" => opts.turnstile = true,
            "--feed" => opts.feed = value(&mut i),
            "--shards" => {
                opts.shards = value(&mut i)
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--routers" => {
                opts.routers = value(&mut i)
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                opts.budget = Some(value(&mut i).parse::<u64>().unwrap_or_else(|_| usage()))
            }
            "--state-budget" => {
                opts.state_budget = Some(value(&mut i).parse::<u64>().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") && path.is_none() => path = Some(p.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    if stream_sampler::netgen::feed_profile(&opts.feed).is_none() {
        eprintln!(
            "error: no feed envelope named `{}` (research | datacenter | ddos | burst)",
            opts.feed
        );
        std::process::exit(2);
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    if stream_sampler::analysis::split_statements(&text).is_empty() {
        eprintln!("error: {path} contains no queries");
        std::process::exit(2);
    }

    let outcome = stream_sampler::analysis::audit_file(&text, &opts);
    // Identical `(code, span)` findings from different statements (e.g.
    // dummy-span file-level warnings) print once.
    let mut diags = outcome.diagnostics.clone();
    diag::dedup_diagnostics(&mut diags);
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;

    let mut out = std::io::stdout().lock();
    if json {
        // One object: the bounds certificate plus every diagnostic, so
        // CI consumes a single line per audited file.
        let lines: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
        let _ = writeln!(
            out,
            "{{\"report\":{},\"diagnostics\":[{}]}}",
            outcome.report.to_json(),
            lines.join(",")
        );
    } else {
        for d in &diags {
            let _ = writeln!(out, "{}", diag::render_one(&text, &path, d));
        }
        for s in &outcome.report.statements {
            let _ = writeln!(
                out,
                "{path}: {}: {} over {} @ {} rows/s -> groups <= {}, state <= {} bytes \
                 ({}, {}mergeable, skew {})",
                s.name,
                s.sampler.label(),
                s.stream,
                s.rows_per_sec,
                s.groups_bound,
                s.state_bytes,
                match s.window_secs {
                    Some(w) => format!("{w}s window"),
                    None => "no window".to_string(),
                },
                if s.mergeable { "" } else { "not " },
                s.skew,
            );
        }
        let durable = outcome.report.durable();
        let _ = writeln!(
            out,
            "{path}: durable: snapshot <= {} B/window, WAL <= {} B/window, \
             spill pages <= {}, min --state-budget {}",
            durable.snapshot_bytes_per_window,
            durable.wal_bytes_per_window,
            durable.spill_pages,
            durable.min_state_budget,
        );
        let total = outcome.report.total_state_bytes();
        let _ = match outcome.report.budget {
            Some(b) if outcome.budget_exceeded() => {
                writeln!(out, "{path}: BUDGET EXCEEDED: certified {total} bytes > budget {b}")
            }
            Some(b) => writeln!(out, "{path}: certified {total} bytes within budget {b}"),
            None => writeln!(out, "{path}: certified total state <= {total} bytes"),
        };
    }
    let fail = errors > 0 || outcome.budget_exceeded() || (deny_warnings && warnings > 0);
    std::process::exit(if fail { 1 } else { 0 });
}

/// `sso optimize [--json] [--deny-warnings] [--explain] FILE`: run the
/// certified plan-rewrite optimizer (`sso-rewrite`) over every query in
/// FILE. The default mode applies the sharing rewrites — deduplicating
/// identical normalized plans and hoisting a shared prefilter — and
/// prints the rewrite certificate plus the re-audit verdict; `--explain`
/// reports the same opportunities as W301 lints without applying
/// anything. Exits 0 when clean, 1 on errors, a failed re-audit, or
/// (with `--deny-warnings`) any warning, 2 on usage or I/O problems.
fn run_optimize(args: &[String]) -> ! {
    use stream_sampler::rewrite::{
        optimize_file, outcome_to_json, render_summary, OptimizeOptions,
    };

    let usage = || -> ! {
        eprintln!("usage: sso optimize [--json] [--deny-warnings] [--explain] QUERY-FILE");
        std::process::exit(2);
    };
    let mut json = false;
    let mut deny_warnings = false;
    let mut explain_only = false;
    let mut path = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--explain" => explain_only = true,
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") && path.is_none() => path = Some(p.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    if stream_sampler::analysis::split_statements(&text).is_empty() {
        eprintln!("error: {path} contains no queries");
        std::process::exit(2);
    }

    let opts = OptimizeOptions { apply: !explain_only, ..OptimizeOptions::default() };
    let outcome = optimize_file(&text, &opts);
    let errors = outcome.diagnostics.iter().filter(|d| d.is_error()).count();
    let warnings = outcome.diagnostics.len() - errors;

    let mut out = std::io::stdout().lock();
    if json {
        // One object per file: the rewrite report (clusters, certificate,
        // shared plans, re-audit) plus every diagnostic.
        let _ = writeln!(out, "{}", outcome_to_json(&outcome));
    } else {
        for d in &outcome.diagnostics {
            let _ = writeln!(out, "{}", diag::render_one(&text, &path, d));
        }
        let _ = write!(out, "{}", render_summary(&outcome));
    }
    let fail = errors > 0 || !outcome.reaudit.ok || (deny_warnings && warnings > 0);
    std::process::exit(if fail { 1 } else { 0 });
}

fn parse_args(argv: &[String], top: bool) -> Options {
    let mut opts = Options {
        feed: "research".to_string(),
        trace: None,
        dump: None,
        seconds: 60,
        seed: 1,
        limit: 20,
        shards: 1,
        routers: 0,
        workers: 0,
        router_cursors: None,
        fault_plan: None,
        fault_seed: None,
        durable: None,
        state_budget: None,
        fsync: "never".to_string(),
        resume: false,
        metrics: None,
        profile: None,
        meta: None,
        top,
        explain: false,
        json: false,
        query: None,
    };
    let mut i = 0usize;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i - 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        let a = argv[i].clone();
        i += 1;
        match a.as_str() {
            "--feed" => opts.feed = value(&mut i),
            "--trace" => opts.trace = Some(value(&mut i)),
            "--dump" => opts.dump = Some(value(&mut i)),
            "--seconds" => opts.seconds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--limit" => opts.limit = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => {
                opts.shards = value(&mut i)
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--routers" => {
                // `auto` and `0` both mean the core-count default; any
                // positive N pins the supervised lane count.
                opts.routers = match value(&mut i).as_str() {
                    "auto" => 0,
                    n => n.parse::<usize>().ok().unwrap_or_else(|| usage()),
                }
            }
            "--workers" => {
                // `0` keeps one thread per shard; `auto` caps at the
                // host's cores; N pools onto min(N, shards) threads.
                opts.workers = match value(&mut i).as_str() {
                    "auto" => std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1),
                    n => n.parse::<usize>().ok().unwrap_or_else(|| usage()),
                }
            }
            "--fault-plan" => opts.fault_plan = Some(value(&mut i)),
            "--fault-seed" => {
                opts.fault_seed = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--durable" => opts.durable = Some(value(&mut i)),
            "--state-budget" => {
                opts.state_budget = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--fsync" => opts.fsync = value(&mut i),
            "--metrics" => {
                // Optional target: a following bare `-` selects stdout
                // explicitly (also the default); files use `--metrics=FILE`.
                if argv.get(i).map(String::as_str) == Some("-") {
                    i += 1;
                }
                opts.metrics = Some("-".to_string());
            }
            s if s.starts_with("--metrics=") => {
                opts.metrics = Some(s["--metrics=".len()..].to_string())
            }
            "--profile" => opts.profile = Some("-".to_string()),
            s if s.starts_with("--profile=") => {
                opts.profile = Some(s["--profile=".len()..].to_string())
            }
            "--meta" => opts.meta = Some(value(&mut i)),
            "--explain" => opts.explain = true,
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with("--") && opts.query.is_none() => opts.query = Some(q.to_string()),
            _ => usage(),
        }
    }
    if opts.query.is_none() {
        usage();
    }
    if opts.state_budget.is_some() && opts.durable.is_none() {
        eprintln!("error: --state-budget requires --durable DIR (the spill file lives there)");
        std::process::exit(2);
    }
    if let Err(e) = stream_sampler::store::FsyncPolicy::parse(&opts.fsync) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    opts
}

/// `sso recover [--json] [--limit R] [--metrics[=FILE]] STORE-DIR`:
/// rebuild the run configuration from the store's `MANIFEST` and re-run
/// it with `resume = true` — recorded windows are served back from the
/// store, and execution picks up at the first unrecorded window.
fn recover_options(args: &[String]) -> Options {
    let usage = || -> ! {
        eprintln!("usage: sso recover [--json] [--limit R] [--metrics[=FILE]] STORE-DIR");
        std::process::exit(2);
    };
    let mut json = false;
    let mut limit = 20usize;
    let mut metrics = None;
    let mut dir: Option<String> = None;
    let mut i = 0usize;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i - 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        let a = args[i].clone();
        i += 1;
        match a.as_str() {
            "--json" => json = true,
            "--limit" => limit = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--metrics" => metrics = Some("-".to_string()),
            s if s.starts_with("--metrics=") => metrics = Some(s["--metrics=".len()..].to_string()),
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") && dir.is_none() => dir = Some(p.to_string()),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let manifest =
        stream_sampler::store::read_manifest(std::path::Path::new(&dir)).unwrap_or_else(|e| {
            eprintln!("error: cannot read {dir}/MANIFEST: {e}");
            std::process::exit(1);
        });
    let get = |k: &str| manifest.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
    let require = |k: &str| {
        get(k).unwrap_or_else(|| {
            eprintln!(
                "error: {dir}/MANIFEST has no `{k}` entry; was the run started with --durable?"
            );
            std::process::exit(1);
        })
    };
    let parse_num = |k: &str, v: String| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {dir}/MANIFEST: bad `{k}` value `{v}`");
            std::process::exit(1);
        })
    };
    let query = require("query");
    let seconds = parse_num("seconds", require("seconds"));
    let seed = parse_num("seed", require("seed"));
    let shards = parse_num("shards", require("shards")) as usize;
    let state_budget = get("state_budget").map(|v| parse_num("state_budget", v));
    // The lane partition is part of the recorded run shape: replaying
    // the exact cursors (not re-deriving them on this machine's core
    // count) is what keeps the resumed run byte-identical. Manifests
    // from single-router builds carry neither key; 0/None falls back to
    // this machine's auto default.
    let routers = get("routers").map(|v| parse_num("routers", v) as usize).unwrap_or(0);
    let router_cursors = get("router_cursors").map(|v| {
        v.split(',').map(|c| parse_num("router_cursors", c.to_string())).collect::<Vec<u64>>()
    });
    Options {
        feed: get("feed").unwrap_or_else(|| "research".to_string()),
        trace: get("trace"),
        dump: None,
        seconds,
        seed,
        limit,
        shards,
        routers,
        workers: 0,
        router_cursors,
        // Fault plans are deliberately not replayed: recovery must
        // converge on the fault-free output, and re-arming the crash
        // event would kill the resumed run at the same tuple again.
        fault_plan: None,
        fault_seed: None,
        durable: Some(dir),
        state_budget,
        fsync: get("fsync").unwrap_or_else(|| "never".to_string()),
        resume: true,
        metrics,
        profile: None,
        meta: None,
        top: false,
        explain: false,
        json,
        query: Some(query),
    }
}

/// `sso trace [--chrome FILE] [--limit N] DUMP-FILE|DIR`: render a
/// flight-recorder dump as a human-readable causal timeline, or as
/// Chrome trace-event JSON (`--chrome`, `-` for stdout) that
/// chrome://tracing and Perfetto load directly. A directory argument
/// resolves to its `flight.ssoprof`, falling back to the newest
/// `*.ssoprof` file inside (crash dumps under `--durable DIR`).
fn run_trace(args: &[String]) -> ! {
    let usage = || -> ! {
        eprintln!("usage: sso trace [--chrome FILE] [--limit N] DUMP-FILE|DIR");
        std::process::exit(2);
    };
    let mut chrome: Option<String> = None;
    let mut limit = 64usize;
    let mut target: Option<String> = None;
    let mut i = 0usize;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i - 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        let a = args[i].clone();
        i += 1;
        match a.as_str() {
            "--chrome" => chrome = Some(value(&mut i)),
            "--limit" => limit = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") && target.is_none() => target = Some(p.to_string()),
            _ => usage(),
        }
    }
    let Some(target) = target else { usage() };
    let path = resolve_dump_path(std::path::Path::new(&target)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let dump = stream_sampler::profile::read_dump_file(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    match chrome {
        Some(out) => {
            let body = stream_sampler::profile::chrome_trace_json(&dump);
            if out == "-" {
                print!("{body}");
            } else if let Err(e) = std::fs::write(&out, body) {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(1);
            } else {
                eprintln!(
                    "# wrote {} trace events to {out} — open chrome://tracing and load it",
                    dump.event_count()
                );
            }
        }
        None => print!("{}", stream_sampler::profile::render_timeline(&dump, limit)),
    }
    std::process::exit(0);
}

/// A file argument is used as-is; a directory resolves to its
/// `flight.ssoprof` or, failing that, the newest `*.ssoprof` inside.
fn resolve_dump_path(target: &std::path::Path) -> Result<std::path::PathBuf, String> {
    if !target.is_dir() {
        return Ok(target.to_path_buf());
    }
    let canonical = target.join(stream_sampler::profile::DUMP_FILE);
    if canonical.is_file() {
        return Ok(canonical);
    }
    let entries = std::fs::read_dir(target).map_err(|e| format!("{}: {e}", target.display()))?;
    let mut newest: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("ssoprof") {
            continue;
        }
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        if newest.as_ref().is_none_or(|(t, _)| mtime > *t) {
            newest = Some((mtime, path));
        }
    }
    newest
        .map(|(_, p)| p)
        .ok_or_else(|| format!("{}: no flight.ssoprof or *.ssoprof dump found", target.display()))
}

/// What one query execution produced, gathered so printing (or the live
/// `top` view) can happen outside the execution path.
struct ExecResult {
    windows: Vec<WindowOutput>,
    shard_lines: Vec<String>,
    /// Run-level coverage (1.0 unless faults degraded the output).
    coverage: f64,
}

/// Optional instruments a run carries: fault plan, metrics registry,
/// stage profiler. Bundled so `execute_query` takes one handle.
#[derive(Clone, Copy, Default)]
struct Attachments<'a> {
    faults: Option<&'a std::sync::Arc<FaultPlan>>,
    registry: Option<&'a Registry>,
    profiler: Option<&'a stream_sampler::profile::Profiler>,
}

/// Run the query over `packets`, single-instance or sharded. When a
/// registry is attached the run is fully instrumented and a snapshot is
/// pushed per closed window (single-instance) plus one final snapshot.
fn execute_query(
    opts: &Options,
    parsed: &stream_sampler::query::Query,
    spec: OperatorSpec,
    packets: &[Packet],
    att: Attachments<'_>,
    snapshots: &mut Vec<Snapshot>,
) -> Result<ExecResult, String> {
    let Attachments { faults, registry, profiler } = att;
    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let mut result = ExecResult { windows: Vec::new(), shard_lines: Vec::new(), coverage: 1.0 };
    // Durable and profiled runs always go through the sharded runtime —
    // that is where the per-shard store and the lineage-stamped stage
    // pipeline live — even at --shards 1.
    if opts.shards > 1 || opts.routers != 0 || opts.durable.is_some() || profiler.is_some() {
        let make = |_shard: usize| {
            stream_sampler::query::plan(parsed, &schema, &config)
                .map_err(|e| stream_sampler::operator::OpError::InvalidSpec(e.to_string()))
        };
        let mut cfg = RuntimeConfig::new(opts.shards)
            .with_routers(opts.routers)
            .with_worker_cap(opts.workers);
        if let Some(cursors) = &opts.router_cursors {
            cfg = cfg.with_router_cursors(cursors.clone());
        }
        // Pre-size group tables and rings from the static audit's
        // certified ceilings. With --trace the declared envelope may
        // not describe the input, but the hints stay sound: reserve()
        // caps at MAX_RESERVE and the certified bounds are upper
        // bounds under any rate for the sampler-capped dimensions.
        if let Some(text) = opts.query.as_deref() {
            let audit_opts = stream_sampler::analysis::AuditOptions {
                feed: opts.feed.clone(),
                shards: opts.shards,
                routers: cfg.resolved_routers(),
                ..Default::default()
            };
            let outcome = stream_sampler::analysis::audit_file(text, &audit_opts);
            if let Some(s) = outcome.report.statements.first() {
                let hints = s.sizing_hints(opts.shards, cfg.resolved_routers(), cfg.batch_size);
                cfg = cfg.with_sizing(hints);
            }
        }
        if let Some(reg) = registry {
            cfg = cfg.with_registry(reg.clone());
        }
        if let Some(p) = profiler {
            cfg = cfg.with_profile(p.clone());
        }
        if let Some(plan) = faults {
            cfg = cfg.with_faults(plan.clone());
        }
        if let Some(dir) = &opts.durable {
            let mut durability =
                stream_sampler::runtime::DurabilityConfig::new(std::path::PathBuf::from(dir));
            durability.fsync = stream_sampler::store::FsyncPolicy::parse(&opts.fsync)?;
            durability.state_budget = opts.state_budget;
            durability.resume = opts.resume;
            cfg = cfg.with_durability(durability);
        }
        let report = match stream_sampler::gigascope::run_plan_sharded(
            Box::new(SelectionNode::pass_all()),
            make,
            &cfg,
            packets.to_vec(),
        ) {
            Ok(report) => report,
            Err(stream_sampler::gigascope::ShardedRunError::Runtime(
                stream_sampler::runtime::RuntimeError::Crashed { at_tuple },
            )) => {
                let hint = opts
                    .durable
                    .as_deref()
                    .map(|d| format!("; resume with `sso recover {d}`"))
                    .unwrap_or_default();
                // The runtime wrote the flight recorder after joining
                // workers, so the dump is on disk by the time the crash
                // surfaces here.
                let dump = profiler
                    .filter(|p| p.triggered().is_some())
                    .and_then(|p| p.dump_path())
                    .map(|d| format!("; flight recorder: sso trace {}", d.display()))
                    .unwrap_or_default();
                return Err(format!("injected crash fired at stream tuple {at_tuple}{hint}{dump}"));
            }
            Err(e) => return Err(e.to_string()),
        };
        result.coverage = report.coverage;
        for s in &report.shards {
            result.shard_lines.push(format!(
                "# shard {}: {} tuples, {} windows, {} stalls, {} dropped, {} shed, \
                 {} quarantined",
                s.shard,
                s.tuples(),
                s.windows(),
                s.stalls(),
                s.dropped(),
                s.shed(),
                s.quarantines()
            ));
        }
        if report.degraded() {
            result.shard_lines.push(format!(
                "# DEGRADED: coverage {:.4}{}",
                report.coverage,
                if report.stragglers.is_empty() {
                    String::new()
                } else {
                    format!(", stragglers {:?}", report.stragglers)
                }
            ));
        }
        result.windows = report.windows;
    } else {
        let mut op = SamplingOperator::new(spec).map_err(|e| e.to_string())?;
        if let Some(reg) = registry {
            op.set_metrics(OperatorMetrics::register(reg, ""));
        }
        for pkt in packets {
            if let Some(w) = op.process(&pkt.to_tuple()).map_err(|e| e.to_string())? {
                if let Some(reg) = registry {
                    snapshots.push(reg.snapshot());
                }
                result.windows.push(w);
            }
        }
        if let Some(w) = op.finish().map_err(|e| e.to_string())? {
            result.windows.push(w);
        }
    }
    // Fold the profiler's lanes into the registry before the final
    // snapshot so `prof.*` metrics reach `--metrics` output and the
    // `--meta` METRICS stream.
    if let (Some(p), Some(reg)) = (profiler, registry) {
        p.fold_into(reg);
    }
    if let Some(reg) = registry {
        snapshots.push(reg.snapshot());
    }
    Ok(result)
}

/// Render a snapshot as the `sso top` table. A profiler (from
/// `--profile`) adds the live end-to-end latency / hottest-stage line.
fn render_top(snap: &Snapshot, profiler: Option<&stream_sampler::profile::Profiler>) -> String {
    let mut out = String::new();
    out.push_str(&format!("sso top — snapshot #{} ({} metrics)\n", snap.seq, snap.metrics.len()));
    out.push_str(&format!("{:<28} {:<12} {:>10} {:>16}\n", "METRIC", "LABEL", "KIND", "VALUE"));
    for m in &snap.metrics {
        out.push_str(&format!(
            "{:<28} {:<12} {:>10} {:>16.3}\n",
            m.name,
            m.label,
            m.kind.as_str(),
            m.scalar()
        ));
    }
    out.push_str(&render_shard_health(snap));
    if let Some(p) = profiler {
        out.push_str(&render_top_profile(p));
    }
    out
}

/// The `--profile` section of the `sso top` view: end-to-end window
/// latency quantiles and the hottest pipeline stage, folded live from
/// the lanes' published suffixes (merge-on-read; no locks taken on the
/// record path).
fn render_top_profile(p: &stream_sampler::profile::Profiler) -> String {
    use stream_sampler::profile::fmt_ns;
    let r = p.report();
    if r.stages.is_empty() {
        return String::new();
    }
    let hottest = match r.stages.iter().find(|s| Some(s.stage) == r.dominant) {
        Some(s) => format!("{} ({:.1}%)", s.stage.name(), s.share_pct),
        None => "-".to_string(),
    };
    let latency = if r.window_count > 0 {
        format!(
            "p50 {}  p99 {}  ({} windows)",
            fmt_ns(r.windows.quantile(0.50)),
            fmt_ns(r.windows.quantile(0.99)),
            r.window_count
        )
    } else {
        "(no windows yet)".to_string()
    };
    format!("\n{:<18} {latency}\n{:<18} {hottest}\n", "E2E LATENCY", "HOTTEST STAGE")
}

/// The per-shard health section of the `sso top` view: one row per
/// shard with its delivery, loss, and fault columns, plus the run-level
/// coverage gauge. Empty for single-instance runs (no `rt.*` shard
/// metrics in the snapshot).
fn render_shard_health(snap: &Snapshot) -> String {
    // label "shard=N" → [tuples, windows, stalls, dropped, shed,
    // quarantines, ckpt age, resident spill bytes]. The last two only
    // appear on durable runs (`store.*` gauges); the columns render
    // anyway so the table shape is stable.
    const COLS: [&str; 8] = [
        "rt.tuples",
        "rt.windows",
        "rt.stalls",
        "rt.dropped",
        "rt.shed_tuples",
        "rt.quarantines",
        "store.ckpt_age",
        "store.resident_bytes",
    ];
    let mut shards: Vec<(usize, [f64; 8])> = Vec::new();
    for m in &snap.metrics {
        let Some(col) = COLS.iter().position(|&c| c == m.name) else { continue };
        let Some(shard) = m.label.strip_prefix("shard=").and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let row = match shards.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, row)) => row,
            None => {
                shards.push((shard, [0.0; 8]));
                &mut shards.last_mut().expect("just pushed").1
            }
        };
        row[col] = m.scalar();
    }
    if shards.is_empty() {
        return String::new();
    }
    shards.sort_by_key(|(s, _)| *s);
    let mut out = String::new();
    out.push_str(&format!(
        "\n{:<6} {:>12} {:>9} {:>8} {:>9} {:>9} {:>12} {:>9} {:>12}\n",
        "SHARD",
        "TUPLES",
        "WINDOWS",
        "STALLS",
        "DROPPED",
        "SHED",
        "QUARANTINED",
        "CKPT_AGE",
        "SPILL_RES"
    ));
    for (shard, row) in &shards {
        out.push_str(&format!(
            "{:<6} {:>12} {:>9} {:>8} {:>9} {:>9} {:>12} {:>9} {:>12}\n",
            shard, row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7]
        ));
    }
    out.push_str(&render_router_health(snap));
    if let Some(cov) = snap.metrics.iter().find(|m| m.name == "rt.coverage") {
        let val = cov.scalar();
        out.push_str(&format!(
            "coverage {:.4}{}\n",
            val,
            if val < 1.0 { "  ** DEGRADED **" } else { "" }
        ));
    }
    out
}

/// The ROUTERS rows of the `sso top` health table: one line per
/// supervised router lane with its routed-tuple count, batch count (the
/// per-lane `rt.router_batch_tuples` histogram's observation count),
/// quarantines, and unrouted (uncovered) loss mass. Empty for
/// single-instance runs.
fn render_router_health(snap: &Snapshot) -> String {
    // label "router=R" → [tuples, batches, quarantines, uncovered].
    let mut routers: Vec<(usize, [f64; 4])> = Vec::new();
    for m in &snap.metrics {
        let col = match m.name {
            "rt.router_tuples" => 0,
            "rt.router_batch_tuples" => 1,
            "rt.router_quarantines" => 2,
            "rt.router_uncovered" => 3,
            _ => continue,
        };
        let Some(router) = m.label.strip_prefix("router=").and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let row = match routers.iter_mut().find(|(r, _)| *r == router) {
            Some((_, row)) => row,
            None => {
                routers.push((router, [0.0; 4]));
                &mut routers.last_mut().expect("just pushed").1
            }
        };
        // The batch histogram's scalar is total tuples; the column
        // reports how many batches the lane cut.
        row[col] = if col == 1 { m.hits() as f64 } else { m.scalar() };
    }
    if routers.is_empty() {
        return String::new();
    }
    routers.sort_by_key(|(r, _)| *r);
    let mut out = String::new();
    out.push_str(&format!(
        "\n{:<6} {:>12} {:>9} {:>12} {:>10}\n",
        "ROUTER", "TUPLES", "BATCHES", "QUARANTINED", "UNCOVERED"
    ));
    for (router, row) in &routers {
        out.push_str(&format!(
            "{:<6} {:>12} {:>9} {:>12} {:>10}\n",
            router, row[0], row[1], row[2], row[3]
        ));
    }
    out
}

/// Write collected snapshots to the `--metrics` target: `-` prints the
/// JSON document to stdout, `*.prom` writes Prometheus text of the last
/// snapshot, anything else gets the JSON document as a file.
fn write_metrics(target: &str, snapshots: &[Snapshot]) {
    if target == "-" {
        print!("{}", export::snapshots_to_json(snapshots));
        return;
    }
    let body = if target.ends_with(".prom") {
        snapshots.last().map(export::snapshot_to_prometheus).unwrap_or_default()
    } else {
        export::snapshots_to_json(snapshots)
    };
    if let Err(e) = std::fs::write(target, body) {
        eprintln!("error: cannot write {target}: {e}");
        std::process::exit(1);
    }
}

/// Run the `--meta` query over the collected snapshots: snapshots are
/// rendered as METRICS tuples (ordered by snapshot `seq`) and fed to a
/// second sampling operator — the DSMS monitoring the DSMS.
fn run_meta_query(meta_text: &str, snapshots: &[Snapshot], opts: &Options) {
    let config = PlannerConfig::standard();
    let schema = metrics_schema();
    let mut op = match compile(meta_text, &schema, &config) {
        Ok(op) => op,
        Err(e) => {
            eprintln!("error: meta query: {e}");
            std::process::exit(1);
        }
    };
    let tuples: Vec<Tuple> = snapshots.iter().flat_map(snapshot_tuples).collect();
    let windows = match op.run(tuples.iter()) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: meta query: {e}");
            std::process::exit(1);
        }
    };
    let meta_parsed = parse_query(meta_text).expect("meta query parsed by compile");
    let meta_spec =
        stream_sampler::query::plan(&meta_parsed, &schema, &config).expect("meta query planned");
    let columns: Vec<String> = meta_spec.select.iter().map(|(n, _)| n.clone()).collect();
    if !opts.json {
        eprintln!("# meta query over {} snapshots ({} tuples)", snapshots.len(), tuples.len());
    }
    for w in &windows {
        print_window(w, &columns, opts);
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut top = false;
    let mut recovered: Option<Options> = None;
    match argv.first().map(String::as_str) {
        Some("check") => run_check(&argv[1..]),
        Some("audit") => run_audit(&argv[1..]),
        Some("optimize") => run_optimize(&argv[1..]),
        Some("trace") => run_trace(&argv[1..]),
        Some("recover") => recovered = Some(recover_options(&argv[1..])),
        Some("run") => {
            argv.remove(0);
        }
        Some("top") => {
            argv.remove(0);
            top = true;
        }
        _ => {}
    }
    let opts = recovered.unwrap_or_else(|| parse_args(&argv, top));
    let query_text = opts.query.as_deref().expect("query checked in parse_args");

    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let parsed = match parse_query(query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let spec = match stream_sampler::query::plan(&parsed, &schema, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if opts.explain {
        print!("{}", explain(&spec));
        return;
    }

    // Resolve the fault plan before the feed so its feed-level events
    // can perturb the packets. A file wins over --fault-seed; a bare
    // --fault-seed generates the seeded plan (replayable: the same seed
    // and shard count always produce the same plan).
    let fault_plan: Option<std::sync::Arc<FaultPlan>> = match (&opts.fault_plan, opts.fault_seed) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            });
            match FaultPlan::parse(&text) {
                Ok(plan) => Some(plan.into_shared()),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        (None, Some(seed)) => Some(FaultPlan::from_seed(seed, opts.shards).into_shared()),
        (None, None) => None,
    };

    let packets = if let Some(path) = &opts.trace {
        match std::fs::File::open(path)
            .map_err(Into::into)
            .and_then(stream_sampler::netgen::read_trace)
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match opts.feed.as_str() {
            "research" => research_feed(opts.seed).take_seconds(opts.seconds),
            "datacenter" => datacenter_feed(opts.seed).take_seconds(opts.seconds),
            "burst" => burst_feed(opts.seed).take_seconds(opts.seconds),
            "ddos" => ddos_feed(opts.seed, opts.seconds / 3, 2 * opts.seconds / 3)
                .take_seconds(opts.seconds),
            other => {
                eprintln!("error: unknown feed `{other}` (research | datacenter | ddos | burst)");
                std::process::exit(1);
            }
        }
    };
    if let Some(path) = &opts.dump {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = stream_sampler::netgen::write_trace(&packets, std::io::BufWriter::new(file))
        {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        if !opts.json {
            eprintln!("# wrote {} packets to {path}", packets.len());
        }
    }
    // Feed-level fault events (bursts, reordering, skew, malformed
    // tuples) rewrite the packet stream; the dump above stays clean so
    // a saved trace replays without the plan.
    let packets = match &fault_plan {
        Some(plan) => {
            if plan.has_worker_faults() && opts.shards <= 1 {
                eprintln!(
                    "warning: fault plan has worker events; they only fire with --shards > 1"
                );
            }
            if !opts.json {
                for ev in &plan.events {
                    eprintln!("# fault: {ev}");
                }
            }
            plan.perturb_packets(packets)
        }
        None => packets,
    };
    if !opts.json {
        eprintln!(
            "# feed={} seed={} seconds={} packets={}",
            opts.feed,
            opts.seed,
            opts.seconds,
            packets.len()
        );
    }

    // Gate on shard-mergeability first so the refusal renders as a
    // proper W102 diagnostic instead of a runtime error. Durable runs
    // go through the sharded runtime even at --shards 1, so they gate
    // too.
    if (opts.shards > 1 || opts.routers != 0 || opts.durable.is_some() || opts.profile.is_some())
        && stream_sampler::operator::shard_plan(&spec).is_err()
    {
        let diags = stream_sampler::query::check_shard_mergeable(query_text, &schema, &config);
        eprint!("{}", diag::render(query_text, "query", &diags));
        if opts.shards > 1 {
            eprintln!("error: --shards {} requires a shard-mergeable query", opts.shards);
        } else if opts.routers != 0 {
            eprintln!("error: --routers {} requires a shard-mergeable query", opts.routers);
        } else if opts.durable.is_some() {
            eprintln!("error: --durable requires a shard-mergeable query");
        } else {
            eprintln!(
                "error: --profile runs through the sharded runtime and requires a \
                 shard-mergeable query"
            );
        }
        std::process::exit(1);
    }

    // A fresh durable run records its configuration so `sso recover`
    // can rebuild the identical input stream. Written before execution:
    // the manifest must survive the crash it exists to recover from.
    if let (Some(dir), false) = (&opts.durable, opts.resume) {
        let path = std::path::Path::new(dir);
        // Pin the lane partition, not just the request: `--routers auto`
        // resolves against THIS machine's core count, and the per-lane
        // segment cursors depend on the stream length — both must be
        // replayed verbatim for `sso recover` to re-route every tuple
        // to the same shard in the same batch.
        let routers = RuntimeConfig::new(opts.shards).with_routers(opts.routers).resolved_routers();
        let cursors = stream_sampler::runtime::router_cursors(packets.len() as u64, routers);
        let mut entries: Vec<(String, String)> = vec![
            ("query".into(), query_text.replace(['\n', '\r'], " ")),
            ("feed".into(), opts.feed.clone()),
            ("seed".into(), opts.seed.to_string()),
            ("seconds".into(), opts.seconds.to_string()),
            ("shards".into(), opts.shards.to_string()),
            ("routers".into(), routers.to_string()),
            (
                "router_cursors".into(),
                cursors.iter().map(u64::to_string).collect::<Vec<_>>().join(","),
            ),
            ("fsync".into(), opts.fsync.clone()),
        ];
        if let Some(trace) = &opts.trace {
            entries.push(("trace".into(), trace.clone()));
        }
        if let Some(budget) = opts.state_budget {
            entries.push(("state_budget".into(), budget.to_string()));
        }
        let written = std::fs::create_dir_all(path)
            .and_then(|()| stream_sampler::store::write_manifest(path, &entries));
        if let Err(e) = written {
            eprintln!("error: cannot write {dir}/MANIFEST: {e}");
            std::process::exit(1);
        }
    }

    let wants_metrics = opts.metrics.is_some() || opts.meta.is_some() || opts.top;
    let registry = wants_metrics.then(Registry::new);
    // The profiler's dump target: an explicit `--profile=FILE` wins,
    // else triggered dumps land next to the durable store (when one
    // exists) or in the working directory.
    let profiler = opts.profile.as_ref().map(|target| {
        let dump_path = if target != "-" {
            std::path::PathBuf::from(target)
        } else if let Some(dir) = &opts.durable {
            std::path::Path::new(dir).join(stream_sampler::profile::DUMP_FILE)
        } else {
            std::path::PathBuf::from(stream_sampler::profile::DUMP_FILE)
        };
        stream_sampler::profile::Profiler::new(stream_sampler::profile::ProfilerConfig {
            dump_path: Some(dump_path),
            ..Default::default()
        })
    });
    let mut snapshots: Vec<Snapshot> = Vec::new();
    let columns: Vec<String> = spec.select.iter().map(|(n, _)| n.clone()).collect();

    let result = if opts.top {
        let reg = registry.clone().expect("top always collects metrics");
        // The query runs on a background thread; the foreground redraws
        // the metrics table in place until it finishes.
        std::thread::scope(|s| {
            let opts = &opts;
            let parsed = &parsed;
            let packets = &packets;
            let att = Attachments {
                faults: fault_plan.as_ref(),
                registry: registry.as_ref(),
                profiler: profiler.as_ref(),
            };
            let prof = att.profiler;
            let snapshots = &mut snapshots;
            let handle =
                s.spawn(move || execute_query(opts, parsed, spec, packets, att, snapshots));
            while !handle.is_finished() {
                std::thread::sleep(std::time::Duration::from_millis(250));
                // \x1b[2J\x1b[H = clear screen + home.
                print!("\x1b[2J\x1b[H{}", render_top(&reg.snapshot(), prof));
                let _ = std::io::stdout().flush();
            }
            handle.join().expect("top worker panicked")
        })
    } else {
        execute_query(
            &opts,
            &parsed,
            spec,
            &packets,
            Attachments {
                faults: fault_plan.as_ref(),
                registry: registry.as_ref(),
                profiler: profiler.as_ref(),
            },
            &mut snapshots,
        )
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let mut total_rows = 0u64;
    if opts.top {
        // Final state of the table, then a run summary instead of rows.
        println!(
            "{}",
            render_top(snapshots.last().expect("final snapshot always taken"), profiler.as_ref())
        );
        total_rows = result.windows.iter().map(|w| w.rows.len() as u64).sum();
        println!("# {} windows, {total_rows} rows total", result.windows.len());
        if result.coverage < 1.0 {
            println!("# DEGRADED: coverage {:.4}", result.coverage);
        }
    } else {
        for w in &result.windows {
            total_rows += print_window(w, &columns, &opts);
        }
        if !opts.json {
            for line in &result.shard_lines {
                eprintln!("{line}");
            }
            eprintln!("# {total_rows} rows total");
        }
    }

    if let Some(p) = &profiler {
        // The attribution report goes to stderr like the shard lines,
        // so `--json` window output on stdout stays machine-clean.
        eprint!("{}", p.report().render());
        match p.triggered() {
            Some(reason) => {
                // The runtime already wrote the triggered dump after
                // worker joins; just say where it landed.
                if let Some(path) = p.dump_path() {
                    eprintln!(
                        "# flight recorder ({}): sso trace {}",
                        reason.as_str(),
                        path.display()
                    );
                }
            }
            None if opts.profile.as_deref() != Some("-") => {
                // An explicit FILE target gets a dump even on a clean
                // run — that is how a chrome trace of a healthy run is
                // produced.
                if let Some(path) = p.dump_path() {
                    match p.write_dump(path, stream_sampler::profile::DumpReason::Manual) {
                        Ok(()) => eprintln!("# profile dump: sso trace {}", path.display()),
                        Err(e) => {
                            eprintln!("error: cannot write profile dump {}: {e}", path.display());
                            std::process::exit(1);
                        }
                    }
                }
            }
            None => {}
        }
    }
    if let Some(target) = &opts.metrics {
        write_metrics(target, &snapshots);
    }
    if let Some(meta_text) = &opts.meta {
        run_meta_query(meta_text, &snapshots, &opts);
    }
}

fn print_window(w: &WindowOutput, columns: &[String], opts: &Options) -> u64 {
    if opts.json {
        // One JSON object per window, rows as arrays of strings.
        let rows: Vec<Vec<String>> =
            w.rows.iter().map(|r| r.values().iter().map(|v| v.to_string()).collect()).collect();
        println!(
            "{}",
            serde_json_lite(&w.window.to_string(), columns, &rows, &w.stats, &w.degradation)
        );
        return w.rows.len() as u64;
    }
    let degraded = if w.degradation.degraded {
        format!(", coverage {:.3} DEGRADED", w.degradation.coverage)
    } else {
        String::new()
    };
    println!(
        "\n== window {} ({} tuples in, {} admitted, {} cleaning phases, {} rows{degraded}) ==",
        w.window,
        w.stats.tuples,
        w.stats.admitted,
        w.stats.cleaning_phases,
        w.rows.len()
    );
    println!("{}", columns.join("\t"));
    for row in w.rows.iter().take(opts.limit) {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    if w.rows.len() > opts.limit {
        println!("... ({} more rows)", w.rows.len() - opts.limit);
    }
    w.rows.len() as u64
}

/// Tiny hand-rolled JSON encoder for the window record (values are
/// numbers/strings only; strings contain no quotes).
fn serde_json_lite(
    window: &str,
    columns: &[String],
    rows: &[Vec<String>],
    stats: &stream_sampler::operator::WindowStats,
    degradation: &Degradation,
) -> String {
    let cols = columns.iter().map(|c| format!("\"{c}\"")).collect::<Vec<_>>().join(",");
    let rows = rows
        .iter()
        .map(|r| {
            let cells = r.iter().map(|v| format!("\"{v}\"")).collect::<Vec<_>>().join(",");
            format!("[{cells}]")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"window\":\"{window}\",\"columns\":[{cols}],\"rows\":[{rows}],\
         \"tuples\":{},\"admitted\":{},\"cleaning_phases\":{},\
         \"coverage\":{},\"degraded\":{}}}",
        stats.tuples,
        stats.admitted,
        stats.cleaning_phases,
        degradation.coverage,
        degradation.degraded
    )
}
