//! Query networks: the full Figure-1 architecture as a composable DAG.
//!
//! A [`QueryNetwork`] hosts several low-level nodes reading the same
//! packet source (each doing its own early reduction) and several
//! high-level operators, each fed either by a low-level node's tuple
//! stream or by another operator's *output rows* (a cascade). This
//! subsumes [`crate::TwoLevelPlan`] (1 low × 1 high),
//! [`crate::FanoutPlan`] (1 low × N high), and [`crate::Cascade`]
//! (high → high), and allows e.g.
//!
//! ```text
//!            ┌─ selection ──▶ heavy-hitters query
//!  packets ──┤
//!            └─ prefilter ──▶ subset-sum query ──▶ sampled-flows report
//! ```

use sso_obs::Stopwatch;

use sso_core::{OpError, SamplingOperator, WindowOutput};
use sso_types::Packet;

use crate::engine::NodeStats;
use crate::nodes::LowLevelQuery;

/// Where a high-level node reads its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// The tuple stream of low-level node `i`.
    Low(usize),
    /// The output rows of high-level node `i` (must precede this node).
    High(usize),
}

/// One high-level node: a named operator and its input edge.
pub struct HighNode {
    /// Display name.
    pub name: String,
    /// The operator.
    pub op: SamplingOperator,
    /// Input edge.
    pub input: Input,
}

/// A DAG of low-level nodes and high-level operators.
#[derive(Default)]
pub struct QueryNetwork {
    lows: Vec<(String, Box<dyn LowLevelQuery>)>,
    highs: Vec<HighNode>,
}

/// Per-node results of a network run.
#[derive(Debug)]
pub struct NetworkReport {
    /// Low-level node accounting, in registration order.
    pub lows: Vec<NodeStats>,
    /// High-level node accounting + windows, in registration order.
    pub highs: Vec<(NodeStats, Vec<WindowOutput>)>,
    /// Stream span (last uts − first uts).
    pub stream_span: std::time::Duration,
}

impl NetworkReport {
    /// The named high-level node's windows.
    pub fn windows(&self, name: &str) -> Option<&[WindowOutput]> {
        self.highs.iter().find(|(stats, _)| stats.name == name).map(|(_, w)| w.as_slice())
    }
}

impl QueryNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a low-level node; returns its index for [`Input::Low`].
    pub fn add_low(&mut self, name: &str, node: Box<dyn LowLevelQuery>) -> usize {
        self.lows.push((name.to_string(), node));
        self.lows.len() - 1
    }

    /// Register a high-level operator; returns its index for
    /// [`Input::High`].
    ///
    /// # Errors
    /// Rejects edges to unregistered nodes and forward/self references
    /// (a cascade may only read from an earlier high-level node).
    pub fn add_high(
        &mut self,
        name: &str,
        op: SamplingOperator,
        input: Input,
    ) -> Result<usize, OpError> {
        match input {
            Input::Low(i) if i >= self.lows.len() => {
                return Err(OpError::InvalidSpec(format!(
                    "high node `{name}` reads from unregistered low node {i}"
                )));
            }
            Input::High(i) if i >= self.highs.len() => {
                return Err(OpError::InvalidSpec(format!(
                    "high node `{name}` reads from high node {i}, which is not \
                     registered yet (cascades must read from earlier nodes)"
                )));
            }
            _ => {}
        }
        self.highs.push(HighNode { name: name.to_string(), op, input });
        Ok(self.highs.len() - 1)
    }

    /// Run the network over a packet stream.
    pub fn run(
        mut self,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Result<NetworkReport, OpError> {
        let mut low_stats: Vec<NodeStats> = self
            .lows
            .iter()
            .map(|(name, _)| NodeStats { name: name.clone(), ..Default::default() })
            .collect();
        let mut high_stats: Vec<NodeStats> = self
            .highs
            .iter()
            .map(|n| NodeStats { name: n.name.clone(), ..Default::default() })
            .collect();
        let mut windows: Vec<Vec<WindowOutput>> = self.highs.iter().map(|_| Vec::new()).collect();
        let mut first_uts = None;
        let mut last_uts = 0u64;

        // Per-packet: run every low node, then deliver to high nodes in
        // topological (registration) order; cascaded rows propagate
        // within the same packet step.
        let mut low_out: Vec<Option<sso_types::Tuple>> = Vec::with_capacity(self.lows.len());
        for pkt in packets {
            first_uts.get_or_insert(pkt.uts);
            last_uts = pkt.uts;
            low_out.clear();
            for ((_, node), stats) in self.lows.iter_mut().zip(low_stats.iter_mut()) {
                stats.tuples_in += 1;
                let sw = Stopwatch::start();
                let fwd = node.process(&pkt);
                stats.busy += sw.elapsed();
                if fwd.is_some() {
                    stats.tuples_out += 1;
                }
                low_out.push(fwd);
            }
            // New rows produced by node i this step, for cascades.
            let mut produced: Vec<Vec<sso_types::Tuple>> = vec![Vec::new(); self.highs.len()];
            for i in 0..self.highs.len() {
                let inputs: Vec<sso_types::Tuple> = match self.highs[i].input {
                    Input::Low(l) => low_out[l].iter().cloned().collect(),
                    Input::High(h) => std::mem::take(&mut produced[h]),
                };
                for tuple in inputs {
                    high_stats[i].tuples_in += 1;
                    let sw = Stopwatch::start();
                    let out = self.highs[i].op.process(&tuple)?;
                    high_stats[i].busy += sw.elapsed();
                    if let Some(w) = out {
                        high_stats[i].tuples_out += w.rows.len() as u64;
                        produced[i].extend(w.rows.iter().cloned());
                        windows[i].push(w);
                    }
                }
            }
        }
        // End of stream: flush the low-level nodes' buffered output.
        let mut low_tail: Vec<Vec<sso_types::Tuple>> = Vec::with_capacity(self.lows.len());
        for ((_, node), stats) in self.lows.iter_mut().zip(low_stats.iter_mut()) {
            let tail = node.finish();
            stats.tuples_out += tail.len() as u64;
            low_tail.push(tail);
        }
        // Then finish high nodes in order, still propagating rows.
        let mut produced: Vec<Vec<sso_types::Tuple>> = vec![Vec::new(); self.highs.len()];
        for i in 0..self.highs.len() {
            if let Input::Low(l) = self.highs[i].input {
                for tuple in &low_tail[l] {
                    high_stats[i].tuples_in += 1;
                    if let Some(w) = self.highs[i].op.process(tuple)? {
                        high_stats[i].tuples_out += w.rows.len() as u64;
                        produced[i].extend(w.rows.iter().cloned());
                        windows[i].push(w);
                    }
                }
            }
            if let Input::High(h) = self.highs[i].input {
                let rows = std::mem::take(&mut produced[h]);
                for tuple in rows {
                    high_stats[i].tuples_in += 1;
                    if let Some(w) = self.highs[i].op.process(&tuple)? {
                        high_stats[i].tuples_out += w.rows.len() as u64;
                        produced[i].extend(w.rows.iter().cloned());
                        windows[i].push(w);
                    }
                }
            }
            if let Some(w) = self.highs[i].op.finish()? {
                high_stats[i].tuples_out += w.rows.len() as u64;
                produced[i].extend(w.rows.iter().cloned());
                windows[i].push(w);
            }
        }

        let stream_span =
            std::time::Duration::from_nanos(last_uts.saturating_sub(first_uts.unwrap_or(0)));
        Ok(NetworkReport {
            lows: low_stats,
            highs: high_stats.into_iter().zip(windows).collect(),
            stream_span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodes::{PrefilterNode, SelectionNode};
    use sso_core::libs::subset_sum::SubsetSumOpConfig;
    use sso_core::operator::OperatorSpec;
    use sso_core::{queries, Expr};
    use sso_netgen::{datacenter_feed, research_feed};

    #[test]
    fn rejects_bad_edges() {
        let mut net = QueryNetwork::new();
        let op = SamplingOperator::new(queries::total_sum_query(1)).unwrap();
        assert!(net.add_high("x", op, Input::Low(0)).is_err(), "no low node 0 yet");
        let op = SamplingOperator::new(queries::total_sum_query(1)).unwrap();
        assert!(net.add_high("x", op, Input::High(0)).is_err(), "no high node 0 yet");
    }

    #[test]
    fn two_low_nodes_feed_independent_queries() {
        let packets = datacenter_feed(401).take_seconds(2);
        let n = packets.len() as u64;
        let mut net = QueryNetwork::new();
        let sel = net.add_low("selection", Box::new(SelectionNode::pass_all()));
        let pre = net.add_low("prefilter", Box::new(PrefilterNode::new(100_000.0)));
        net.add_high(
            "exact",
            SamplingOperator::new(queries::total_sum_query(1)).unwrap(),
            Input::Low(sel),
        )
        .unwrap();
        net.add_high(
            "thinned",
            SamplingOperator::new(queries::total_sum_query(1)).unwrap(),
            Input::Low(pre),
        )
        .unwrap();
        let report = net.run(packets).unwrap();
        assert_eq!(report.lows[0].tuples_in, n);
        assert_eq!(report.lows[1].tuples_in, n);
        assert_eq!(report.lows[0].tuples_out, n);
        assert!(report.lows[1].tuples_out < n / 10);
        assert!(report.windows("exact").is_some());
        assert!(report.windows("missing").is_none());
    }

    #[test]
    fn cascade_inside_a_network_matches_direct_cascade() {
        // flow aggregation -> per-window flow count, as network and as
        // direct Cascade; outputs must agree.
        let flow_agg = || {
            let mut spec = OperatorSpec::aggregation(
                vec![
                    ("tb".into(), Expr::GroupVar(0)),
                    ("srcIP".into(), Expr::GroupVar(1)),
                    ("bytes".into(), Expr::Aggregate(0)),
                ],
                vec![
                    ("tb".into(), Expr::Column(0).div(Expr::lit(2u64))),
                    ("srcIP".into(), Expr::Column(2)),
                ],
            );
            spec.window_indices = vec![0];
            spec.aggregates = vec![sso_core::AggSpec::Sum(Expr::Column(7))];
            SamplingOperator::new(spec).unwrap()
        };
        let second = || {
            let first = flow_agg();
            let schema = first.spec().output_schema("FLOWS");
            let q = sso_query::parse_query(
                "SELECT tb2, count(*), sum(bytes) FROM FLOWS GROUP BY tb/1 as tb2",
            )
            .unwrap();
            SamplingOperator::new(
                sso_query::plan(&q, &schema, &sso_query::PlannerConfig::empty()).unwrap(),
            )
            .unwrap()
        };
        let packets = research_feed(402).take_seconds(6);

        let mut net = QueryNetwork::new();
        let low = net.add_low("all", Box::new(SelectionNode::pass_all()));
        let agg = net.add_high("flows", flow_agg(), Input::Low(low)).unwrap();
        net.add_high("flow-report", second(), Input::High(agg)).unwrap();
        let report = net.run(packets.clone()).unwrap();
        let from_net = report.windows("flow-report").unwrap();

        let mut cascade = crate::Cascade::new(flow_agg(), second());
        let tuples: Vec<sso_types::Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
        let direct = cascade.run(tuples.iter()).unwrap();

        assert_eq!(from_net.len(), direct.len());
        for (a, b) in from_net.iter().zip(&direct) {
            assert_eq!(a.rows, b.rows);
        }
    }

    #[test]
    fn figure_one_shaped_network_runs() {
        // Two low nodes, three high nodes, one cascade: the Figure 1
        // sketch.
        let packets = datacenter_feed(403).take_seconds(2);
        let mut net = QueryNetwork::new();
        let sel = net.add_low("selection", Box::new(SelectionNode::pass_all()));
        let pre = net.add_low("prefilter", Box::new(PrefilterNode::new(50_000.0)));
        net.add_high(
            "hh",
            SamplingOperator::new(queries::heavy_hitters_query(1, 500, None).unwrap()).unwrap(),
            Input::Low(sel),
        )
        .unwrap();
        let cfg = SubsetSumOpConfig { target: 100, initial_z: 5_000.0, ..Default::default() };
        let ss = net
            .add_high(
                "subset-sum",
                SamplingOperator::new(queries::subset_sum_query(1, cfg, false).unwrap()).unwrap(),
                Input::Low(pre),
            )
            .unwrap();
        // Cascade: aggregate the sampled rows per window.
        let first =
            SamplingOperator::new(queries::subset_sum_query(1, cfg, false).unwrap()).unwrap();
        let schema = first.spec().output_schema("S");
        let q = sso_query::parse_query(
            "SELECT tb2, count(*), sum(adj_len) FROM S GROUP BY tb/1 as tb2",
        )
        .unwrap();
        let report_op = SamplingOperator::new(
            sso_query::plan(&q, &schema, &sso_query::PlannerConfig::empty()).unwrap(),
        )
        .unwrap();
        net.add_high("sample-report", report_op, Input::High(ss)).unwrap();

        let report = net.run(packets).unwrap();
        assert!(!report.windows("hh").unwrap().is_empty());
        assert!(!report.windows("subset-sum").unwrap().is_empty());
        let sample_report = report.windows("sample-report").unwrap();
        assert!(!sample_report.is_empty());
        // The cascade's count equals the subset-sum node's emitted rows
        // for the corresponding windows.
        let ss_rows: u64 =
            report.windows("subset-sum").unwrap().iter().map(|w| w.rows.len() as u64).sum();
        let reported: u64 =
            sample_report.iter().flat_map(|w| &w.rows).map(|r| r.get(1).as_u64().unwrap()).sum();
        assert_eq!(ss_rows, reported);
    }
}
