//! Query front-end errors.

use std::fmt;

use sso_core::OpError;

use crate::diag::Diagnostic;

/// Errors from lexing, parsing, or planning a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A lexical error at a byte offset.
    Lex {
        /// Byte position in the query text.
        position: usize,
        /// Description.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Byte position in the query text (approximate: token start).
        position: usize,
        /// Description.
        message: String,
    },
    /// A semantic error (unknown name, clause misuse, ...).
    Semantic(String),
    /// Semantic analysis failed; carries every diagnostic found (errors
    /// *and* warnings), not just the first. Use
    /// [`crate::diag::render`] against the query text for the full
    /// rustc-style report.
    Analysis(Vec<Diagnostic>),
    /// An error surfaced from the operator layer during planning or
    /// instantiation.
    Plan(OpError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            QueryError::Parse { position, message } => {
                write!(f, "syntax error at byte {position}: {message}")
            }
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
            QueryError::Analysis(diags) => {
                let joined = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ");
                write!(f, "semantic error: {joined}")
            }
            QueryError::Plan(e) => write!(f, "planning error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<OpError> for QueryError {
    fn from(e: OpError) -> Self {
        QueryError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Lex { position: 3, message: "bad char".into() };
        assert_eq!(e.to_string(), "lexical error at byte 3: bad char");
        let e = QueryError::Semantic("unknown column x".into());
        assert!(e.to_string().contains("unknown column x"));
    }
}
