//! # sso-profile
//!
//! Causal stage tracing, end-to-end latency accounting, and a
//! post-mortem flight recorder for the sharded runtime.
//!
//! Every batch crossing the pipeline leaves a compact **lineage
//! stamp** — ingest tick → router hash/push → ring wait → shard
//! process → barrier wait → merge → emit — in a per-thread
//! fixed-capacity event ring ([`LaneWriter`]). Recording is four
//! `Relaxed` stores; visibility costs **one `Release` store per
//! batch**, so the enabled path stays within the same budget as
//! `sso-obs`'s SampledSpan and the disabled path is a single branch.
//!
//! A merge-on-read collector ([`ProfileReport`]) folds the lanes into
//! per-stage attribution (quantifying the ROADMAP-item-1 router share
//! directly) and per-window end-to-end latency histograms on the
//! `sso-obs` power-of-two buckets.
//!
//! The same rings double as a **flight recorder**: on worker panic,
//! window-deadline straggle, shed activation, or a `crash` fault, the
//! last N events per lane are dumped (checksummed `sso-store`-style
//! frames, atomic rename) and `sso trace` renders them as a human
//! timeline or Chrome trace-event JSON.
//!
//! Everything shared goes through the `sso-sync` facade, so the
//! record/publish/collect protocol is exhaustively explored by
//! `tests/model_check.rs` alongside the ring and barrier.

pub mod collect;
pub mod dump;
pub mod event;
pub mod lane;
pub mod profiler;
pub mod render;

pub use collect::{fmt_ns, ProfileReport, StageTotal};
pub use dump::{
    decode_dump, encode_dump, read_dump_file, write_dump_file, Dump, LaneDump, DUMP_FILE,
};
pub use event::{Event, Stage, AUX_MAX, BATCH_NONE, SHARD_NONE, STAGES, WINDOW_NONE};
pub use lane::{LaneKind, LaneWriter};
pub use profiler::{DumpReason, Profiler, ProfilerConfig};
pub use render::{chrome_trace_json, render_timeline};
