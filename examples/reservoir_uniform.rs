//! Reservoir sampling on the operator (§6.6): a fixed-size uniform
//! sample of (srcIP, destIP) pairs per minute, compared against the
//! reference skip-based reservoir from `sso-sampling`.
//!
//! ```sh
//! cargo run --release --example reservoir_uniform
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use stream_sampler::prelude::*;
use stream_sampler::sampling::SkipReservoir;

fn main() {
    let query = "
        SELECT tb, srcIP, destIP
        FROM PKT
        WHERE rsample(100) = TRUE
        GROUP BY time/60 as tb, srcIP, destIP
        HAVING rsfinal_clean(count_distinct$(*)) = TRUE
        CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY rsclean_with() = TRUE";

    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard())
        .expect("reservoir query compiles");

    let packets = research_feed(31).take_seconds(120);
    println!("feed: {} packets over 120s", packets.len());

    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();

    for w in &windows {
        let tb = w.window.get(0).as_u64().unwrap();
        println!(
            "window {tb}: {} samples from {} packets ({} cleaning phases)",
            w.rows.len(),
            w.stats.tuples,
            w.stats.cleaning_phases
        );
    }

    // Reference: the skip-based reservoir over the same first window,
    // sampling raw packets.
    let mut rng = StdRng::seed_from_u64(99);
    let mut reference = SkipReservoir::new(100);
    let first_window: Vec<&Packet> = packets.iter().filter(|p| p.time() < 60).collect();
    for p in &first_window {
        reference.offer((p.src_ip, p.dest_ip), &mut rng);
    }
    println!(
        "\nreference skip-reservoir over window 0: {} samples from {} packets",
        reference.items().len(),
        first_window.len()
    );
    println!("operator and reference agree on the sample-size contract: 100 per window.");

    if let Some(w) = windows.first() {
        println!("\nfirst samples of window 0:");
        for row in w.rows.iter().take(5) {
            println!(
                "  {} -> {}",
                format_ipv4(row.get(1).as_u64().unwrap() as u32),
                format_ipv4(row.get(2).as_u64().unwrap() as u32)
            );
        }
    }
}
