//! Shared multi-query execution: the consumable half of a
//! plan-rewrite certificate (see `sso-rewrite`).
//!
//! Where [`crate::fanout::run_fanout`] gives every high-level query its
//! own operator and every forwarded tuple visits all of them, a
//! [`SharedQueryPlan`] runs the §7.1 simultaneous query set the way the
//! optimizer rewrote it: a *shared prefilter* — the conjunction of pure
//! predicate clauses every member query implies — is evaluated once per
//! tuple, and each *share group* (queries whose normalized plans are
//! identical) runs one operator whose closed windows fan out to every
//! consumer (§7.2 shared work). The contract, enforced by golden and
//! property tests against unshared execution, is byte-identity of
//! `(window, rows)` per consumer: consumers keep their full residual
//! predicates, so sharing changes only *work*, never *output*.

use sso_core::expr::EvalCtx;
use sso_core::{Expr, OpError, SamplingOperator, WindowOutput};
use sso_types::Packet;

use crate::engine::NodeStats;
use crate::fanout::{FanoutReport, QueryResult};
use crate::nodes::LowLevelQuery;

/// One deduplicated operator serving one or more consumer queries.
pub struct SharedGroup {
    /// The representative operator all consumers share.
    pub op: SamplingOperator,
    /// Consumer query names; each receives a clone of every closed
    /// window.
    pub consumers: Vec<String>,
}

/// A rewritten multi-query plan: optional shared prefilter plus
/// deduplicated operator groups.
pub struct SharedQueryPlan {
    /// Pure tuple predicate hoisted out of every member query; a tuple
    /// failing it is dropped before any operator sees it. Compiled from
    /// the base-stream schema (e.g. via
    /// `sso_query::compile_packet_predicate`).
    pub prefilter: Option<Expr>,
    /// The share groups, in plan order.
    pub groups: Vec<SharedGroup>,
}

impl SharedQueryPlan {
    /// Total number of consumer queries across all groups.
    pub fn consumers(&self) -> usize {
        self.groups.iter().map(|g| g.consumers.len()).sum()
    }
}

/// Run a shared multi-query plan over one packet stream.
///
/// The returned [`FanoutReport`] has one [`QueryResult`] per consumer
/// (groups in plan order, consumers in group order), so callers can
/// compare it name-by-name against an unshared [`crate::run_fanout`]
/// run. Per-consumer `stats.tuples_in` counts tuples that *reached the
/// shared operator* — fewer than unshared when the prefilter drops rows
/// — which is exactly the work saving; window contents are identical.
pub fn run_fanout_shared(
    mut low: Box<dyn LowLevelQuery>,
    mut plan: SharedQueryPlan,
    packets: impl IntoIterator<Item = Packet>,
) -> Result<FanoutReport, OpError> {
    let mut low_stats = NodeStats { name: low.name().to_string(), ..Default::default() };
    let mut group_windows: Vec<Vec<WindowOutput>> =
        plan.groups.iter().map(|_| Vec::new()).collect();
    let mut group_stats: Vec<NodeStats> = plan
        .groups
        .iter()
        .enumerate()
        .map(|(i, _)| NodeStats { name: format!("share-group-{i}"), ..Default::default() })
        .collect();
    let mut first_uts = None;
    let mut last_uts = 0u64;

    let feed = |tuple: &sso_types::Tuple,
                plan: &mut SharedQueryPlan,
                group_windows: &mut [Vec<WindowOutput>],
                group_stats: &mut [NodeStats]|
     -> Result<(), OpError> {
        if let Some(pred) = &plan.prefilter {
            let mut ctx = EvalCtx { tuple: Some(tuple), ..EvalCtx::empty("shared prefilter") };
            if !pred.eval_bool(&mut ctx)? {
                return Ok(());
            }
        }
        for (gi, group) in plan.groups.iter_mut().enumerate() {
            group_stats[gi].tuples_in += 1;
            if let Some(w) = group.op.process(tuple)? {
                group_stats[gi].tuples_out += w.rows.len() as u64;
                group_windows[gi].push(w);
            }
        }
        Ok(())
    };

    for pkt in packets {
        first_uts.get_or_insert(pkt.uts);
        last_uts = pkt.uts;
        low_stats.tuples_in += 1;
        let Some(tuple) = low.process(&pkt) else {
            continue;
        };
        low_stats.tuples_out += 1;
        feed(&tuple, &mut plan, &mut group_windows, &mut group_stats)?;
    }
    for tuple in low.finish() {
        low_stats.tuples_out += 1;
        feed(&tuple, &mut plan, &mut group_windows, &mut group_stats)?;
    }
    for (gi, group) in plan.groups.iter_mut().enumerate() {
        if let Some(w) = group.op.finish()? {
            group_stats[gi].tuples_out += w.rows.len() as u64;
            group_windows[gi].push(w);
        }
    }

    // Fan each group's windows out to its consumers.
    let mut queries = Vec::with_capacity(plan.consumers());
    for (gi, group) in plan.groups.iter().enumerate() {
        for name in &group.consumers {
            queries.push(QueryResult {
                name: name.clone(),
                stats: NodeStats { name: name.clone(), ..group_stats[gi].clone() },
                windows: group_windows[gi].clone(),
            });
        }
    }
    let stream_span =
        std::time::Duration::from_nanos(last_uts.saturating_sub(first_uts.unwrap_or(0)));
    Ok(FanoutReport { low: low_stats, queries, stream_span })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fanout::{run_fanout, FanoutPlan};
    use crate::nodes::SelectionNode;
    use sso_netgen::research_feed;
    use sso_query::{base_stream_schema, compile, compile_packet_predicate, parse_query};

    fn op(text: &str) -> SamplingOperator {
        let schema = base_stream_schema("PKT").unwrap();
        compile(text, &schema, &sso_query::PlannerConfig::standard()).unwrap()
    }

    /// A dedup group's consumers see byte-identical windows to running
    /// the same query unshared, and a shared prefilter implied by every
    /// consumer's WHERE changes no output rows.
    #[test]
    fn shared_execution_is_byte_identical_to_unshared() {
        let text = "SELECT tb, sum(len) FROM PKT WHERE len >= 100 GROUP BY time/2 as tb";
        let packets = research_feed(401).take_seconds(6);

        let unshared = run_fanout(
            FanoutPlan {
                low: Box::new(SelectionNode::pass_all()),
                highs: vec![("a".into(), op(text)), ("b".into(), op(text))],
            },
            packets.clone(),
        )
        .unwrap();

        let schema = base_stream_schema("PKT").unwrap();
        let pred = parse_query(text).unwrap().where_clause.unwrap();
        let prefilter = compile_packet_predicate(&pred, &schema).unwrap();
        let shared = run_fanout_shared(
            Box::new(SelectionNode::pass_all()),
            SharedQueryPlan {
                prefilter: Some(prefilter),
                groups: vec![SharedGroup { op: op(text), consumers: vec!["a".into(), "b".into()] }],
            },
            packets,
        )
        .unwrap();

        assert_eq!(shared.queries.len(), 2);
        for name in ["a", "b"] {
            let u = unshared.query(name).unwrap();
            let s = shared.query(name).unwrap();
            assert_eq!(u.windows.len(), s.windows.len(), "{name}: window count");
            for (wu, ws) in u.windows.iter().zip(&s.windows) {
                assert_eq!(wu.window, ws.window, "{name}: window key");
                assert_eq!(wu.rows, ws.rows, "{name}: rows");
            }
        }
        // The saving is visible in the accounting: one operator ran.
        assert!(
            shared.query("a").unwrap().stats.tuples_in
                <= unshared.query("a").unwrap().stats.tuples_in
        );
    }

    /// The prefilter really drops tuples ahead of the operators.
    #[test]
    fn prefilter_reduces_operator_work() {
        let packets = research_feed(402).take_seconds(4);
        let schema = base_stream_schema("PKT").unwrap();
        let pred = parse_query("SELECT tb FROM PKT WHERE len >= 100000 GROUP BY time/2 as tb")
            .unwrap()
            .where_clause
            .unwrap();
        let prefilter = compile_packet_predicate(&pred, &schema).unwrap();
        let report = run_fanout_shared(
            Box::new(SelectionNode::pass_all()),
            SharedQueryPlan {
                prefilter: Some(prefilter),
                groups: vec![SharedGroup {
                    op: op("SELECT tb, count(*) FROM PKT GROUP BY time/2 as tb"),
                    consumers: vec!["q".into()],
                }],
            },
            packets,
        )
        .unwrap();
        // No packet is 100kB; every tuple is dropped at the prefilter.
        assert_eq!(report.query("q").unwrap().stats.tuples_in, 0);
        assert!(report.low.tuples_out > 0);
    }
}
