//! Cascaded sampling (§8: "cascading one type of stream sampling inside
//! a different type"): aggregate packets into flows, subset-sum-sample
//! the flows by byte volume, then run a report query over the sampled
//! flows — three operators in a [`QueryNetwork`].
//!
//! ```sh
//! cargo run --release --example cascaded_sampling
//! ```

use stream_sampler::gigascope::{Input, QueryNetwork, SelectionNode};
use stream_sampler::prelude::*;

fn main() {
    let packets = research_feed(83).take_seconds(60);
    println!("feed: {} packets over 60s", packets.len());

    // Stage 1: flow aggregation per 20s window (one group per flow).
    let flow_query = "
        SELECT tb, srcIP, destIP, sum(len), count(*)
        FROM PKT
        GROUP BY time/20 as tb, srcIP, destIP";
    let flows =
        compile(flow_query, &Packet::schema(), &PlannerConfig::empty()).expect("flow query");

    // Stage 2: subset-sum sample ~200 flows per window, weight = bytes.
    let flows_schema = flows.spec().output_schema("FLOWS");
    let sample_query = "
        SELECT tb2, srcIP, destIP, UMAX(sum(sum), ssthreshold()) as adj_len
        FROM FLOWS
        WHERE ssample(sum, 200) = TRUE
        GROUP BY tb/1 as tb2, srcIP, destIP
        HAVING ssfinal_clean(sum(sum), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(sum)) = TRUE";
    let parsed = parse_query(sample_query).expect("sample query parses");
    let sampled = SamplingOperator::new(
        stream_sampler::query::plan(&parsed, &flows_schema, &PlannerConfig::standard())
            .expect("sample query plans"),
    )
    .expect("sample operator");

    // Stage 3: per-window totals over the sampled flows.
    let sampled_schema = sampled.spec().output_schema("SAMPLED");
    let report_query = "SELECT tb3, count(*), sum(adj_len) FROM SAMPLED GROUP BY tb2/1 as tb3";
    let parsed = parse_query(report_query).expect("report parses");
    let report_op = SamplingOperator::new(
        stream_sampler::query::plan(&parsed, &sampled_schema, &PlannerConfig::empty())
            .expect("report plans"),
    )
    .expect("report operator");

    // Wire the cascade.
    let mut net = QueryNetwork::new();
    let low = net.add_low("all", Box::new(SelectionNode::pass_all()));
    let f = net.add_high("flows", flows, Input::Low(low)).expect("edge");
    let s = net.add_high("sampled-flows", sampled, Input::High(f)).expect("edge");
    net.add_high("report", report_op, Input::High(s)).expect("edge");

    // Ground truth per window.
    let mut truth = std::collections::BTreeMap::<u64, u64>::new();
    for p in &packets {
        *truth.entry(p.time() / 20).or_default() += p.len as u64;
    }

    let result = net.run(packets).expect("network runs");
    println!(
        "\nflows node saw {} tuples; sampling node saw {} flow records",
        result.highs[0].0.tuples_in, result.highs[1].0.tuples_in
    );
    println!(
        "\n{:>7} {:>10} {:>16} {:>16} {:>7}",
        "window", "samples", "estimate", "actual", "err%"
    );
    for w in result.windows("report").expect("report windows") {
        // report rows: (tb3, count, sum of adjusted flow bytes)
        for row in &w.rows {
            let tb = row.get(0).as_u64().unwrap();
            let samples = row.get(1).as_u64().unwrap();
            let est = row.get(2).as_f64().unwrap();
            let actual = *truth.get(&tb).unwrap_or(&0) as f64;
            let err = if actual > 0.0 { 100.0 * (est - actual) / actual } else { 0.0 };
            println!("{tb:>7} {samples:>10} {est:>16.0} {actual:>16.0} {err:>6.2}%");
        }
    }
    println!(
        "\nthe report sees only ~200 sampled flows per window, yet its adjusted\n\
         totals track the full per-window byte volume."
    );
}
