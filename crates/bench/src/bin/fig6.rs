//! **Figure 6 — Effect of low-level query type.**
//!
//! The two-level deployment question of §7.2: what should the low-level
//! (packet-side) query be?
//!
//! * a plain **selection subquery** forwards every packet — the memory
//!   copies into tuples dominate (the paper measured ~60% of a CPU);
//! * a **basic-subset-sum subquery** at a tenth of the dynamic
//!   threshold forwards ~1% of packets — the paper measured ~4%, and
//!   the high-level dynamic subset-sum load also dropped sharply.
//!
//! This binary runs both plans at several samples-per-period settings
//! and reports low-level and high-level CPU at line rate.

use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, SamplingOperator};
use sso_gigascope::{run_plan, PrefilterNode, SelectionNode, TwoLevelPlan};
use sso_netgen::datacenter_feed;

#[derive(serde::Serialize)]
struct Row {
    samples_per_period: usize,
    selection_low_pct: f64,
    selection_high_pct: f64,
    prefilter_low_pct: f64,
    prefilter_high_pct: f64,
    forwarded_selection: u64,
    forwarded_prefilter: u64,
}

fn main() {
    const WINDOW: u64 = 20;
    const SECONDS: u64 = 40;

    let packets = datacenter_feed(0xf166).take_seconds(SECONDS);
    let volume_per_window: u64 =
        packets.iter().filter(|p| p.time() < WINDOW).map(|p| p.len as u64).sum();

    let mut rows = Vec::new();
    for n in [100usize, 1000, 2000, 4000, 6000, 8000, 10_000] {
        let z_dyn = volume_per_window as f64 / n as f64;
        let cfg = SubsetSumOpConfig { target: n, initial_z: z_dyn, ..Default::default() };

        // Best of three runs per plan: single-shot wall-clock timing is
        // noisy at these per-tuple costs.
        let best = |make: &dyn Fn() -> TwoLevelPlan| {
            let mut best: Option<sso_gigascope::RunReport> = None;
            for _ in 0..3 {
                let r = run_plan(make(), packets.iter().copied()).unwrap();
                if best
                    .as_ref()
                    .map(|b| r.low.busy + r.high.busy < b.low.busy + b.high.busy)
                    .unwrap_or(true)
                {
                    best = Some(r);
                }
            }
            best.unwrap()
        };

        // Plan A: selection subquery feeds the dynamic operator.
        let report_a = best(&|| {
            TwoLevelPlan::new(
                Box::new(SelectionNode::pass_all()),
                SamplingOperator::new(queries::subset_sum_query(WINDOW, cfg, false).unwrap())
                    .unwrap(),
            )
        });

        // Plan B: basic-SS prefilter at z/10 feeds the dynamic operator.
        let cfg_b = SubsetSumOpConfig { target: n, initial_z: z_dyn / 10.0, ..Default::default() };
        let report_b = best(&|| {
            TwoLevelPlan::new(
                Box::new(PrefilterNode::new(z_dyn / 10.0)),
                SamplingOperator::new(queries::subset_sum_query(WINDOW, cfg_b, false).unwrap())
                    .unwrap(),
            )
        });

        rows.push(Row {
            samples_per_period: n,
            selection_low_pct: report_a.low_cpu_pct(),
            selection_high_pct: report_a.high_cpu_pct(),
            prefilter_low_pct: report_b.low_cpu_pct(),
            prefilter_high_pct: report_b.high_cpu_pct(),
            forwarded_selection: report_a.low.tuples_out,
            forwarded_prefilter: report_b.low.tuples_out,
        });
    }

    if maybe_json(&rows) {
        return;
    }
    header("Figure 6: effect of low-level query type (~100k pkt/s feed)");
    println!(
        "{:>16} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "samples/period",
        "sel low %",
        "sel high %",
        "pre low %",
        "pre high %",
        "sel fwd",
        "pre fwd"
    );
    for r in &rows {
        println!(
            "{:>16} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2} | {:>12} {:>12}",
            r.samples_per_period,
            r.selection_low_pct,
            r.selection_high_pct,
            r.prefilter_low_pct,
            r.prefilter_high_pct,
            r.forwarded_selection,
            r.forwarded_prefilter
        );
    }
    let last = rows.last().unwrap();
    println!(
        "\nat N = 10,000: the prefilter forwards {:.2}% of packets vs 100% for the \
         selection subquery; low-level CPU drops {:.0}x and the high-level dynamic \
         subset-sum load drops {:.0}x.",
        100.0 * last.forwarded_prefilter as f64 / last.forwarded_selection as f64,
        last.selection_low_pct / last.prefilter_low_pct.max(1e-9),
        last.selection_high_pct / last.prefilter_high_pct.max(1e-9),
    );
    println!(
        "paper's shape: selection subquery ~60% CPU (memory copies) vs ~4% for the \
         basic-SS subquery; the high-level load also drops significantly."
    );
}
