//! **Durable-store overhead** — throughput cost of window checkpoints
//! and the carry-over WAL on the fault-free path.
//!
//! The durable path adds, per tuple, one window-key comparison in the
//! worker loop, and per closed window a carry/aux export plus a WAL
//! append (fsync `never`: the OS page cache absorbs the write). This
//! benchmark runs the subset-sum sharded workload twice per repetition:
//! once in memory and once with a durable store in a temp directory,
//! alternating the modes; best-of-reps is reported.
//!
//! The acceptance gate (enforced by `scripts/check.sh` over
//! `BENCH_store.json`) is ≤ 5% throughput overhead: durability must not
//! cost a shard's worth of throughput on the run that never crashes.

use std::time::Instant;

use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, shard_plan, OpError, OperatorSpec};
use sso_gigascope::{run_plan_sharded_with, SelectionNode};
use sso_netgen::datacenter_feed;
use sso_runtime::{DurabilityConfig, RuntimeConfig};
use sso_types::Packet;

const SEED: u64 = 0x5704e;
const SECONDS: u64 = 20;
const WINDOW: u64 = 5;
const TARGET: usize = 1000;
const SHARDS: usize = 4;
const REPS: usize = 7;

#[derive(serde::Serialize)]
struct Config {
    feed: &'static str,
    seed: u64,
    seconds: u64,
    packets: usize,
    window_secs: u64,
    target_samples: usize,
    shards: usize,
    reps: usize,
    checkpoint_every: u64,
    fsync: &'static str,
}

#[derive(serde::Serialize)]
struct Mode {
    durable: bool,
    secs: f64,
    tuples_per_sec: f64,
    windows: usize,
}

#[derive(serde::Serialize)]
struct Report {
    config: Config,
    baseline: Mode,
    durable: Mode,
    /// Throughput lost to checkpoints + WAL appends, percent (negative
    /// = noise in the durable run's favor).
    overhead_pct: f64,
}

fn spec(shards: usize) -> impl Fn(usize) -> Result<OperatorSpec, OpError> {
    move |_shard| {
        let cfg = SubsetSumOpConfig {
            target: TARGET.div_ceil(shards),
            initial_z: 1.0,
            ..Default::default()
        };
        queries::subset_sum_query(WINDOW, cfg, false)
    }
}

fn run_once(packets: &[Packet], dir: Option<&std::path::Path>) -> (f64, usize) {
    let full = SubsetSumOpConfig { target: TARGET, initial_z: 1.0, ..Default::default() };
    let plan = shard_plan(&queries::subset_sum_query(WINDOW, full, false).unwrap())
        .expect("subset-sum is shard-mergeable");
    let mut cfg = RuntimeConfig::new(SHARDS);
    if let Some(dir) = dir {
        let mut durability = DurabilityConfig::new(dir);
        durability.checkpoint_every = 2;
        cfg = cfg.with_durability(durability);
    }
    let t0 = Instant::now();
    let report = run_plan_sharded_with(
        Box::new(SelectionNode::pass_all()),
        &plan,
        spec(SHARDS),
        &cfg,
        packets.iter().cloned(),
    )
    .expect("sharded run");
    assert!(!report.degraded(), "the fault-free path must not degrade");
    (t0.elapsed().as_secs_f64(), report.windows.len())
}

fn main() {
    let packets = datacenter_feed(SEED).take_seconds(SECONDS);
    let n = packets.len();
    if !sso_bench::json_mode() {
        eprintln!("# {n} packets, {REPS} alternating reps per mode");
    }
    let dir = std::env::temp_dir().join(format!("sso-store-overhead-{}", std::process::id()));

    let mut base_best = (f64::INFINITY, 0usize);
    let mut dur_best = (f64::INFINITY, 0usize);
    for _ in 0..REPS {
        let base = run_once(&packets, None);
        if base.0 < base_best.0 {
            base_best = base;
        }
        // Each durable rep starts its store fresh: `create` wipes the
        // shard files, so reps measure steady-state write cost, not an
        // ever-growing WAL.
        let durable = run_once(&packets, Some(&dir));
        if durable.0 < dur_best.0 {
            dur_best = durable;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let base_tps = n as f64 / base_best.0;
    let dur_tps = n as f64 / dur_best.0;
    let report = Report {
        config: Config {
            feed: "datacenter",
            seed: SEED,
            seconds: SECONDS,
            packets: n,
            window_secs: WINDOW,
            target_samples: TARGET,
            shards: SHARDS,
            reps: REPS,
            checkpoint_every: 2,
            fsync: "never",
        },
        baseline: Mode {
            durable: false,
            secs: base_best.0,
            tuples_per_sec: base_tps,
            windows: base_best.1,
        },
        durable: Mode {
            durable: true,
            secs: dur_best.0,
            tuples_per_sec: dur_tps,
            windows: dur_best.1,
        },
        overhead_pct: 100.0 * (base_tps - dur_tps) / base_tps,
    };

    if maybe_json(&report) {
        return;
    }
    header("Durable-store overhead: checkpoints + WAL (fsync never) vs in-memory");
    println!("{:>12} {:>8} {:>12} {:>8}", "mode", "secs", "tuples/s", "windows");
    for m in [&report.baseline, &report.durable] {
        println!(
            "{:>12} {:>8.3} {:>12.0} {:>8}",
            if m.durable { "durable" } else { "baseline" },
            m.secs,
            m.tuples_per_sec,
            m.windows,
        );
    }
    println!("overhead: {:.2}%", report.overhead_pct);
}
