//! Operator-level errors.

use std::fmt;

use sso_types::TypeError;

/// Errors raised while building or evaluating a sampling operator.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// A value-level type error during expression evaluation.
    Type(TypeError),
    /// An expression referenced context that the current clause does not
    /// provide (e.g. an aggregate in the WHERE clause).
    MissingContext {
        /// What was referenced, e.g. `"aggregate"`.
        what: &'static str,
        /// Which clause was being evaluated.
        clause: &'static str,
    },
    /// A stateful function was called with the wrong arguments.
    BadSfunCall {
        /// Function name.
        function: String,
        /// Why the call was rejected.
        reason: String,
    },
    /// The operator specification is inconsistent.
    InvalidSpec(String),
    /// A scalar function rejected its arguments.
    BadScalarCall {
        /// Function name.
        function: String,
        /// Why the call was rejected.
        reason: String,
    },
    /// A worker thread running part of the plan panicked; the payload
    /// message is preserved so the engine can report instead of abort.
    WorkerPanic(String),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Type(e) => write!(f, "type error: {e}"),
            OpError::MissingContext { what, clause } => {
                write!(f, "{what} referenced in {clause}, which does not provide it")
            }
            OpError::BadSfunCall { function, reason } => {
                write!(f, "bad call to stateful function {function}: {reason}")
            }
            OpError::InvalidSpec(msg) => write!(f, "invalid operator spec: {msg}"),
            OpError::BadScalarCall { function, reason } => {
                write!(f, "bad call to function {function}: {reason}")
            }
            OpError::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<TypeError> for OpError {
    fn from(e: TypeError) -> Self {
        OpError::Type(e)
    }
}

/// Extract a human-readable message from a `catch_unwind`/`join` panic
/// payload. Panics carry `&str` or `String` in practice; anything else
/// is reported opaquely.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: OpError = TypeError::DivisionByZero.into();
        assert_eq!(e.to_string(), "type error: division by zero");
        let e = OpError::MissingContext { what: "aggregate", clause: "WHERE" };
        assert_eq!(e.to_string(), "aggregate referenced in WHERE, which does not provide it");
        let e = OpError::InvalidSpec("no group by".into());
        assert!(e.to_string().contains("no group by"));
    }
}
