//! Thread spawn/join shims.
//!
//! Normal builds delegate to `std::thread`. In a model run, spawned
//! closures become additional model threads under the deterministic
//! scheduler, and `join` is a scheduler-visible blocking operation that
//! contributes a happens-before edge from the child's last operation.

#[cfg(feature = "model")]
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    #[cfg(feature = "model")]
    Model {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

/// Handle returned by [`spawn`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawn a thread running `f`.
///
/// Inside a model run the closure runs as a model thread: it executes
/// on a real OS thread but only when the deterministic scheduler grants
/// it the baton, and every facade operation it performs is explored.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(feature = "model")]
    if crate::model::ctx::in_model() {
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let slot = result.clone();
        let tid = crate::model::ctx::with(move |c| {
            c.spawn(Box::new(move || {
                let v = f();
                *slot.lock().expect("model join slot") = Some(v);
            }))
        })
        .expect("in_model checked above");
        return JoinHandle { inner: Inner::Model { tid, result } };
    }
    JoinHandle { inner: Inner::Std(std::thread::spawn(f)) }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value. Panics if
    /// the thread panicked (matching the `handle.join().unwrap()` idiom).
    pub fn join(self) -> T {
        match self.inner {
            Inner::Std(h) => h.join().expect("sso_sync::thread join: child panicked"),
            #[cfg(feature = "model")]
            Inner::Model { tid, result } => {
                crate::model::ctx::with(|c| c.join(tid));
                result
                    .lock()
                    .expect("model join slot")
                    .take()
                    .expect("model thread finished without storing a result")
            }
        }
    }
}
