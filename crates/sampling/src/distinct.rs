//! Distinct sampling (Gibbons, *Distinct Sampling for Highly-Accurate
//! Answers to Distinct Values Queries and Event Reports*, VLDB 2001) —
//! reference \[19\] of the paper.
//!
//! A uniform sample of the *distinct* values in a stream, of bounded
//! size, supporting (a) unbiased distinct-count estimation and (b)
//! distinct-value subset queries ("how many distinct flows involve port
//! 53?"). The trick is hash-based level sampling: value `v` is assigned
//! the level `ℓ(v) = number of trailing zero bits of h(v)`; the sample
//! retains every distinct value with `ℓ(v) ≥ L`, and raises the
//! threshold `L` whenever the sample overflows its budget. Each retained
//! value represents `2^L` distinct values.
//!
//! This maps onto the sampling operator the same way min-hash does:
//! admit on a hash predicate, clean by raising the level — another
//! instance of the paper's admit/clean/finalize skeleton.

use std::collections::HashMap;

use crate::hash::splitmix64;

/// A bounded uniform sample over distinct values.
#[derive(Debug, Clone)]
pub struct DistinctSampler {
    capacity: usize,
    level: u32,
    /// value -> (its level, multiplicity seen while retained).
    sample: HashMap<u64, (u32, u64)>,
}

impl DistinctSampler {
    /// Create a sampler retaining at most `capacity` distinct values.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "distinct sampler capacity must be positive");
        DistinctSampler { capacity, level: 0, sample: HashMap::new() }
    }

    /// The level of a value: trailing zeros of its hash (geometric with
    /// mean 1, so ~`n/2^L` distinct values survive level `L`).
    fn value_level(value: u64) -> u32 {
        splitmix64(value).trailing_zeros()
    }

    /// Observe one value. Returns `true` if the value is currently in
    /// the sample after this observation.
    pub fn insert(&mut self, value: u64) -> bool {
        let lvl = Self::value_level(value);
        if lvl < self.level {
            return false;
        }
        let entry = self.sample.entry(value).or_insert((lvl, 0));
        entry.1 += 1;
        if self.sample.len() > self.capacity {
            self.raise_level();
        }
        self.sample.contains_key(&value)
    }

    /// The cleaning phase: raise the level until the sample fits.
    fn raise_level(&mut self) {
        while self.sample.len() > self.capacity {
            self.level += 1;
            let level = self.level;
            self.sample.retain(|_, (lvl, _)| *lvl >= level);
        }
    }

    /// Current sampling level `L`.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of retained distinct values.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Unbiased estimate of the number of distinct values observed:
    /// `|sample| · 2^L`.
    pub fn distinct_estimate(&self) -> f64 {
        self.sample.len() as f64 * (1u64 << self.level) as f64
    }

    /// Estimate the number of distinct values satisfying `pred`
    /// (a distinct-value subset query): matching retained values, scaled
    /// by `2^L`.
    pub fn distinct_estimate_where(&self, mut pred: impl FnMut(u64) -> bool) -> f64 {
        let matching = self.sample.keys().filter(|&&v| pred(v)).count();
        matching as f64 * (1u64 << self.level) as f64
    }

    /// The retained distinct values (each representing `2^L` distinct
    /// values of the stream) with their observed multiplicities.
    pub fn items(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.sample.iter().map(|(&v, &(_, count))| (v, count))
    }

    /// Estimated *event report*: total occurrences of all distinct
    /// values, `Σ multiplicities · 2^L` (Gibbons' event-report query).
    pub fn event_estimate(&self) -> f64 {
        let total: u64 = self.sample.values().map(|&(_, c)| c).sum();
        total as f64 * (1u64 << self.level) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DistinctSampler::new(0);
    }

    #[test]
    fn small_streams_are_exact() {
        let mut s = DistinctSampler::new(100);
        for v in 0..50u64 {
            s.insert(v);
            s.insert(v); // duplicates don't grow the sample
        }
        assert_eq!(s.level(), 0);
        assert_eq!(s.len(), 50);
        assert_eq!(s.distinct_estimate(), 50.0);
    }

    #[test]
    fn sample_stays_bounded() {
        let mut s = DistinctSampler::new(64);
        for v in 0..100_000u64 {
            s.insert(v);
        }
        assert!(s.len() <= 64);
        assert!(s.level() > 5, "level must have risen: {}", s.level());
    }

    #[test]
    fn distinct_estimate_is_accurate() {
        let mut s = DistinctSampler::new(512);
        let true_distinct = 200_000u64;
        for v in 0..true_distinct {
            s.insert(v);
            if v % 3 == 0 {
                s.insert(v); // duplicates must not bias the estimate
            }
        }
        let est = s.distinct_estimate();
        let rel = (est - true_distinct as f64).abs() / true_distinct as f64;
        // Std error ~ 1/sqrt(capacity) ~ 4.4%; allow 4 sigma.
        assert!(rel < 0.18, "estimate {est} vs {true_distinct} (rel {rel:.3})");
    }

    #[test]
    fn subset_distinct_estimates() {
        // Half the values are "even-keyed"; the subset estimate should
        // see that.
        let mut s = DistinctSampler::new(512);
        for v in 0..100_000u64 {
            s.insert(v);
        }
        let est_even = s.distinct_estimate_where(|v| v % 2 == 0);
        let rel = (est_even - 50_000.0).abs() / 50_000.0;
        assert!(rel < 0.25, "even-subset estimate {est_even} (rel {rel:.3})");
    }

    #[test]
    fn event_report_estimates_total_occurrences() {
        // Every distinct value appears exactly 5 times.
        let mut s = DistinctSampler::new(256);
        for round in 0..5 {
            for v in 0..20_000u64 {
                let _ = round;
                s.insert(v);
            }
        }
        let est = s.event_estimate();
        let truth = 100_000.0;
        let rel = (est - truth).abs() / truth;
        // Multiplicities are only counted while a value is retained, so
        // the event estimate has a downward bias of roughly the fraction
        // of occurrences seen before the value's final level epoch; with
        // all values inserted in rounds the loss is bounded.
        assert!(est <= truth * 1.3, "estimate {est} vs {truth}");
        assert!(rel < 0.6, "estimate {est} vs {truth} (rel {rel:.3})");
    }

    #[test]
    fn levels_partition_geometrically() {
        // ~half the values survive each level.
        let survivors = |level: u32| -> usize {
            (0..100_000u64).filter(|&v| DistinctSampler::value_level(v) >= level).count()
        };
        let l1 = survivors(1) as f64 / 100_000.0;
        let l2 = survivors(2) as f64 / 100_000.0;
        assert!((l1 - 0.5).abs() < 0.02, "level-1 survival {l1}");
        assert!((l2 - 0.25).abs() < 0.02, "level-2 survival {l2}");
    }

    #[test]
    fn insert_reports_membership() {
        let mut s = DistinctSampler::new(4);
        // With capacity 4 and many inserts, low-level values get
        // rejected immediately once the level rises.
        let mut rejected = 0;
        for v in 0..10_000u64 {
            if !s.insert(v) {
                rejected += 1;
            }
        }
        assert!(rejected > 9_000, "most values rejected at high level: {rejected}");
    }
}
