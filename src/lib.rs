//! # stream-sampler
//!
//! A from-scratch reproduction of **"Sampling Algorithms in a Stream
//! Operator"** (Johnson, Muthukrishnan, Rozenbaum — SIGMOD 2005): a
//! single generic stream-sampling operator that can be specialized —
//! via stateful functions, supergroups, and superaggregates — into a
//! wide family of stream-sampling algorithms, hosted in a miniature
//! Gigascope-style two-level DSMS.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `sso-types` | values, tuples, schemas, the `PKT` packet record |
//! | [`sampling`] | `sso-sampling` | reference algorithms: reservoir, lossy counting, KMV min-hash, subset-sum |
//! | [`operator`] | `sso-core` | the sampling operator, SFUN machinery, superaggregates, paper query builders |
//! | [`obs`] | `sso-obs` | telemetry: metrics registry, sampled spans, exporters, the `METRICS` meta-stream |
//! | [`query`] | `sso-query` | the §5 query language: lexer, parser, planner |
//! | [`runtime`] | `sso-runtime` | sharded execution: hash-partitioned worker shards, window-aligned merge, shard supervision |
//! | [`store`] | `sso-store` | durable operator state: window checkpoints, carry-over WAL, spill-to-disk group tables |
//! | [`faults`] | `sso-faults` | seeded, replayable fault plans: worker panics/stalls, bursts, reordering, skew, malformed tuples |
//! | [`gigascope`] | `sso-gigascope` | ring buffer, two-level plans, CPU accounting |
//! | [`netgen`] | `sso-netgen` | synthetic research-center and data-center packet feeds |
//! | [`analysis`] | `sso-analysis` | static audit: abstract interpretation certifying memory bounds, skew safety, degradation behavior |
//! | [`rewrite`] | `sso-rewrite` | certified plan-rewrite optimizer: canonical normalization, equivalence prover, multi-query sharing |
//!
//! ## Quick start
//!
//! ```
//! use stream_sampler::prelude::*;
//!
//! // The paper's dynamic subset-sum sampling query, as text.
//! let query = "
//!     SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
//!     FROM PKT
//!     WHERE ssample(len, 100) = TRUE
//!     GROUP BY time/20 as tb, srcIP, destIP, uts
//!     HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
//!     CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
//!     CLEANING BY ssclean_with(sum(len)) = TRUE";
//! let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();
//!
//! // Run it over 30 seconds of a synthetic bursty feed.
//! let packets = research_feed(42).take_seconds(30);
//! let tuples: Vec<_> = packets.iter().map(|p| p.to_tuple()).collect();
//! let windows = op.run(tuples.iter()).unwrap();
//! assert!(!windows.is_empty());
//! for w in &windows {
//!     assert!(w.rows.len() <= 110, "each window holds ~100 samples");
//! }
//! ```

pub use sso_analysis as analysis;
pub use sso_core as operator;
pub use sso_faults as faults;
pub use sso_gigascope as gigascope;
pub use sso_netgen as netgen;
pub use sso_obs as obs;
pub use sso_profile as profile;
pub use sso_query as query;
pub use sso_rewrite as rewrite;
pub use sso_runtime as runtime;
pub use sso_sampling as sampling;
pub use sso_store as store;
pub use sso_types as types;

/// The names most programs need.
pub mod prelude {
    pub use sso_core::libs::reservoir::ReservoirOpConfig;
    pub use sso_core::libs::subset_sum::SubsetSumOpConfig;
    pub use sso_core::{queries, Degradation, OperatorSpec, SamplingOperator, WindowOutput};
    pub use sso_core::{shard_plan, MergeRule, ShardPlan};
    pub use sso_faults::{FaultEvent, FaultPlan};
    pub use sso_gigascope::{
        run_fanout_shared, run_plan, run_plan_sharded, run_plan_threaded, PrefilterNode,
        SelectionNode, ShardedRunReport, SharedGroup, SharedQueryPlan, TwoLevelPlan,
    };
    pub use sso_netgen::{burst_feed, datacenter_feed, ddos_feed, research_feed};
    pub use sso_obs::{metrics_schema, snapshot_tuples, Registry, Snapshot};
    pub use sso_query::{
        base_stream_schema, check_shard_mergeable, compile, parse_query, PlannerConfig,
    };
    pub use sso_runtime::{run_sharded, Backpressure, RuntimeConfig, Supervision};
    pub use sso_types::{format_ipv4, Packet, Schema, Tuple, Value};
}
