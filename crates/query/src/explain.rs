//! Human-readable rendering of a planned operator — `EXPLAIN` output
//! for the CLI and for debugging planner changes.

use sso_core::agg::AggSpec;
use sso_core::operator::OperatorSpec;
use sso_core::superagg::SuperAggSpec;

/// Render a planned spec as an indented plan description.
pub fn explain(spec: &OperatorSpec) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    line("SamplingOperator".to_string());
    line(format!("  select ({} columns):", spec.select.len()));
    for (name, e) in &spec.select {
        line(format!("    {name} := {e:?}"));
    }
    if let Some(w) = &spec.where_clause {
        line(format!("  where: {w:?}"));
    }
    line(format!("  group by ({} variables):", spec.group_by.len()));
    for (i, (name, e)) in spec.group_by.iter().enumerate() {
        let mut tags = Vec::new();
        if spec.window_indices.contains(&i) {
            tags.push("window");
        }
        if spec.supergroup_indices.contains(&i) {
            tags.push("supergroup");
        }
        let tag = if tags.is_empty() { String::new() } else { format!("  [{}]", tags.join(", ")) };
        line(format!("    {name} := {e:?}{tag}"));
    }
    if spec.supergroup_indices.is_empty() {
        line("  supergroup: ALL (one state per window)".to_string());
    }
    if !spec.aggregates.is_empty() {
        line(format!("  aggregates ({} slots):", spec.aggregates.len()));
        for (i, a) in spec.aggregates.iter().enumerate() {
            let desc = match a {
                AggSpec::Count => "count(*)".to_string(),
                AggSpec::Sum(e) => format!("sum({e:?})"),
                AggSpec::Min(e) => format!("min({e:?})"),
                AggSpec::Max(e) => format!("max({e:?})"),
                AggSpec::First(e) => format!("first({e:?})"),
                AggSpec::Last(e) => format!("last({e:?})"),
            };
            line(format!("    [{i}] {desc}"));
        }
    }
    if !spec.superaggs.is_empty() {
        line(format!("  superaggregates ({} slots):", spec.superaggs.len()));
        for (i, a) in spec.superaggs.iter().enumerate() {
            let desc = match a {
                SuperAggSpec::CountDistinct => "count_distinct$(*)".to_string(),
                SuperAggSpec::KthSmallest { expr, k } => {
                    format!("Kth_smallest_value$({expr:?}, {k})")
                }
                SuperAggSpec::Sum { expr, agg_slot } => {
                    format!("sum$({expr:?})  [paired with aggregate slot {agg_slot}]")
                }
                SuperAggSpec::Extreme { expr, max } => {
                    format!("{}$({expr:?})", if *max { "max" } else { "min" })
                }
            };
            line(format!("    [{i}] {desc}"));
        }
    }
    if !spec.sfun_libs.is_empty() {
        line(format!("  stateful-function libraries ({}):", spec.sfun_libs.len()));
        for (i, lib) in spec.sfun_libs.iter().enumerate() {
            line(format!("    [{i}] {}", lib.name()));
        }
    }
    if let Some(c) = &spec.cleaning_when {
        line(format!("  cleaning when: {c:?}"));
    }
    if let Some(c) = &spec.cleaning_by {
        line(format!("  cleaning by (keep): {c:?}"));
    }
    if let Some(h) = &spec.having {
        line(format!("  having: {h:?}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::plan::{plan, PlannerConfig};
    use sso_types::Packet;

    #[test]
    fn explains_the_subset_sum_query() {
        let q = parse_query(
            "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
             FROM PKT
             WHERE ssample(len, 100) = TRUE
             GROUP BY time/20 as tb, srcIP, destIP, uts
             HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
             CLEANING BY ssclean_with(sum(len)) = TRUE",
        )
        .unwrap();
        let spec = plan(&q, &Packet::schema(), &PlannerConfig::standard()).unwrap();
        let text = explain(&spec);
        assert!(text.contains("tb := (Column(0) Div Literal(20))  [window]"), "{text}");
        assert!(text.contains("supergroup: ALL"), "{text}");
        assert!(text.contains("subsetsum_sampling_state"), "{text}");
        assert!(text.contains("count_distinct$(*)"), "{text}");
        assert!(text.contains("cleaning when"), "{text}");
        assert!(text.contains("having"), "{text}");
    }

    #[test]
    fn explains_supergroup_tags() {
        let q = parse_query(
            "SELECT tb, srcIP, HX FROM PKT
             WHERE HX <= Kth_smallest_value$(HX, 8)
             GROUP BY time/60 as tb, srcIP, H(destIP) as HX
             SUPERGROUP srcIP",
        )
        .unwrap();
        let spec = plan(&q, &Packet::schema(), &PlannerConfig::empty()).unwrap();
        let text = explain(&spec);
        assert!(text.contains("srcIP := Column(2)  [supergroup]"), "{text}");
        assert!(text.contains("Kth_smallest_value$"), "{text}");
    }
}
