//! Offline drop-in subset of `serde`.
//!
//! Upstream serde separates data model from format; this workspace only
//! ever serializes plain structs of primitives to JSON, so the stub
//! collapses the two: [`Serialize`] writes JSON directly and
//! `serde_json` is a thin wrapper over it. The `serde_derive` proc
//! macro (re-exported here, as upstream does with the `derive`
//! feature) emits `write_json` for named-field structs.

// Lets the derive macro's `::serde::...` expansion resolve inside this
// crate's own tests as well as in downstream crates.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A value that can render itself as JSON.
pub trait Serialize {
    /// Append this value's JSON to `out`. `indent` is the current
    /// pretty-printing depth (two spaces per level).
    fn write_json(&self, out: &mut String, indent: usize);
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String, _indent: usize) {
        if self.is_finite() {
            // Always carry a decimal point so the value reads back as
            // a float (matches serde_json's behavior for f64).
            let s = self.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String, indent: usize) {
        (*self as f64).write_json(out, indent);
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String, indent: usize) {
        (**self).write_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.write_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_indent(out, indent + 1);
            item.write_json(out, indent + 1);
        }
        out.push('\n');
        push_indent(out, indent);
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Support code the derive macro expands against.
pub mod ser {
    use super::{push_indent, write_json_string, Serialize};

    /// Emit a JSON object from `(name, value)` pairs; used by the
    /// derived `Serialize` impls.
    pub fn write_struct(out: &mut String, indent: usize, fields: &[(&str, &dyn Serialize)]) {
        if fields.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push('{');
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_indent(out, indent + 1);
            write_json_string(out, name);
            out.push_str(": ");
            value.write_json(out, indent + 1);
        }
        out.push('\n');
        push_indent(out, indent);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        v.write_json(&mut out, 0);
        out
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&42u64), "42");
        assert_eq!(json(&-3i64), "-3");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2.0");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn vec_pretty_prints() {
        assert_eq!(json(&Vec::<u64>::new()), "[]");
        assert_eq!(json(&vec![1u64, 2]), "[\n  1,\n  2\n]");
    }

    #[test]
    fn derived_struct() {
        #[derive(crate::Serialize)]
        struct Row {
            tb: u64,
            err: f64,
            name: &'static str,
        }
        let row = Row { tb: 7, err: 0.25, name: "x" };
        assert_eq!(json(&row), "{\n  \"tb\": 7,\n  \"err\": 0.25,\n  \"name\": \"x\"\n}");
    }
}
