//! Recursive-descent parser for the §5 query syntax.

use crate::ast::{AstExpr, BinAstOp, ExprKind, GroupItem, Name, Query, SelectItem, Span};
use crate::error::QueryError;
use crate::lexer::{Lexer, Spanned, Token};

/// Parse a complete query.
pub fn parse_query(text: &str) -> Result<Query, QueryError> {
    let tokens = Lexer::new(text).tokenize()?;
    let mut p = Parser { tokens, pos: 0, len: text.len() };
    let q = p.query()?;
    if let Some(t) = p.peek_spanned() {
        return Err(QueryError::Parse {
            position: t.position,
            message: format!("unexpected trailing input: {:?}", t.token),
        });
    }
    Ok(q)
}

/// Parse a standalone expression (useful for tests and tools).
pub fn parse_expr(text: &str) -> Result<AstExpr, QueryError> {
    let tokens = Lexer::new(text).tokenize()?;
    let mut p = Parser { tokens, pos: 0, len: text.len() };
    let e = p.expr()?;
    if let Some(t) = p.peek_spanned() {
        return Err(QueryError::Parse {
            position: t.position,
            message: format!("unexpected trailing input: {:?}", t.token),
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek_spanned(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn peek(&self) -> Option<&Token> {
        self.peek_spanned().map(|s| &s.token)
    }

    fn position(&self) -> usize {
        self.peek_spanned().map(|s| s.position).unwrap_or(self.len)
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        if self.pos == 0 {
            return 0;
        }
        self.tokens.get(self.pos - 1).map(|s| s.end).unwrap_or(self.len)
    }

    fn binary(op: BinAstOp, lhs: AstExpr, rhs: AstExpr) -> AstExpr {
        let span = lhs.span.to(rhs.span);
        AstExpr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Render a token (or its absence) for an error message.
    fn describe(t: Option<&Token>) -> String {
        match t {
            Some(tok) => format!("{tok:?}"),
            None => "end of input".to_string(),
        }
    }

    fn expect(&mut self, t: Token, what: &str) -> Result<(), QueryError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(QueryError::Parse {
                position: self.position(),
                message: format!("expected {what}, found {}", Self::describe(self.peek())),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<Name, QueryError> {
        let start = self.position();
        match self.bump() {
            Some(Token::Ident(s)) => Ok(Name::new(s, Span::new(start, self.prev_end()))),
            other => Err(QueryError::Parse {
                position: self.position(),
                message: format!("expected {what}, found {}", Self::describe(other.as_ref())),
            }),
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect(Token::Select, "SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            select.push(self.select_item()?);
        }
        self.expect(Token::From, "FROM")?;
        let from = self.ident("stream name")?;
        let where_clause = if self.eat(&Token::Where) { Some(self.expr()?) } else { None };
        self.expect(Token::Group, "GROUP BY")?;
        // GROUP_BY lexes as a single Group token; GROUP BY as two.
        let _ = self.eat(&Token::By);
        let mut group_by = vec![self.group_item()?];
        while self.eat(&Token::Comma) {
            group_by.push(self.group_item()?);
        }
        let mut supergroup = Vec::new();
        if self.eat(&Token::Supergroup) {
            let _ = self.eat(&Token::By); // "SUPERGROUP BY" variant
            supergroup.push(self.ident("supergroup variable")?);
            while self.eat(&Token::Comma) {
                supergroup.push(self.ident("supergroup variable")?);
            }
        }
        let having = if self.eat(&Token::Having) { Some(self.expr()?) } else { None };
        let mut cleaning_when = None;
        let mut cleaning_by = None;
        while self.eat(&Token::Cleaning) {
            match self.bump() {
                Some(Token::When) => cleaning_when = Some(self.expr()?),
                Some(Token::By) => cleaning_by = Some(self.expr()?),
                other => {
                    return Err(QueryError::Parse {
                        position: self.position(),
                        message: format!(
                            "expected WHEN or BY after CLEANING, found {}",
                            Self::describe(other.as_ref())
                        ),
                    })
                }
            }
        }
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            supergroup,
            having,
            cleaning_when,
            cleaning_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        let expr = self.expr()?;
        let alias = if self.eat(&Token::As) { Some(self.ident("alias")?.text) } else { None };
        Ok(SelectItem { expr, alias })
    }

    fn group_item(&mut self) -> Result<GroupItem, QueryError> {
        let expr = self.expr()?;
        let alias = if self.eat(&Token::As) { Some(self.ident("alias")?.text) } else { None };
        Ok(GroupItem { expr, alias })
    }

    /// Expression entry: OR-level.
    pub(crate) fn expr(&mut self) -> Result<AstExpr, QueryError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Self::binary(BinAstOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr, QueryError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.not_expr()?;
            lhs = Self::binary(BinAstOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<AstExpr, QueryError> {
        let start = self.position();
        if self.eat(&Token::Not) {
            let inner = self.not_expr()?;
            let span = Span::new(start, inner.span.end);
            Ok(AstExpr::new(ExprKind::Not(Box::new(inner)), span))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr, QueryError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinAstOp::Eq,
            Some(Token::Ne) => BinAstOp::Ne,
            Some(Token::Le) => BinAstOp::Le,
            Some(Token::Ge) => BinAstOp::Ge,
            Some(Token::Lt) => BinAstOp::Lt,
            Some(Token::Gt) => BinAstOp::Gt,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(Self::binary(op, lhs, rhs))
    }

    fn additive(&mut self) -> Result<AstExpr, QueryError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinAstOp::Add,
                Some(Token::Minus) => BinAstOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Self::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<AstExpr, QueryError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinAstOp::Mul,
                Some(Token::Slash) => BinAstOp::Div,
                Some(Token::Percent) => BinAstOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Self::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<AstExpr, QueryError> {
        let start = self.position();
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            let span = Span::new(start, inner.span.end);
            Ok(AstExpr::new(ExprKind::Neg(Box::new(inner)), span))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<AstExpr, QueryError> {
        let position = self.position();
        let spanned = |p: &Parser, kind| {
            let span = Span::new(position, p.prev_end());
            AstExpr::new(kind, span)
        };
        match self.bump() {
            Some(Token::Int(v)) => Ok(spanned(self, ExprKind::Int(v))),
            Some(Token::Float(v)) => Ok(spanned(self, ExprKind::Float(v))),
            Some(Token::Str(s)) => Ok(spanned(self, ExprKind::Str(s))),
            Some(Token::True) => Ok(spanned(self, ExprKind::Bool(true))),
            Some(Token::False) => Ok(spanned(self, ExprKind::Bool(false))),
            Some(Token::Star) => Ok(spanned(self, ExprKind::Star)),
            Some(Token::LParen) => {
                let mut e = self.expr()?;
                self.expect(Token::RParen, "')'")?;
                // The parenthesized expression spans the parens too.
                e.span = Span::new(position, self.prev_end());
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.eat(&Token::LParen) {
                    let args = self.call_args()?;
                    Ok(spanned(self, ExprKind::Call { name, superagg: false, args }))
                } else {
                    Ok(spanned(self, ExprKind::Ident(name)))
                }
            }
            Some(Token::DollarIdent(name)) => {
                self.expect(Token::LParen, "'(' after superaggregate name")?;
                let args = self.call_args()?;
                Ok(spanned(self, ExprKind::Call { name, superagg: true, args }))
            }
            other => Err(QueryError::Parse {
                position,
                message: format!("expected expression, found {}", Self::describe(other.as_ref())),
            }),
        }
    }

    fn call_args(&mut self) -> Result<Vec<AstExpr>, QueryError> {
        let mut args = Vec::new();
        if self.eat(&Token::RParen) {
            return Ok(args);
        }
        args.push(self.expr()?);
        while self.eat(&Token::Comma) {
            args.push(self.expr()?);
        }
        self.expect(Token::RParen, "')'")?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_aggregation() {
        let q = parse_query(
            "Select tb, srcIP, destIP, sum(len) From PKT Group by time/60 as tb, srcIP, destIP",
        )
        .unwrap();
        assert_eq!(q.from, "PKT");
        assert_eq!(q.select.len(), 4);
        assert_eq!(q.group_by.len(), 3);
        assert_eq!(q.group_by[0].name(0), "tb");
        assert!(q.cleaning_when.is_none());
    }

    #[test]
    fn parses_the_subset_sum_query_from_the_paper() {
        let q = parse_query(
            "SELECT uts, srcIP, destIP, UMAX(sum(len), ssthreshold()) \
             FROM PKTS \
             WHERE ssample(len, 100) = TRUE \
             GROUP BY time/20 as tb, srcIP, destIP, uts \
             HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE \
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY ssclean_with(sum(len)) = TRUE",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 4);
        assert!(q.where_clause.is_some());
        assert!(q.having.is_some());
        assert!(q.cleaning_when.is_some());
        assert!(q.cleaning_by.is_some());
        // count_distinct$(*) parsed as a superaggregate over Star.
        let h = q.having.unwrap().to_string();
        assert!(h.contains("count_distinct$(*)"), "{h}");
    }

    #[test]
    fn parses_the_minhash_query_with_supergroup() {
        let q = parse_query(
            "SELECT tb, srcIP, HX \
             FROM TCP \
             WHERE HX <= Kth_smallest_value$(HX, 100) \
             GROUP_BY time/60 as tb, srcIP, H(destIP) as HX \
             SUPERGROUP BY tb, srcIP \
             HAVING HX <= Kth_smallest_value$(HX, 100) \
             CLEANING WHEN count_distinct$(*) >= 100 \
             CLEANING BY HX <= Kth_smallest_value$(HX, 100)",
        )
        .unwrap();
        assert_eq!(q.supergroup, vec!["tb".to_string(), "srcIP".to_string()]);
        assert_eq!(q.group_by[2].name(2), "HX");
    }

    #[test]
    fn parses_the_heavy_hitter_query() {
        let q = parse_query(
            "SELECT tb, srcIP, sum(len), count(*) \
             FROM TCP \
             GROUP BY time/60 as tb, srcIP \
             CLEANING WHEN local_count(100) = TRUE \
             CLEANING BY count(*) + first(current_bucket()) > current_bucket()",
        )
        .unwrap();
        assert!(q.cleaning_by.unwrap().to_string().contains("current_bucket()"));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
        let e = parse_expr("a = 1 AND b = 2 OR NOT c").unwrap();
        assert_eq!(e.to_string(), "(((a = 1) AND (b = 2)) OR (NOT c))");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "((1 + 2) * 3)");
        let e = parse_expr("-x + 1").unwrap();
        assert_eq!(e.to_string(), "((-x) + 1)");
    }

    #[test]
    fn cleaning_clauses_in_either_order() {
        let q = parse_query("SELECT a FROM S GROUP BY a CLEANING BY x = 1 CLEANING WHEN y = 2")
            .unwrap();
        assert!(q.cleaning_when.is_some());
        assert!(q.cleaning_by.is_some());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_query("SELECT FROM S GROUP BY a").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }), "{err}");
        let err = parse_query("SELECT a FROM S").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
        let err = parse_expr("1 +").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse_expr("1 2").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn round_trip_through_display() {
        let text = "SELECT tb, srcIP, HX FROM TCP WHERE HX <= Kth_smallest_value$(HX, 100) \
                    GROUP BY time/60 as tb, srcIP, H(destIP) as HX SUPERGROUP tb, srcIP";
        let q1 = parse_query(text).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        assert_eq!(q1, q2, "pretty-printed query must re-parse to the same AST");
    }

    #[test]
    fn spans_point_into_the_source() {
        let text = "SELECT tb FROM PKT WHERE len > 100 GROUP BY time/60 as tb";
        let q = parse_query(text).unwrap();
        assert_eq!(&text[q.from.span.start..q.from.span.end], "PKT");
        let w = q.where_clause.unwrap();
        assert_eq!(&text[w.span.start..w.span.end], "len > 100");
        match &w.kind {
            ExprKind::Binary { lhs, rhs, .. } => {
                assert_eq!(&text[lhs.span.start..lhs.span.end], "len");
                assert_eq!(&text[rhs.span.start..rhs.span.end], "100");
            }
            other => panic!("expected binary predicate, got {other:?}"),
        }
        let gb = &q.group_by[0].expr;
        assert_eq!(&text[gb.span.start..gb.span.end], "time/60");
    }

    #[test]
    fn call_and_paren_spans() {
        let text = "prefix(srcIP, 24) = (1 + 2)";
        let e = parse_expr(text).unwrap();
        match &e.kind {
            ExprKind::Binary { lhs, rhs, .. } => {
                assert_eq!(&text[lhs.span.start..lhs.span.end], "prefix(srcIP, 24)");
                assert_eq!(&text[rhs.span.start..rhs.span.end], "(1 + 2)");
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    proptest::proptest! {
        /// Any expression the generator builds must survive a
        /// print -> parse round trip.
        #[test]
        fn expr_round_trips(e in arb_expr(3)) {
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            proptest::prop_assert_eq!(e, reparsed, "printed: {}", printed);
        }

        /// The parser never panics on arbitrary input: it either parses
        /// or returns a positioned error.
        #[test]
        fn parser_never_panics(input in "\\PC{0,120}") {
            let _ = parse_query(&input);
            let _ = parse_expr(&input);
        }
    }

    fn arb_expr(depth: u32) -> impl proptest::strategy::Strategy<Value = AstExpr> {
        use proptest::prelude::*;
        let leaf = prop_oneof![
            (0u64..1000).prop_map(|v| AstExpr::from(ExprKind::Int(v))),
            "[a-z][a-z0-9_]{0,6}"
                .prop_filter("not a keyword", |s| {
                    !matches!(
                        s.to_ascii_uppercase().as_str(),
                        "SELECT"
                            | "FROM"
                            | "WHERE"
                            | "GROUP"
                            | "BY"
                            | "AS"
                            | "SUPERGROUP"
                            | "HAVING"
                            | "CLEANING"
                            | "WHEN"
                            | "AND"
                            | "OR"
                            | "NOT"
                            | "TRUE"
                            | "FALSE"
                            | "GROUP_BY"
                    )
                })
                .prop_map(|n| AstExpr::from(ExprKind::Ident(n))),
            Just(AstExpr::from(ExprKind::Bool(true))),
            Just(AstExpr::from(ExprKind::Bool(false))),
        ];
        leaf.prop_recursive(depth, 32, 3, |inner| {
            use proptest::prelude::*;
            prop_oneof![
                (
                    prop_oneof![
                        Just(BinAstOp::Add),
                        Just(BinAstOp::Mul),
                        Just(BinAstOp::Le),
                        Just(BinAstOp::And),
                        Just(BinAstOp::Or),
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, l, r)| AstExpr::from(ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r)
                    })),
                inner.clone().prop_map(|e| AstExpr::from(ExprKind::Not(Box::new(e)))),
                (
                    "[a-z][a-z0-9_]{0,6}".prop_filter("not kw", |s| !matches!(
                        s.to_ascii_uppercase().as_str(),
                        "SELECT"
                            | "FROM"
                            | "WHERE"
                            | "GROUP"
                            | "BY"
                            | "AS"
                            | "SUPERGROUP"
                            | "HAVING"
                            | "CLEANING"
                            | "WHEN"
                            | "AND"
                            | "OR"
                            | "NOT"
                            | "TRUE"
                            | "FALSE"
                            | "GROUP_BY"
                    )),
                    proptest::bool::ANY,
                    proptest::collection::vec(inner, 0..3)
                )
                    .prop_map(|(name, superagg, args)| AstExpr::from(
                        ExprKind::Call { name, superagg, args }
                    )),
            ]
        })
    }
}
