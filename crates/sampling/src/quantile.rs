//! Greenwald–Khanna ε-approximate quantile summaries (SIGMOD 2001) —
//! the paper's §8 counter-example.
//!
//! The conclusion singles out this algorithm as one that does **not**
//! fit the sampling operator: its COMPRESS phase merges *adjacent*
//! samples, which requires inter-sample communication, whereas the
//! operator's cleaning phase evaluates each group independently. We
//! implement it here (a) to make that boundary concrete in code — see
//! the `operator_expressibility` notes and tests — and (b) because the
//! paper's companion work \[14\] ran it as a stream UDAF, which our
//! `sso-gigascope` users can do directly with this type.
//!
//! Guarantee: after `insert`ing `n` values, `query(phi)` returns a value
//! whose rank is within `ε·n` of `⌈phi·n⌉`.

/// One summary tuple `(v, g, Δ)`: value, rank gap to the previous
/// tuple's minimum rank, and maximum rank uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GkEntry {
    value: f64,
    g: u64,
    delta: u64,
}

/// A Greenwald–Khanna ε-approximate quantile summary.
#[derive(Debug, Clone)]
pub struct GkSummary {
    epsilon: f64,
    entries: Vec<GkEntry>,
    count: u64,
    compress_every: u64,
}

impl GkSummary {
    /// Create a summary with error bound `epsilon` (0 < ε < 1).
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        GkSummary {
            epsilon,
            entries: Vec::new(),
            count: 0,
            compress_every: (1.0 / (2.0 * epsilon)).floor().max(1.0) as u64,
        }
    }

    /// Observe one value.
    pub fn insert(&mut self, value: f64) {
        let pos = self.entries.partition_point(|e| e.value < value);
        let delta = if pos == 0 || pos == self.entries.len() {
            // New minimum or maximum: exact rank.
            0
        } else {
            ((2.0 * self.epsilon * self.count as f64).floor() as u64).saturating_sub(1)
        };
        self.entries.insert(pos, GkEntry { value, g: 1, delta });
        self.count += 1;
        if self.count.is_multiple_of(self.compress_every) {
            self.compress();
        }
    }

    /// The COMPRESS phase: merge a tuple into its successor when their
    /// combined uncertainty stays within `2·ε·n`. This is exactly the
    /// *inter-sample* operation the sampling operator cannot express —
    /// a CLEANING BY predicate sees one group at a time, but deleting a
    /// GK tuple must add its `g` to the *adjacent* tuple.
    fn compress(&mut self) {
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut i = self.entries.len().saturating_sub(2);
        while i >= 1 {
            let merged_g = self.entries[i].g + self.entries[i + 1].g;
            if merged_g + self.entries[i + 1].delta <= threshold {
                self.entries[i + 1].g = merged_g;
                self.entries.remove(i);
            }
            i -= 1;
        }
    }

    /// The ε-approximate `phi`-quantile (0 ≤ phi ≤ 1).
    ///
    /// Returns `None` before any insert.
    pub fn query(&self, phi: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let rank = (phi * self.count as f64).ceil().max(1.0) as u64;
        let allow = (self.epsilon * self.count as f64) as u64;
        // Standard GK query: the last entry whose maximum possible rank
        // stays within rank + εn.
        let mut r_min = 0u64;
        let mut answer = self.entries[0].value;
        for e in &self.entries {
            r_min += e.g;
            if r_min + e.delta > rank + allow {
                return Some(answer);
            }
            answer = e.value;
        }
        Some(answer)
    }

    /// Values observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Summary size in tuples (the space the sketch actually uses).
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn rejects_bad_epsilon() {
        let _ = GkSummary::new(0.0);
    }

    #[test]
    fn empty_summary_returns_none() {
        let s = GkSummary::new(0.01);
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_value_is_every_quantile() {
        let mut s = GkSummary::new(0.1);
        s.insert(42.0);
        assert_eq!(s.query(0.0), Some(42.0));
        assert_eq!(s.query(0.5), Some(42.0));
        assert_eq!(s.query(1.0), Some(42.0));
    }

    fn rank_error(sorted: &[f64], answer: f64, phi: f64) -> f64 {
        let n = sorted.len() as f64;
        let target = (phi * n).ceil().max(1.0);
        // The answer's possible ranks span its duplicate run.
        let lo = sorted.partition_point(|&v| v < answer) as f64 + 1.0;
        let hi = sorted.partition_point(|&v| v <= answer) as f64;
        if target < lo {
            (lo - target) / n
        } else if target > hi {
            (target - hi) / n
        } else {
            0.0
        }
    }

    #[test]
    fn quantiles_within_epsilon_on_uniform_data() {
        let epsilon = 0.01;
        let mut s = GkSummary::new(epsilon);
        let mut rng = StdRng::seed_from_u64(1);
        let mut values: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>() * 1000.0).collect();
        for &v in &values {
            s.insert(v);
        }
        values.sort_by(f64::total_cmp);
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let ans = s.query(phi).unwrap();
            let err = rank_error(&values, ans, phi);
            assert!(err <= epsilon + 1e-9, "phi {phi}: rank error {err}");
        }
    }

    #[test]
    fn quantiles_within_epsilon_on_skewed_data() {
        let epsilon = 0.02;
        let mut s = GkSummary::new(epsilon);
        let mut rng = StdRng::seed_from_u64(2);
        // Heavy-tailed: packet-length-like mix.
        let mut values: Vec<f64> = (0..30_000)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    40.0
                } else if rng.gen::<f64>() < 0.6 {
                    1500.0
                } else {
                    rng.gen_range(41.0..1500.0)
                }
            })
            .collect();
        for &v in &values {
            s.insert(v);
        }
        values.sort_by(f64::total_cmp);
        for phi in [0.1, 0.5, 0.9] {
            let ans = s.query(phi).unwrap();
            let err = rank_error(&values, ans, phi);
            assert!(err <= epsilon + 1e-9, "phi {phi}: rank error {err} (answer {ans})");
        }
    }

    #[test]
    fn sorted_input_compresses() {
        // Sorted input is GK's best case; the summary must stay far
        // below n.
        let mut s = GkSummary::new(0.01);
        for i in 0..100_000 {
            s.insert(i as f64);
        }
        assert!(s.size() < 2_000, "summary size {} should be O((1/eps) log(eps n))", s.size());
        let median = s.query(0.5).unwrap();
        assert!((median - 50_000.0).abs() < 1_500.0, "median {median}");
    }

    #[test]
    fn space_stays_sublinear_on_random_input() {
        let mut s = GkSummary::new(0.01);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            s.insert(rng.gen::<f64>());
        }
        assert!(s.size() < 5_000, "summary size {}", s.size());
    }

    #[test]
    fn extremes_are_exact() {
        let mut s = GkSummary::new(0.05);
        for i in 0..1000 {
            s.insert(i as f64);
        }
        assert_eq!(s.query(0.0), Some(0.0));
        assert_eq!(s.query(1.0), Some(999.0));
    }
}
