//! The parsed query representation, plus a pretty-printer used for
//! diagnostics and round-trip tests.

use std::fmt;

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinAstOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinAstOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinAstOp::Add => "+",
            BinAstOp::Sub => "-",
            BinAstOp::Mul => "*",
            BinAstOp::Div => "/",
            BinAstOp::Rem => "%",
            BinAstOp::Eq => "=",
            BinAstOp::Ne => "<>",
            BinAstOp::Lt => "<",
            BinAstOp::Le => "<=",
            BinAstOp::Gt => ">",
            BinAstOp::Ge => ">=",
            BinAstOp::And => "AND",
            BinAstOp::Or => "OR",
        }
    }
}

/// An unresolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Integer literal.
    Int(u64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// A name: column, group-by variable — resolved by the planner.
    Ident(String),
    /// `*` (only valid as a call argument, e.g. `count_distinct$(*)`).
    Star,
    /// A function call; `superagg` marks the `$` suffix.
    Call {
        /// Function name.
        name: String,
        /// `true` for `name$(...)`.
        superagg: bool,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinAstOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// `NOT expr`.
    Not(Box<AstExpr>),
    /// `-expr`.
    Neg(Box<AstExpr>),
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Int(v) => write!(f, "{v}"),
            AstExpr::Float(v) => {
                if v.fract() == 0.0 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            AstExpr::Str(s) => write!(f, "'{s}'"),
            AstExpr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            AstExpr::Ident(n) => write!(f, "{n}"),
            AstExpr::Star => write!(f, "*"),
            AstExpr::Call { name, superagg, args } => {
                write!(f, "{name}{}(", if *superagg { "$" } else { "" })?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            AstExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            AstExpr::Not(e) => write!(f, "(NOT {e})"),
            AstExpr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

/// One SELECT-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: AstExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: the alias, a bare identifier's own name,
    /// or a generated `col<i>`.
    pub fn output_name(&self, index: usize) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            AstExpr::Ident(n) => n.clone(),
            AstExpr::Call { name, superagg, .. } => {
                format!("{name}{}", if *superagg { "$" } else { "" })
            }
            _ => format!("col{index}"),
        }
    }
}

/// One GROUP BY entry: an expression with an optional `AS` name.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupItem {
    /// The grouping expression.
    pub expr: AstExpr,
    /// Optional `AS` name; a bare identifier names itself.
    pub alias: Option<String>,
}

impl GroupItem {
    /// The group-by variable's name.
    pub fn name(&self, index: usize) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            AstExpr::Ident(n) => n.clone(),
            _ => format!("gb{index}"),
        }
    }
}

/// A parsed sampling query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM stream name.
    pub from: String,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY list.
    pub group_by: Vec<GroupItem>,
    /// SUPERGROUP variable names (empty = the ALL supergroup).
    pub supergroup: Vec<String>,
    /// HAVING predicate.
    pub having: Option<AstExpr>,
    /// CLEANING WHEN predicate.
    pub cleaning_when: Option<AstExpr>,
    /// CLEANING BY predicate.
    pub cleaning_by: Option<AstExpr>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.expr)?;
            if let Some(a) = &s.alias {
                write!(f, " as {a}")?;
            }
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        write!(f, " GROUP BY ")?;
        for (i, g) in self.group_by.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", g.expr)?;
            if let Some(a) = &g.alias {
                write!(f, " as {a}")?;
            }
        }
        if !self.supergroup.is_empty() {
            write!(f, " SUPERGROUP {}", self.supergroup.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some(c) = &self.cleaning_when {
            write!(f, " CLEANING WHEN {c}")?;
        }
        if let Some(c) = &self.cleaning_by {
            write!(f, " CLEANING BY {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display() {
        let e = AstExpr::Binary {
            op: BinAstOp::Le,
            lhs: Box::new(AstExpr::Ident("HX".into())),
            rhs: Box::new(AstExpr::Call {
                name: "Kth_smallest_value".into(),
                superagg: true,
                args: vec![AstExpr::Ident("HX".into()), AstExpr::Int(100)],
            }),
        };
        assert_eq!(e.to_string(), "(HX <= Kth_smallest_value$(HX, 100))");
    }

    #[test]
    fn select_item_names() {
        let item = SelectItem { expr: AstExpr::Ident("srcIP".into()), alias: None };
        assert_eq!(item.output_name(0), "srcIP");
        let item = SelectItem {
            expr: AstExpr::Call { name: "sum".into(), superagg: false, args: vec![] },
            alias: Some("total".into()),
        };
        assert_eq!(item.output_name(1), "total");
        let item = SelectItem { expr: AstExpr::Int(1), alias: None };
        assert_eq!(item.output_name(2), "col2");
    }

    #[test]
    fn group_item_names() {
        let g = GroupItem {
            expr: AstExpr::Binary {
                op: BinAstOp::Div,
                lhs: Box::new(AstExpr::Ident("time".into())),
                rhs: Box::new(AstExpr::Int(60)),
            },
            alias: Some("tb".into()),
        };
        assert_eq!(g.name(0), "tb");
        let g = GroupItem { expr: AstExpr::Ident("srcIP".into()), alias: None };
        assert_eq!(g.name(1), "srcIP");
    }
}
