//! Rewrite certificates: a checked trace of every rewrite the
//! optimizer applied.
//!
//! A certificate is *consumed*, not decorative: the only way to obtain
//! executable shared-plan components from an
//! [`crate::OptimizeOutcome`] is through an accessor that verifies the
//! certificate first, so a tampered or hand-edited trace can never
//! reach the execution engines. Each step records the rule applied, the
//! statements involved, the canonical node hashes before and after, and
//! the side conditions that were actually discharged (purity, totality,
//! implication, shard-mergeability) — the reviewer-facing half of the
//! equivalence argument in DESIGN.md.

use crate::norm::fnv1a;

/// One applied rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteStep {
    /// Rule name (e.g. `dedup-shared-subplan`, `hoist-shared-prefilter`).
    pub rule: String,
    /// 0-based indices of the statements the rule touched.
    pub statements: Vec<usize>,
    /// Canonical node hashes of the inputs, one per statement.
    pub before: Vec<u64>,
    /// Canonical node hash of the rewritten shared node.
    pub after: u64,
    /// The side conditions discharged when the rule fired.
    pub side_conditions: Vec<String>,
}

impl RewriteStep {
    /// A canonical one-line rendering, folded into the certificate
    /// checksum.
    fn digest_line(&self) -> String {
        let before: Vec<String> = self.before.iter().map(|h| format!("{h:016x}")).collect();
        format!(
            "{}|{:?}|{}|{:016x}|{}",
            self.rule,
            self.statements,
            before.join(","),
            self.after,
            self.side_conditions.join(";")
        )
    }
}

/// The checked rewrite trace for one optimized file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteCertificate {
    /// Applied rewrites, in application order.
    pub steps: Vec<RewriteStep>,
    /// FNV-1a over the canonical step renderings; recomputed by
    /// [`RewriteCertificate::verify`].
    pub checksum: u64,
}

impl RewriteCertificate {
    /// Seal a trace: compute and embed the checksum.
    pub fn seal(steps: Vec<RewriteStep>) -> Self {
        let checksum = Self::compute(&steps);
        RewriteCertificate { steps, checksum }
    }

    fn compute(steps: &[RewriteStep]) -> u64 {
        let mut text = String::new();
        for s in steps {
            text.push_str(&s.digest_line());
            text.push('\n');
        }
        fnv1a(&text)
    }

    /// Recompute the checksum and compare: any mutation of a sealed
    /// step — rule name, statement set, hashes, or a side condition —
    /// is detected.
    pub fn verify(&self) -> Result<(), String> {
        let expect = Self::compute(&self.steps);
        if expect == self.checksum {
            Ok(())
        } else {
            Err(format!(
                "rewrite certificate checksum mismatch: recorded {:016x}, recomputed {expect:016x}",
                self.checksum
            ))
        }
    }

    /// No rewrites were applied.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> RewriteStep {
        RewriteStep {
            rule: "dedup-shared-subplan".into(),
            statements: vec![0, 3],
            before: vec![0xabc, 0xabc],
            after: 0xabc,
            side_conditions: vec!["canonical forms identical".into(), "shard-mergeable".into()],
        }
    }

    #[test]
    fn sealed_certificates_verify() {
        assert!(RewriteCertificate::seal(vec![]).verify().is_ok());
        assert!(RewriteCertificate::seal(vec![step()]).verify().is_ok());
    }

    #[test]
    fn tampering_is_detected() {
        let mut c = RewriteCertificate::seal(vec![step()]);
        c.steps[0].side_conditions.pop();
        assert!(c.verify().is_err(), "dropped side condition");

        let mut c = RewriteCertificate::seal(vec![step()]);
        c.steps[0].after ^= 1;
        assert!(c.verify().is_err(), "flipped node hash");

        let mut c = RewriteCertificate::seal(vec![step()]);
        c.steps.clear();
        assert!(c.verify().is_err(), "erased trace");
    }
}
