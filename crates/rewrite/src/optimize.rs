//! The optimizer pass: cluster a file's statements by base stream, find
//! provably shareable work, emit lints (W301–W304) and a sealed
//! [`RewriteCertificate`], and describe the shared-execution plan.

use sso_analysis::{audit_file, split_statements, AuditOptions, Card};
use sso_core::operator::OperatorSpec;
use sso_core::Expr;
use sso_query::ast::Span;
use sso_query::{
    base_stream_schema, compile_packet_predicate, dedup_diagnostics, parse_query, plan, AstExpr,
    BinAstOp, Code, Diagnostic, ExprKind, PlannerConfig,
};

use crate::cert::{RewriteCertificate, RewriteStep};
use crate::equiv::shared_prefilter;
use crate::norm::{fnv1a, normalize_statement, NormalizedStatement};

/// Options for [`optimize_file`].
pub struct OptimizeOptions {
    /// Apply rewrites (default). With `apply = false` (`--explain`),
    /// the pass only *reports* what it would do: sharing opportunities
    /// surface as W301 lints and the certificate stays empty.
    pub apply: bool,
    /// Options for the post-rewrite re-audit (`sso-analysis`).
    pub audit: AuditOptions,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions { apply: true, audit: AuditOptions::default() }
    }
}

/// One group of statements whose canonical normalized plans are
/// identical.
#[derive(Debug, Clone)]
pub struct ShareGroup {
    /// 0-based statement indices, in file order.
    pub statements: Vec<usize>,
    /// The group's canonical node hash.
    pub hash: u64,
    /// The canonical rendering all members share.
    pub canonical: String,
    /// Whether the group's plan is shard-mergeable (the side condition
    /// for actually deduplicating a multi-member group).
    pub mergeable: bool,
    /// The mergeability cause chain when `mergeable` is false.
    pub blocked: Option<String>,
}

/// All statements over one base stream.
#[derive(Debug, Clone)]
pub struct ShareCluster {
    /// The base stream name.
    pub stream: String,
    /// 0-based statement indices, in file order.
    pub members: Vec<usize>,
    /// The provable shared prefilter (canonical clauses), empty when
    /// none exists.
    pub prefilter: Vec<AstExpr>,
    /// Share groups, in first-appearance order.
    pub groups: Vec<ShareGroup>,
}

/// One deduplicated operator in the shared-execution plan description.
#[derive(Debug, Clone)]
pub struct SharedGroupDesc {
    /// 0-based index of the statement whose text builds the operator.
    pub representative: usize,
    /// Consumer query names (`q<n>`, 1-based statement numbers).
    pub consumers: Vec<String>,
}

/// The shared-execution plan for one cluster, as pure data. Turn it
/// into executable components with [`OptimizeOutcome::build_shared`] —
/// which verifies the certificate first.
#[derive(Debug, Clone)]
pub struct SharedPlanDesc {
    /// The base stream the plan taps.
    pub stream: String,
    /// The hoisted shared prefilter (a canonical conjunction), if any.
    pub prefilter: Option<AstExpr>,
    /// Operator groups with their consumers.
    pub groups: Vec<SharedGroupDesc>,
}

/// Summary of the `sso-analysis` re-audit of the rewritten plan:
/// bounds certificates survive rewriting because consumer plans are
/// unchanged and the shared prefilter is stateless.
#[derive(Debug, Clone)]
pub struct ReauditSummary {
    /// No error diagnostics and within budget.
    pub ok: bool,
    /// Certified total state bound across statements.
    pub total_state_bytes: Card,
    /// Statements the audit covered.
    pub statements: usize,
}

/// Everything [`optimize_file`] produced.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// Statements in the file.
    pub statements: usize,
    /// 0-based indices of statements excluded from the sharing
    /// analysis (cascades over derived streams, or statements with
    /// analyzer errors).
    pub skipped: Vec<usize>,
    /// Per-stream clusters.
    pub clusters: Vec<ShareCluster>,
    /// The sealed rewrite trace (empty in `--explain` mode or when
    /// nothing was shareable).
    pub certificate: RewriteCertificate,
    /// Shared-execution plans, one per cluster where a rewrite applied.
    pub shared: Vec<SharedPlanDesc>,
    /// The post-rewrite re-audit.
    pub reaudit: ReauditSummary,
    /// Analyzer diagnostics plus W301–W304, spans rebased onto the
    /// file, deduplicated by `(code, span)`.
    pub diagnostics: Vec<Diagnostic>,
    stmt_texts: Vec<String>,
}

/// One cluster's executable shared plan: the compiled prefilter plus
/// one [`OperatorSpec`] per group. The gigascope adapter
/// (`sso_gigascope::shared`) instantiates operators from these specs.
pub struct ExecutableSharedPlan {
    /// The base stream the plan taps.
    pub stream: String,
    /// Compiled shared prefilter over the stream schema.
    pub prefilter: Option<Expr>,
    /// `(operator spec, consumer names)` per group.
    pub groups: Vec<(OperatorSpec, Vec<String>)>,
}

impl OptimizeOutcome {
    /// Build executable shared-plan components. **Verifies the
    /// certificate first** — a tampered trace yields an error, never a
    /// runnable plan — and refuses when no rewrite was applied.
    pub fn build_shared(&self) -> Result<Vec<ExecutableSharedPlan>, String> {
        self.certificate.verify()?;
        if self.certificate.is_empty() && !self.shared.is_empty() {
            return Err("shared plans present without a certificate step".to_string());
        }
        let config = PlannerConfig::standard();
        self.shared
            .iter()
            .map(|d| {
                let schema = base_stream_schema(&d.stream)
                    .ok_or_else(|| format!("unknown base stream `{}`", d.stream))?;
                let prefilter = d
                    .prefilter
                    .as_ref()
                    .map(|ast| compile_packet_predicate(ast, &schema).map_err(|e| e.to_string()))
                    .transpose()?;
                let groups = d
                    .groups
                    .iter()
                    .map(|g| {
                        let q = parse_query(&self.stmt_texts[g.representative])
                            .map_err(|e| e.to_string())?;
                        let spec = plan(&q, &schema, &config).map_err(|e| e.to_string())?;
                        Ok((spec, g.consumers.clone()))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(ExecutableSharedPlan { stream: d.stream.clone(), prefilter, groups })
            })
            .collect()
    }
}

fn rebase(mut d: Diagnostic, base: usize) -> Diagnostic {
    d.span = Span::new(d.span.start + base, d.span.end + base);
    d
}

/// The span a statement-level finding anchors to: the WHERE clause when
/// present, the FROM name otherwise — rebased onto the file.
fn anchor(n: &NormalizedStatement) -> Span {
    let s = n.query.where_clause.as_ref().map(|w| w.span).unwrap_or(n.query.from.span);
    Span::new(s.start + n.base, s.end + n.base)
}

fn conjunction(clauses: &[AstExpr]) -> Option<AstExpr> {
    let mut it = clauses.iter().cloned();
    let first = it.next()?;
    Some(it.fold(first, |acc, c| AstExpr {
        span: Span::DUMMY,
        kind: ExprKind::Binary { op: BinAstOp::And, lhs: Box::new(acc), rhs: Box::new(c) },
    }))
}

fn render_clauses(clauses: &[AstExpr]) -> String {
    clauses.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" AND ")
}

/// Statement numbers (1-based) as a human list: "statements 1 and 4".
fn stmt_list(indices: &[usize]) -> String {
    let nums: Vec<String> = indices.iter().map(|i| (i + 1).to_string()).collect();
    match nums.len() {
        1 => format!("statement {}", nums[0]),
        2 => format!("statements {} and {}", nums[0], nums[1]),
        _ => {
            let (last, rest) = nums.split_last().expect("non-empty");
            format!("statements {} and {last}", rest.join(", "))
        }
    }
}

/// Run the optimizer over a multi-statement file.
pub fn optimize_file(text: &str, opts: &OptimizeOptions) -> OptimizeOutcome {
    let stmts = split_statements(text);
    let config = PlannerConfig::standard();
    let fallback = sso_types::Packet::schema();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut normalized: Vec<NormalizedStatement> = Vec::new();
    let mut skipped: Vec<usize> = Vec::new();
    let mut stmt_texts: Vec<String> = Vec::new();

    for (idx, (base, stmt)) in stmts.iter().enumerate() {
        stmt_texts.push((*stmt).to_string());
        let parsed = parse_query(stmt);
        let Ok(q) = parsed else {
            diagnostics.extend(
                sso_query::check(stmt, &fallback, &config).into_iter().map(|d| rebase(d, *base)),
            );
            skipped.push(idx);
            continue;
        };
        let Some(schema) = base_stream_schema(&q.from.text) else {
            // A cascade over a derived stream: out of scope for the
            // sharing analysis (`sso check`/`sso audit` cover it).
            skipped.push(idx);
            continue;
        };
        let checked = sso_query::check(stmt, &schema, &config);
        let had_errors = sso_query::diag::has_errors(&checked);
        diagnostics.extend(checked.into_iter().map(|d| rebase(d, *base)));
        if had_errors {
            skipped.push(idx);
            continue;
        }
        normalized.push(normalize_statement(idx, *base, &q, &schema));
    }

    // Cluster by base stream, first-appearance order.
    let mut clusters: Vec<ShareCluster> = Vec::new();
    for n in &normalized {
        if !clusters.iter().any(|c| c.stream == n.stream) {
            clusters.push(ShareCluster {
                stream: n.stream.clone(),
                members: Vec::new(),
                prefilter: Vec::new(),
                groups: Vec::new(),
            });
        }
        let cluster = clusters.iter_mut().find(|c| c.stream == n.stream).expect("just inserted");
        cluster.members.push(n.index);
    }

    let mut steps: Vec<RewriteStep> = Vec::new();
    let mut shared: Vec<SharedPlanDesc> = Vec::new();

    for cluster in &mut clusters {
        let members: Vec<&NormalizedStatement> =
            normalized.iter().filter(|n| cluster.members.contains(&n.index)).collect();

        // Share groups: identical canonical forms.
        for m in &members {
            if let Some(g) = cluster.groups.iter_mut().find(|g| g.hash == m.hash) {
                g.statements.push(m.index);
            } else {
                cluster.groups.push(ShareGroup {
                    statements: vec![m.index],
                    hash: m.hash,
                    canonical: m.canonical.clone(),
                    mergeable: true,
                    blocked: None,
                });
            }
        }

        // Classify multi-member groups: deduplication requires the
        // shared operator to be shard-mergeable, or the rewritten plan
        // could not run on the partitioned runtime.
        for group in &mut cluster.groups {
            if group.statements.len() < 2 {
                continue;
            }
            let rep = group.statements[0];
            let schema = base_stream_schema(&cluster.stream).expect("cluster stream is base");
            let merge_check = parse_query(&stmt_texts[rep])
                .and_then(|q| plan(&q, &schema, &config))
                .map_err(|e| e.to_string())
                .and_then(|spec| sso_core::shard_plan(&spec).map(|_| ()).map_err(|nm| nm.reason));
            match merge_check {
                Ok(()) => {
                    if opts.apply {
                        steps.push(RewriteStep {
                            rule: "dedup-shared-subplan".to_string(),
                            statements: group.statements.clone(),
                            before: group.statements.iter().map(|_| group.hash).collect(),
                            after: group.hash,
                            side_conditions: vec![
                                "canonical normalized forms are identical".to_string(),
                                "shared operator is shard-mergeable".to_string(),
                                "each consumer receives a clone of every closed window".to_string(),
                            ],
                        });
                    } else {
                        for &i in &group.statements {
                            let n = members.iter().find(|n| n.index == i).expect("member");
                            diagnostics.push(
                                Diagnostic::new(
                                    Code::W301,
                                    anchor(n),
                                    format!(
                                        "{} have identical normalized plans but run as \
                                         separate operators",
                                        stmt_list(&group.statements)
                                    ),
                                )
                                .with_help(
                                    "run `sso optimize` without --explain to deduplicate them \
                                     into one shared operator"
                                        .to_string(),
                                ),
                            );
                        }
                    }
                }
                Err(reason) => {
                    group.mergeable = false;
                    group.blocked = Some(reason.clone());
                    for &i in &group.statements {
                        let n = members.iter().find(|n| n.index == i).expect("member");
                        diagnostics.push(
                            Diagnostic::new(
                                Code::W303,
                                anchor(n),
                                format!(
                                    "{} normalize to one plan, but the rewrite is blocked by a \
                                     non-mergeable sampler",
                                    stmt_list(&group.statements)
                                ),
                            )
                            .with_help(format!(
                                "sharing requires a shard-mergeable operator; blocked because: \
                                 {reason}"
                            )),
                        );
                    }
                }
            }
        }

        // Shared prefilter across the whole cluster.
        if members.len() >= 2 {
            cluster.prefilter = shared_prefilter(&members);
        }
        if !cluster.prefilter.is_empty() {
            let pf_text = render_clauses(&cluster.prefilter);
            if opts.apply {
                steps.push(RewriteStep {
                    rule: "hoist-shared-prefilter".to_string(),
                    statements: cluster.members.clone(),
                    before: members.iter().map(|m| m.hash).collect(),
                    after: fnv1a(&pf_text),
                    side_conditions: vec![
                        "every hoisted clause is pure (no stateful or aggregate calls)".to_string(),
                        "every hoisted clause is total (division only by nonzero literals)"
                            .to_string(),
                        "each member's hoistable WHERE prefix implies every hoisted clause"
                            .to_string(),
                        "consumers keep their full residual predicates".to_string(),
                    ],
                });
            } else {
                for m in &members {
                    diagnostics.push(
                        Diagnostic::new(
                            Code::W301,
                            anchor(m),
                            format!(
                                "{} all imply the prefilter `{pf_text}` but each evaluates it \
                                 independently",
                                stmt_list(&cluster.members)
                            ),
                        )
                        .with_help(
                            "run `sso optimize` without --explain to evaluate it once ahead of \
                             the fan-out"
                                .to_string(),
                        ),
                    );
                }
            }
        }

        // W302: equivalent modulo constants.
        for (ai, a) in members.iter().enumerate() {
            for b in members.iter().skip(ai + 1) {
                if a.param_hash == b.param_hash && a.hash != b.hash {
                    for (x, other) in [(a, b), (b, a)] {
                        diagnostics.push(
                            Diagnostic::new(
                                Code::W302,
                                anchor(x),
                                format!(
                                    "statement {} is equivalent to statement {} modulo \
                                     constants",
                                    x.index + 1,
                                    other.index + 1
                                ),
                            )
                            .with_help(
                                "parameterizing the constant would let one shared plan serve \
                                 both queries"
                                    .to_string(),
                            ),
                        );
                    }
                }
            }
        }

        // W304: window periods differing by an integer multiple.
        for (ai, a) in members.iter().enumerate() {
            for b in members.iter().skip(ai + 1) {
                let (Some(wa), Some(wb)) = (a.window, b.window) else { continue };
                if wa == wb || a.group_keys != b.group_keys {
                    continue;
                }
                let (fine, coarse, wf, wc) = if wa < wb { (a, b, wa, wb) } else { (b, a, wb, wa) };
                if wc % wf == 0 {
                    for x in [fine, coarse] {
                        let span =
                            Span::new(x.window_span.start + x.base, x.window_span.end + x.base);
                        diagnostics.push(
                            Diagnostic::new(
                                Code::W304,
                                span,
                                format!(
                                    "statements {} and {} window the same stream at periods \
                                     {wf} and {wc} — an integer multiple",
                                    fine.index + 1,
                                    coarse.index + 1
                                ),
                            )
                            .with_help(
                                "the coarser window is derivable from the finer one's partial \
                                 aggregates (shared partial aggregation, §7.2)"
                                    .to_string(),
                            ),
                        );
                    }
                }
            }
        }

        // Describe the shared-execution plan when a rewrite applied.
        let any_dedup = cluster.groups.iter().any(|g| g.statements.len() >= 2 && g.mergeable);
        if opts.apply && (any_dedup || !cluster.prefilter.is_empty()) {
            let mut groups = Vec::new();
            for g in &cluster.groups {
                if g.mergeable {
                    groups.push(SharedGroupDesc {
                        representative: g.statements[0],
                        consumers: g.statements.iter().map(|i| format!("q{}", i + 1)).collect(),
                    });
                } else {
                    // A blocked group keeps one operator per member.
                    for &i in &g.statements {
                        groups.push(SharedGroupDesc {
                            representative: i,
                            consumers: vec![format!("q{}", i + 1)],
                        });
                    }
                }
            }
            shared.push(SharedPlanDesc {
                stream: cluster.stream.clone(),
                prefilter: conjunction(&cluster.prefilter),
                groups,
            });
        }
    }

    dedup_diagnostics(&mut diagnostics);

    // Re-audit: the rewritten plan's bounds certificates must survive.
    // Consumer operator plans are unchanged and the hoisted prefilter
    // is stateless, so auditing the source file audits the rewrite.
    let audit = audit_file(text, &opts.audit);
    let reaudit = ReauditSummary {
        ok: !audit.has_errors() && !audit.budget_exceeded(),
        total_state_bytes: audit.report.total_state_bytes(),
        statements: audit.report.statements.len(),
    };

    OptimizeOutcome {
        statements: stmts.len(),
        skipped,
        clusters,
        certificate: RewriteCertificate::seal(steps),
        shared,
        reaudit,
        diagnostics,
        stmt_texts,
    }
}

/// The `sso check` W103 lint: identical normalized prefilters over the
/// same base stream in one file. Cheap — parse and normalize only, no
/// planning — and conservative: statements with an *empty* hoistable
/// prefix never match (a vacuous `TRUE` prefilter is not a shared
/// prefilter).
pub fn check_file_prefilters(text: &str) -> Vec<Diagnostic> {
    let stmts = split_statements(text);
    let mut normalized: Vec<NormalizedStatement> = Vec::new();
    for (idx, (base, stmt)) in stmts.iter().enumerate() {
        let Ok(q) = parse_query(stmt) else { continue };
        let Some(schema) = base_stream_schema(&q.from.text) else { continue };
        normalized.push(normalize_statement(idx, *base, &q, &schema));
    }
    let key = |n: &NormalizedStatement| -> Vec<String> {
        let mut texts: Vec<String> = n.hoistable.iter().map(|c| c.to_string()).collect();
        texts.sort();
        texts
    };
    let mut diags = Vec::new();
    for (ai, a) in normalized.iter().enumerate() {
        for b in normalized.iter().skip(ai + 1) {
            if a.stream != b.stream || a.hoistable.is_empty() {
                continue;
            }
            if key(a) == key(b) {
                for (x, other) in [(a, b), (b, a)] {
                    diags.push(
                        Diagnostic::new(
                            Code::W103,
                            anchor(x),
                            format!(
                                "statement {} applies the same normalized prefilter over {} as \
                                 statement {}",
                                x.index + 1,
                                x.stream,
                                other.index + 1
                            ),
                        )
                        .with_help(
                            "run `sso optimize` to evaluate the shared prefilter once ahead of \
                             the fan-out"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
    dedup_diagnostics(&mut diags);
    diags
}
