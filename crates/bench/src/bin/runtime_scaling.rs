//! **Runtime scaling** — throughput of the sharded runtime vs the
//! two-thread pipeline.
//!
//! The workload is the paper's dynamic subset-sum query (1000 samples
//! per period) over a steady ~100k pkt/s data-center feed. The baseline
//! is `run_plan_threaded` (one producer thread, one operator thread);
//! against it we run `run_plan_sharded` at 1, 2, 4, and 8 shards and
//! report wall-clock tuples/sec per configuration.
//!
//! Two correctness gates run alongside the timing:
//!
//! * **exact drift** — an exact per-window `sum(len)`/`count(*)` query
//!   is run single-instance and 4-way sharded over the same packets;
//!   any difference in any window is reported as drift (must be zero —
//!   hash-partitioned groups are disjoint, so Concat/Combine merges are
//!   exact).
//! * **estimate sanity** — the subset-sum volume estimate at every
//!   shard count must stay within a few percent of the true byte
//!   volume, window by window (the merged sample is a valid threshold
//!   sample, so its Horvitz-Thompson estimate stays unbiased).

use std::collections::HashMap;
use std::time::Instant;

use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::shard_plan;
use sso_core::{queries, OpError, OperatorSpec, SamplingOperator, WindowOutput};
use sso_gigascope::{
    run_plan_sharded, run_plan_sharded_with, run_plan_threaded, SelectionNode, TwoLevelPlan,
};
use sso_netgen::datacenter_feed;
use sso_runtime::RuntimeConfig;
use sso_types::Packet;

const SEED: u64 = 0x5ca1e;
const SECONDS: u64 = 20;
const WINDOW: u64 = 5;
const TARGET: usize = 1000;
const REPS: usize = 7;

#[derive(serde::Serialize)]
struct Config {
    feed: &'static str,
    seed: u64,
    seconds: u64,
    packets: usize,
    window_secs: u64,
    target_samples: usize,
    reps: usize,
}

#[derive(serde::Serialize)]
struct Run {
    mode: String,
    shards: usize,
    secs: f64,
    tuples_per_sec: f64,
    speedup_vs_threaded: f64,
    windows: usize,
    stalls: u64,
    dropped: u64,
    max_estimate_err_pct: f64,
}

#[derive(serde::Serialize)]
struct Report {
    config: Config,
    exact_drift_windows: usize,
    runs: Vec<Run>,
}

fn spec(with: SubsetSumOpConfig) -> Result<OperatorSpec, OpError> {
    queries::subset_sum_query(WINDOW, with, false)
}

fn ss_config() -> SubsetSumOpConfig {
    SubsetSumOpConfig { target: TARGET, initial_z: 1.0, ..Default::default() }
}

/// Worst per-window relative error of the subset-sum volume estimate.
fn max_estimate_err_pct(windows: &[WindowOutput], truth: &HashMap<u64, u64>) -> f64 {
    windows
        .iter()
        .map(|w| {
            let tb = w.window.get(0).as_u64().expect("tb");
            let actual = truth.get(&tb).copied().unwrap_or(0) as f64;
            let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().expect("adj")).sum();
            if actual == 0.0 {
                0.0
            } else {
                100.0 * (est - actual).abs() / actual
            }
        })
        .fold(0.0, f64::max)
}

/// Exact-query drift check: windows that differ between the single
/// instance and the 4-way sharded run (must be none).
fn exact_drift_windows(packets: &[Packet]) -> usize {
    let single = run_plan_threaded(
        TwoLevelPlan::new(
            Box::new(SelectionNode::pass_all()),
            SamplingOperator::new(queries::total_sum_query(WINDOW)).unwrap(),
        ),
        packets.iter().cloned(),
    )
    .expect("exact single run");
    let sharded = run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        |_| Ok(queries::total_sum_query(WINDOW)),
        &RuntimeConfig::new(4),
        packets.iter().cloned(),
    )
    .expect("exact sharded run");
    if single.windows.len() != sharded.windows.len() {
        return single.windows.len().max(sharded.windows.len());
    }
    single
        .windows
        .iter()
        .zip(&sharded.windows)
        .filter(|(a, b)| a.window != b.window || a.rows != b.rows)
        .count()
}

fn main() {
    let packets = datacenter_feed(SEED).take_seconds(SECONDS);
    let n = packets.len();
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.time() / WINDOW).or_default() += p.len as u64;
    }

    if !sso_bench::json_mode() {
        eprintln!("# {n} packets, {REPS} reps per configuration");
    }

    // Baseline: the two-thread pipeline (producer + one operator).
    let mut base_secs = f64::INFINITY;
    let mut base_windows = Vec::new();
    for _ in 0..REPS {
        let plan = TwoLevelPlan::new(
            Box::new(SelectionNode::pass_all()),
            SamplingOperator::new(spec(ss_config()).unwrap()).unwrap(),
        );
        let t0 = Instant::now();
        let report = run_plan_threaded(plan, packets.iter().cloned()).expect("threaded run");
        let secs = t0.elapsed().as_secs_f64();
        if secs < base_secs {
            base_secs = secs;
            base_windows = report.windows;
        }
    }
    let base_tps = n as f64 / base_secs;

    let mut runs = vec![Run {
        mode: "threaded".into(),
        shards: 1,
        secs: base_secs,
        tuples_per_sec: base_tps,
        speedup_vs_threaded: 1.0,
        windows: base_windows.len(),
        stalls: 0,
        dropped: 0,
        max_estimate_err_pct: max_estimate_err_pct(&base_windows, &truth),
    }];

    // The plan is classified from the full-budget query (so the merge
    // re-thresholds to the full 1000-sample target), while each shard
    // samples with a 1000/shards budget: the union of per-partition
    // threshold samples merged at the max shard threshold is the same
    // estimator, and total sampling state stays shard-count-invariant.
    let plan = shard_plan(&spec(ss_config()).unwrap()).expect("subset-sum is shard-mergeable");
    for shards in [1usize, 2, 4, 8] {
        let split = SubsetSumOpConfig {
            target: TARGET.div_ceil(shards),
            initial_z: 1.0,
            ..Default::default()
        };
        let mut best: Option<(f64, sso_gigascope::ShardedRunReport)> = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let report = run_plan_sharded_with(
                Box::new(SelectionNode::pass_all()),
                &plan,
                |_| spec(split.clone()),
                &RuntimeConfig::new(shards),
                packets.iter().cloned(),
            )
            .expect("sharded run");
            let secs = t0.elapsed().as_secs_f64();
            if best.as_ref().map(|(b, _)| secs < *b).unwrap_or(true) {
                best = Some((secs, report));
            }
        }
        let (secs, report) = best.expect("at least one rep");
        runs.push(Run {
            mode: "sharded".into(),
            shards,
            secs,
            tuples_per_sec: n as f64 / secs,
            speedup_vs_threaded: base_secs / secs,
            windows: report.windows.len(),
            stalls: report.shards.iter().map(|s| s.stalls()).sum(),
            dropped: report.dropped(),
            max_estimate_err_pct: max_estimate_err_pct(&report.windows, &truth),
        });
    }

    let report = Report {
        config: Config {
            feed: "datacenter",
            seed: SEED,
            seconds: SECONDS,
            packets: n,
            window_secs: WINDOW,
            target_samples: TARGET,
            reps: REPS,
        },
        exact_drift_windows: exact_drift_windows(&packets),
        runs,
    };

    if maybe_json(&report) {
        return;
    }
    header("Runtime scaling: dynamic subset-sum (1000 samples/period), data-center feed");
    println!(
        "{:>9} {:>7} {:>8} {:>12} {:>9} {:>8} {:>8} {:>10}",
        "mode", "shards", "secs", "tuples/s", "speedup", "stalls", "dropped", "max err%"
    );
    for r in &report.runs {
        println!(
            "{:>9} {:>7} {:>8.3} {:>12.0} {:>8.2}x {:>8} {:>8} {:>9.2}%",
            r.mode,
            r.shards,
            r.secs,
            r.tuples_per_sec,
            r.speedup_vs_threaded,
            r.stalls,
            r.dropped,
            r.max_estimate_err_pct,
        );
    }
    println!(
        "exact drift: {} window(s) differ between single and 4-shard runs",
        report.exact_drift_windows
    );
}
