//! Window-aligned merge-finalize: re-combine per-shard window outputs
//! into the single-instance result using the query's merge rule.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHasher;
use sso_core::{ColumnRule, Degradation, MergeRule, WindowOutput, WindowStats};
use sso_sampling::subset_sum::{merge_threshold_samples, ThresholdPart};
use sso_sampling::Reservoir;
use sso_types::{Tuple, Value};

/// Total order on tuples by pairwise value comparison (type-mismatched
/// pairs compare equal; they do not occur within one query's output).
fn tuple_cmp(a: &Tuple, b: &Tuple) -> Ordering {
    for (x, y) in a.values().iter().zip(b.values()) {
        match x.compare(y).unwrap_or(Ordering::Equal) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.arity().cmp(&b.arity())
}

fn fx_hash(t: &Tuple) -> u64 {
    let mut h = FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

fn add_values(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::U64(x), Value::U64(y)) => Value::U64(x + y),
        (Value::I64(x), Value::I64(y)) => Value::I64(x + y),
        _ => Value::F64(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0)),
    }
}

/// One shard's contribution to merge-finalize: its window outputs plus
/// the traffic it *lost* — (window key, tuple count) pairs recorded by
/// the supervisor while the shard's worker was quarantined after a
/// panic. The merge uses the uncovered counts to tag each window's
/// output with its [`Degradation`].
#[derive(Debug, Default)]
pub struct ShardPartial {
    /// The shard's per-window outputs, in stream order.
    pub windows: Vec<WindowOutput>,
    /// Tuples lost to quarantine, keyed by window.
    pub uncovered: Vec<(Tuple, u64)>,
}

impl ShardPartial {
    /// A partial that covers everything it saw (no faults).
    pub fn clean(windows: Vec<WindowOutput>) -> Self {
        ShardPartial { windows, uncovered: Vec::new() }
    }
}

/// Merge one window's per-shard outputs into one row set + stats.
fn merge_one(window: Tuple, parts: Vec<WindowOutput>, rule: &MergeRule, seed: u64) -> WindowOutput {
    let mut stats = WindowStats::default();
    for p in &parts {
        stats.tuples += p.stats.tuples;
        stats.admitted += p.stats.admitted;
        stats.cleaning_phases += p.stats.cleaning_phases;
        stats.groups_created += p.stats.groups_created;
    }

    let mut rows: Vec<Tuple> = match rule {
        MergeRule::Concat => parts.into_iter().flat_map(|p| p.rows).collect(),
        MergeRule::Combine(rules) => {
            let key_cols: Vec<usize> = rules
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, ColumnRule::Key))
                .map(|(i, _)| i)
                .collect();
            let mut table: HashMap<Tuple, Tuple> = HashMap::new();
            for row in parts.into_iter().flat_map(|p| p.rows) {
                let key = row.project(&key_cols);
                match table.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(row);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let acc = e.get_mut();
                        for (i, r) in rules.iter().enumerate() {
                            let merged = match r {
                                ColumnRule::Key => continue,
                                ColumnRule::Sum => add_values(acc.get(i), row.get(i)),
                                ColumnRule::Min => match acc.get(i).compare(row.get(i)) {
                                    Ok(Ordering::Greater) => row.get(i).clone(),
                                    _ => continue,
                                },
                                ColumnRule::Max => match acc.get(i).compare(row.get(i)) {
                                    Ok(Ordering::Less) => row.get(i).clone(),
                                    _ => continue,
                                },
                            };
                            acc.set(i, merged);
                        }
                    }
                }
            }
            table.into_values().collect()
        }
        MergeRule::SubsetSum { weight_col, target } => {
            let shard_parts: Vec<ThresholdPart<Tuple>> = parts
                .into_iter()
                .filter(|p| !p.rows.is_empty())
                .map(|p| {
                    // The shard's final threshold: small rows are emitted
                    // at exactly z via UMAX(sum(w), ssthreshold()), so
                    // the minimum adjusted weight is z whenever any small
                    // row survived; when every row is large, any z at or
                    // below the minimum re-admits all of them unchanged.
                    let samples: Vec<(Tuple, f64)> = p
                        .rows
                        .into_iter()
                        .map(|r| {
                            let eff = r.get(*weight_col).as_f64().unwrap_or(0.0);
                            (r, eff)
                        })
                        .collect();
                    let z = samples.iter().map(|(_, e)| *e).fold(f64::INFINITY, f64::min);
                    ThresholdPart { samples, z: if z.is_finite() { z } else { 0.0 } }
                })
                .collect();
            let merged = merge_threshold_samples(shard_parts, *target);
            stats.cleaning_phases += u64::from(merged.passes);
            merged
                .samples
                .into_iter()
                .map(|(mut row, eff)| {
                    row.set(*weight_col, Value::F64(eff));
                    row
                })
                .collect()
        }
        MergeRule::Reservoir { n } => {
            let mut rng = StdRng::seed_from_u64(seed ^ fx_hash(&window));
            let mut merged: Option<Reservoir<Tuple>> = None;
            for p in parts {
                // stats.tuples is the shard's offer count for the window
                // (rsample sits in WHERE and sees every tuple); rows can
                // be fewer than the reservoir when sampled tuples share a
                // group key.
                let seen = p.stats.tuples.max(p.rows.len() as u64);
                let shard = Reservoir::from_parts(*n, seen, p.rows);
                merged = Some(match merged {
                    None => shard,
                    Some(m) => m.merge(&shard, &mut rng),
                });
            }
            merged.map(Reservoir::into_items).unwrap_or_default()
        }
        MergeRule::KmvTruncate { key_cols, hash_col, k } => {
            let mut signatures: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
            for row in parts.into_iter().flat_map(|p| p.rows) {
                signatures.entry(row.project(key_cols)).or_default().push(row);
            }
            let mut rows = Vec::new();
            for (_, mut sig) in signatures {
                sig.sort_by(|a, b| {
                    a.get(*hash_col).compare(b.get(*hash_col)).unwrap_or(Ordering::Equal)
                });
                sig.dedup_by(|a, b| a.get(*hash_col) == b.get(*hash_col));
                sig.truncate(*k);
                rows.extend(sig);
            }
            rows
        }
    };

    rows.sort_by(tuple_cmp);
    stats.output_rows = rows.len() as u64;
    WindowOutput { window, rows, stats, degradation: Degradation::default() }
}

/// Combine per-shard window output streams into one ordered stream of
/// merged windows. Windows are aligned by their window-attribute tuple;
/// a shard that saw no tuples for a window simply contributes nothing.
/// `seed` fixes the randomized merges (reservoir) per window.
pub fn merge_windows(
    per_shard: Vec<Vec<WindowOutput>>,
    rule: &MergeRule,
    seed: u64,
) -> Vec<WindowOutput> {
    merge_shard_partials(per_shard.into_iter().map(ShardPartial::clean).collect(), rule, seed, 0)
}

/// [`merge_windows`] over full [`ShardPartial`]s: merges the surviving
/// shards' outputs per the rule, then tags every window with its
/// coverage. Per-window uncovered counts come from quarantine records;
/// `straggler_tuples` is traffic routed to shards whose partials never
/// arrived (window-deadline cutoff) — unattributable to any particular
/// window, it scales every window's coverage by the run-level surviving
/// fraction instead.
///
/// A window key that appears *only* in uncovered records (its only
/// shard's worker was poisoned for the whole window) still yields an
/// output: an empty, fully-degraded row set — losing the window's rows
/// must not also lose the fact that the window existed.
pub fn merge_shard_partials(
    parts: Vec<ShardPartial>,
    rule: &MergeRule,
    seed: u64,
    straggler_tuples: u64,
) -> Vec<WindowOutput> {
    let mut by_window: HashMap<Tuple, Vec<WindowOutput>> = HashMap::new();
    let mut uncovered: HashMap<Tuple, u64> = HashMap::new();
    let mut covered_total = 0u64;
    for p in parts {
        for w in p.windows {
            covered_total += w.stats.tuples;
            by_window.entry(w.window.clone()).or_default().push(w);
        }
        for (key, n) in p.uncovered {
            *uncovered.entry(key).or_default() += n;
        }
    }
    let straggler_frac = if straggler_tuples == 0 {
        1.0
    } else {
        covered_total as f64 / (covered_total + straggler_tuples) as f64
    };
    let mut keys: Vec<Tuple> = by_window.keys().cloned().collect();
    for key in uncovered.keys() {
        if !by_window.contains_key(key) {
            keys.push(key.clone());
        }
    }
    keys.sort_by(tuple_cmp);
    keys.into_iter()
        .map(|key| {
            let lost = uncovered.get(&key).copied().unwrap_or(0);
            let mut out = match by_window.remove(&key) {
                Some(parts) => merge_one(key, parts, rule, seed),
                None => WindowOutput {
                    window: key,
                    rows: Vec::new(),
                    stats: WindowStats::default(),
                    degradation: Degradation::default(),
                },
            };
            let mut deg = Degradation::from_counts(out.stats.tuples, lost);
            if straggler_tuples > 0 {
                deg.coverage *= straggler_frac;
                deg.degraded = true;
            }
            out.degradation = deg;
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(window: u64, rows: Vec<Vec<Value>>, tuples: u64) -> WindowOutput {
        WindowOutput {
            window: Tuple::new(vec![Value::U64(window)]),
            rows: rows.into_iter().map(Tuple::new).collect(),
            stats: WindowStats { tuples, output_rows: 0, ..Default::default() },
            degradation: Degradation::default(),
        }
    }

    #[test]
    fn partials_tag_coverage_per_window() {
        let parts = vec![
            ShardPartial {
                windows: vec![w(1, vec![vec![Value::U64(1), Value::U64(4)]], 6)],
                uncovered: vec![],
            },
            ShardPartial {
                windows: vec![w(2, vec![vec![Value::U64(2), Value::U64(5)]], 8)],
                // Window 1 lost 2 tuples to a quarantine; window 3 was
                // lost entirely.
                uncovered: vec![
                    (Tuple::new(vec![Value::U64(1)]), 2),
                    (Tuple::new(vec![Value::U64(3)]), 5),
                ],
            },
        ];
        let merged = merge_shard_partials(parts, &MergeRule::Concat, 0, 0);
        assert_eq!(merged.len(), 3);
        assert!((merged[0].degradation.coverage - 6.0 / 8.0).abs() < 1e-12);
        assert!(merged[0].degradation.degraded);
        assert_eq!(merged[1].degradation, Degradation::default());
        assert_eq!(merged[2].degradation.coverage, 0.0);
        assert!(merged[2].rows.is_empty(), "fully lost window still surfaces, empty");
    }

    #[test]
    fn straggler_tuples_scale_every_window() {
        let parts = vec![ShardPartial::clean(vec![w(1, vec![], 30), w(2, vec![], 30)])];
        let merged = merge_shard_partials(parts, &MergeRule::Concat, 0, 60);
        for m in &merged {
            assert!(m.degradation.degraded);
            assert!((m.degradation.coverage - 0.5).abs() < 1e-12, "{:?}", m.degradation);
        }
    }

    #[test]
    fn concat_unions_and_sorts() {
        let merged = merge_windows(
            vec![
                vec![w(1, vec![vec![Value::U64(1), Value::U64(9)]], 5)],
                vec![w(1, vec![vec![Value::U64(1), Value::U64(3)]], 7)],
            ],
            &MergeRule::Concat,
            0,
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].rows.len(), 2);
        assert_eq!(merged[0].rows[0].get(1), &Value::U64(3));
        assert_eq!(merged[0].stats.tuples, 12);
        assert_eq!(merged[0].stats.output_rows, 2);
    }

    #[test]
    fn combine_sums_matching_keys() {
        let rule = MergeRule::Combine(vec![ColumnRule::Key, ColumnRule::Sum, ColumnRule::Max]);
        let merged = merge_windows(
            vec![
                vec![w(1, vec![vec![Value::U64(60), Value::U64(10), Value::U64(4)]], 1)],
                vec![w(1, vec![vec![Value::U64(60), Value::U64(32), Value::U64(9)]], 1)],
            ],
            &rule,
            0,
        );
        assert_eq!(merged[0].rows.len(), 1);
        assert_eq!(merged[0].rows[0].get(1), &Value::U64(42));
        assert_eq!(merged[0].rows[0].get(2), &Value::U64(9));
    }

    #[test]
    fn windows_align_across_shards_and_sort() {
        let merged = merge_windows(
            vec![vec![w(2, vec![], 1), w(3, vec![], 1)], vec![w(1, vec![], 1), w(2, vec![], 1)]],
            &MergeRule::Concat,
            0,
        );
        let keys: Vec<u64> = merged.iter().map(|m| m.window.get(0).as_u64().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn kmv_truncate_keeps_k_smallest_per_signature() {
        let rule = MergeRule::KmvTruncate { key_cols: vec![0], hash_col: 1, k: 2 };
        let rows_a = vec![vec![Value::U64(7), Value::U64(50)], vec![Value::U64(7), Value::U64(10)]];
        let rows_b = vec![vec![Value::U64(7), Value::U64(20)], vec![Value::U64(8), Value::U64(99)]];
        let merged = merge_windows(vec![vec![w(1, rows_a, 1)], vec![w(1, rows_b, 1)]], &rule, 0);
        let mut got: Vec<(u64, u64)> = merged[0]
            .rows
            .iter()
            .map(|r| (r.get(0).as_u64().unwrap(), r.get(1).as_u64().unwrap()))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(7, 10), (7, 20), (8, 99)]);
    }

    #[test]
    fn reservoir_merge_bounds_sample_and_is_seeded() {
        let rows: Vec<Vec<Value>> = (0..10u64).map(|i| vec![Value::U64(i)]).collect();
        let shards = vec![vec![w(1, rows.clone(), 100)], vec![w(1, rows.clone(), 300)]];
        let rule = MergeRule::Reservoir { n: 10 };
        let a = merge_windows(shards.clone(), &rule, 99);
        let b = merge_windows(shards, &rule, 99);
        assert_eq!(a[0].rows.len(), 10);
        assert_eq!(a[0].rows, b[0].rows, "same seed must reproduce the merge");
    }

    #[test]
    fn subset_sum_merge_rethresholds_to_target() {
        let rows_of = |weights: &[u64]| -> Vec<Vec<Value>> {
            weights
                .iter()
                .enumerate()
                .map(|(i, &wt)| vec![Value::U64(i as u64), Value::F64(wt as f64)])
                .collect()
        };
        let rule = MergeRule::SubsetSum { weight_col: 1, target: 3 };
        let merged = merge_windows(
            vec![
                vec![w(1, rows_of(&[100, 100, 5000]), 10)],
                vec![w(1, rows_of(&[200, 200, 7000]), 10)],
            ],
            &rule,
            0,
        );
        assert!(merged[0].rows.len() <= 3);
        // The two big rows always survive a threshold far below them.
        let big: Vec<f64> = merged[0]
            .rows
            .iter()
            .map(|r| r.get(1).as_f64().unwrap())
            .filter(|&e| e >= 5000.0)
            .collect();
        assert_eq!(big.len(), 2, "large items must survive: {:?}", merged[0].rows);
    }
}
