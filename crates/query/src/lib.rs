//! # sso-query
//!
//! The textual front end for the sampling operator: a lexer, a
//! recursive-descent parser for the extended aggregation syntax of §5,
//!
//! ```text
//! SELECT <select expression list>
//! FROM <stream>
//! WHERE <predicate>
//! GROUP BY <group-by variable definition list>
//! [SUPERGROUP <group-by variable list>]
//! [HAVING <predicate>]
//! CLEANING WHEN <predicate>
//! CLEANING BY <predicate>
//! ```
//!
//! and a planner that resolves names against a stream [`Schema`] and a
//! set of registered SFUN libraries, producing an executable
//! [`sso_core::OperatorSpec`].
//!
//! ```
//! use sso_query::{compile, PlannerConfig};
//! use sso_types::Packet;
//!
//! let mut op = compile(
//!     "SELECT tb, srcIP, sum(len) FROM PKT GROUP BY time/60 as tb, srcIP",
//!     &Packet::schema(),
//!     &PlannerConfig::standard(),
//! ).unwrap();
//! let out = op.run(std::iter::empty()).unwrap();
//! assert!(out.is_empty());
//! ```

pub mod analyze;
pub mod ast;
pub mod diag;
pub mod error;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use analyze::analyze;
pub use ast::{AstExpr, BinAstOp, ExprKind, Query, SelectItem, Span};
pub use diag::{dedup_diagnostics, Code, Diagnostic, Severity};
pub use error::QueryError;
pub use explain::explain;
pub use lexer::{Lexer, Token};
pub use parser::parse_query;
pub use plan::{compile_packet_predicate, plan, PlannerConfig};

use sso_core::SamplingOperator;
use sso_types::Schema;

/// The schema of a base stream name, if `name` is one.
///
/// `PKT`/`PKTS`/`TCP`/`UDP` are the conventional Gigascope packet
/// streams (all the [`sso_types::Packet`] schema here); `METRICS` is
/// the telemetry meta-stream published by `sso-obs`, so a sampling
/// query can run over the operator's own telemetry. A FROM name that is
/// none of these reads another query's output (the high level of a
/// cascade) and has no intrinsic schema.
pub fn base_stream_schema(name: &str) -> Option<Schema> {
    match name {
        "PKT" | "PKTS" | "TCP" | "UDP" => Some(sso_types::Packet::schema()),
        sso_obs::METRICS_STREAM => Some(sso_obs::metrics_schema()),
        _ => None,
    }
}

/// Parse, plan, and instantiate a query in one step.
pub fn compile(
    text: &str,
    schema: &Schema,
    config: &PlannerConfig,
) -> Result<SamplingOperator, QueryError> {
    let q = parse_query(text)?;
    let spec = plan(&q, schema, config)?;
    SamplingOperator::new(spec).map_err(QueryError::Plan)
}

/// Check whether a query can run on the sharded runtime: parse and plan
/// it, then classify the spec with [`sso_core::shard_plan`]. A query
/// that fails to parse or plan returns [`check`]'s diagnostics; a valid
/// but non-shard-mergeable query returns a single `W102` warning whose
/// help text explains which merge rule is missing.
pub fn check_shard_mergeable(
    text: &str,
    schema: &Schema,
    config: &PlannerConfig,
) -> Vec<Diagnostic> {
    let spec = match parse_query(text).and_then(|q| plan(&q, schema, config)) {
        Ok(spec) => spec,
        Err(_) => return check(text, schema, config),
    };
    match sso_core::shard_plan(&spec) {
        Ok(_) => Vec::new(),
        Err(not_mergeable) => vec![Diagnostic::new(
            Code::W102,
            Span::DUMMY,
            "query is not shard-mergeable; it must run on a single operator instance",
        )
        .with_help(not_mergeable.reason)],
    }
}

/// Statically check a query without planning it: parse, then run the
/// semantic analyzer, returning every diagnostic found. Lexical and
/// syntax errors come back as single `E100`/`E101` diagnostics so
/// callers can render any failure the same way.
pub fn check(text: &str, schema: &Schema, config: &PlannerConfig) -> Vec<Diagnostic> {
    match parse_query(text) {
        Ok(q) => analyze(&q, schema, config),
        Err(QueryError::Lex { position, message }) => vec![Diagnostic::new(
            Code::E100,
            Span::new(position, position + 1),
            format!("lexical error: {message}"),
        )],
        Err(QueryError::Parse { position, message }) => vec![Diagnostic::new(
            Code::E101,
            Span::new(position, position + 1),
            format!("syntax error: {message}"),
        )],
        // parse_query only produces Lex/Parse errors today; if a future
        // front-end change routes others here, surface their own
        // diagnostics when they carry them, and otherwise point at the
        // statement the error is about — never at offset 0.
        Err(QueryError::Analysis(diags)) => diags,
        Err(other) => {
            let span = other.primary_span(text);
            vec![Diagnostic::new(Code::E101, span, other.to_string())]
        }
    }
}
