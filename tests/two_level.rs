//! The two-level architecture (§3, §7.2): prefiltering at the low-level
//! query must preserve estimates while slashing the tuple flow into the
//! high-level operator.

use stream_sampler::operator::libs::subset_sum::SubsetSumOpConfig;
use stream_sampler::prelude::*;

fn subset_sum_operator(target: usize, window_secs: u64, initial_z: f64) -> SamplingOperator {
    let cfg = SubsetSumOpConfig { target, initial_z, ..Default::default() };
    SamplingOperator::new(queries::subset_sum_query(window_secs, cfg, false).unwrap()).unwrap()
}

fn window_estimates(report: &stream_sampler::gigascope::RunReport) -> Vec<f64> {
    report.windows.iter().map(|w| w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum()).collect()
}

#[test]
fn prefilter_plan_reduces_flow_but_preserves_estimates() {
    let seconds = 10;
    let window_secs = 5;
    let packets = datacenter_feed(201).take_seconds(seconds);
    let mut truth = vec![0u64; (seconds / window_secs) as usize];
    for p in &packets {
        truth[(p.time() / window_secs) as usize] += p.len as u64;
    }
    // Steady-state dynamic threshold for N = 1000 samples over this
    // feed: window volume / N.
    let z_dyn = truth[0] as f64 / 1000.0;

    // Plan A: pass-all selection feeding dynamic subset-sum.
    let plan_a = TwoLevelPlan::new(
        Box::new(SelectionNode::pass_all()),
        subset_sum_operator(1000, window_secs, 1.0),
    );
    let report_a = run_plan(plan_a, packets.clone()).unwrap();

    // Plan B: the §7.2 trick — basic subset-sum prefilter at z/10.
    let plan_b = TwoLevelPlan::new(
        Box::new(PrefilterNode::new(z_dyn / 10.0)),
        subset_sum_operator(1000, window_secs, z_dyn / 10.0),
    );
    let report_b = run_plan(plan_b, packets).unwrap();

    // The prefilter slashes the high-level input stream.
    assert!(
        report_b.high.tuples_in * 10 < report_a.high.tuples_in,
        "prefilter must cut the tuple flow: {} vs {}",
        report_b.high.tuples_in,
        report_a.high.tuples_in
    );

    // Both plans still estimate the window volumes.
    for (i, (ea, eb)) in
        window_estimates(&report_a).iter().zip(window_estimates(&report_b).iter()).enumerate()
    {
        let actual = truth[i] as f64;
        let rel_a = (ea - actual).abs() / actual;
        let rel_b = (eb - actual).abs() / actual;
        assert!(rel_a < 0.2, "plan A window {i}: rel {rel_a:.3}");
        assert!(rel_b < 0.25, "plan B (prefiltered) window {i}: rel {rel_b:.3}");
    }
}

#[test]
fn prefilter_output_is_itself_an_unbiased_weighted_sample() {
    // Without any high-level operator: the prefilter's forwarded tuples,
    // re-weighted by max(len, z), estimate the total volume (basic
    // subset-sum correctness through the node interface).
    let packets = datacenter_feed(202).take_seconds(2);
    let truth: u64 = packets.iter().map(|p| p.len as u64).sum();
    let z = truth as f64 / 2000.0;
    let mut node = PrefilterNode::new(z);
    let schema = Packet::schema();
    let len_idx = schema.index_of("len").unwrap();
    let mut estimate = 0.0;
    use stream_sampler::gigascope::LowLevelQuery;
    for p in &packets {
        if let Some(t) = node.process(p) {
            estimate += t.get(len_idx).as_f64().unwrap().max(z);
        }
    }
    let rel = (estimate - truth as f64).abs() / truth as f64;
    assert!(rel < 0.1, "prefilter estimate {estimate:.0} vs {truth} (rel {rel:.3})");
}

#[test]
fn ring_buffer_drops_are_surfaced_not_hidden() {
    // A tiny ring with a slow consumer cannot drop silently: the report
    // carries the count. (In single-threaded mode the engine drains
    // eagerly, so this exercises the accounting path with zero drops.)
    let packets = research_feed(203).take_seconds(1);
    let n = packets.len() as u64;
    let mut plan = TwoLevelPlan::new(
        Box::new(SelectionNode::pass_all()),
        SamplingOperator::new(queries::total_sum_query(1)).unwrap(),
    );
    plan.ring_capacity = 8;
    let report = run_plan(plan, packets).unwrap();
    assert_eq!(report.ring_dropped, 0);
    assert_eq!(report.low.tuples_in, n, "eager draining loses nothing");
}

#[test]
fn low_level_selection_can_implement_protocol_filters() {
    // A classic Gigascope low-level query: forward only TCP packets.
    let packets = research_feed(204).take_seconds(3);
    let tcp_truth: u64 = packets
        .iter()
        .filter(|p| p.proto == stream_sampler::types::Protocol::Tcp)
        .map(|p| p.len as u64)
        .sum();
    let plan = TwoLevelPlan::new(
        Box::new(SelectionNode::with_predicate(|p| {
            p.proto == stream_sampler::types::Protocol::Tcp
        })),
        SamplingOperator::new(queries::total_sum_query(100)).unwrap(),
    );
    let report = run_plan(plan, packets).unwrap();
    let total: u64 =
        report.windows.iter().flat_map(|w| &w.rows).map(|r| r.get(1).as_u64().unwrap()).sum();
    assert_eq!(total, tcp_truth);
}
