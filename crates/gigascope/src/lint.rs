//! Cascade push-down lint (W101).
//!
//! Gigascope splits queries into a low-level partial aggregation and a
//! high-level re-aggregation (§3, §7.2). The split is only correct when
//! the high query *re-aggregates* the partials: `sum` over a partial
//! `sum` or partial `count` is exact, but `count(*)` over partials
//! counts partial tuples (not packets), `avg` over partials is skewed
//! by uneven partial sizes, and `first`/`last` see partial-flush order
//! rather than packet order.
//!
//! [`check_pushdown`] takes the low and high queries of a cascade pair
//! and reports every aggregate in the high query that is not
//! partial-aggregation-safe over the low query's outputs.
//! [`check_reaggregation`] is the same check against the fixed
//! [`crate::PartialAggNode`] stream `PKTAGG(time, srcIP, destIP, len,
//! cnt)`.

use sso_query::ast::{AstExpr, ExprKind};
use sso_query::diag::{Code, Diagnostic};
use sso_query::Query;

/// How a low-level output column was produced, which determines what
/// the high level may do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartialKind {
    /// A group key (or plain expression): safe everywhere.
    Key,
    /// A partial `sum(...)`: re-aggregate with `sum`.
    Sum,
    /// A partial `count(*)`: re-aggregate with `sum`.
    Count,
    /// A partial `min(...)`: only `min` re-aggregates it.
    Min,
    /// A partial `max(...)`: only `max` re-aggregates it.
    Max,
    /// `avg` / `first` / `last` / superaggregates: no exact
    /// re-aggregation exists.
    Fragile,
}

/// The classified output columns of the low-level query.
struct LowOutputs {
    columns: Vec<(String, PartialKind)>,
}

impl LowOutputs {
    fn kind_of(&self, name: &str) -> Option<PartialKind> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, k)| *k)
    }

    /// The first partial-count column, if the low level kept one.
    fn count_column(&self) -> Option<&str> {
        self.columns.iter().find(|(_, k)| *k == PartialKind::Count).map(|(n, _)| n.as_str())
    }
}

/// Classify a low query's SELECT list. Returns `None` when the low
/// query performs no aggregation (a pure selection forwards raw tuples,
/// so every high-level aggregate is safe).
fn classify_low(low: &Query) -> Option<LowOutputs> {
    let mut columns = Vec::new();
    let mut any_agg = false;
    for (i, item) in low.select.iter().enumerate() {
        let name = item.output_name(i);
        let kind = match &item.expr.kind {
            ExprKind::Call { name: f, superagg: false, .. } => {
                match f.to_ascii_lowercase().as_str() {
                    "sum" => PartialKind::Sum,
                    "count" => PartialKind::Count,
                    "min" => PartialKind::Min,
                    "max" => PartialKind::Max,
                    "avg" | "first" | "last" => PartialKind::Fragile,
                    _ => PartialKind::Key,
                }
            }
            ExprKind::Call { superagg: true, .. } => PartialKind::Fragile,
            _ => PartialKind::Key,
        };
        if kind != PartialKind::Key {
            any_agg = true;
        }
        columns.push((name, kind));
    }
    if any_agg {
        Some(LowOutputs { columns })
    } else {
        None
    }
}

/// Lint a low/high cascade pair: report every aggregate in the high
/// query whose push-down over the low query's partial outputs is not
/// partial-aggregation-safe. Spans point into the *high* query's text.
pub fn check_pushdown(low: &Query, high: &Query) -> Vec<Diagnostic> {
    match classify_low(low) {
        Some(outputs) => check_high(high, &outputs),
        None => Vec::new(),
    }
}

/// Lint a high query that re-aggregates the [`crate::PartialAggNode`]
/// stream `PKTAGG(time, srcIP, destIP, len, cnt)`, where `len` is a
/// partial byte sum and `cnt` a partial packet count.
pub fn check_reaggregation(high: &Query) -> Vec<Diagnostic> {
    let outputs = LowOutputs {
        columns: vec![
            ("time".into(), PartialKind::Key),
            ("srcIP".into(), PartialKind::Key),
            ("destIP".into(), PartialKind::Key),
            ("len".into(), PartialKind::Sum),
            ("cnt".into(), PartialKind::Count),
        ],
    };
    check_high(high, &outputs)
}

fn check_high(high: &Query, low: &LowOutputs) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut exprs: Vec<&AstExpr> = high.select.iter().map(|s| &s.expr).collect();
    exprs.extend(high.where_clause.iter());
    exprs.extend(high.having.iter());
    exprs.extend(high.cleaning_when.iter());
    exprs.extend(high.cleaning_by.iter());
    for e in exprs {
        walk(e, &mut |node| check_call(node, low, &mut diags));
    }
    diags
}

fn check_call(node: &AstExpr, low: &LowOutputs, diags: &mut Vec<Diagnostic>) {
    let ExprKind::Call { name, superagg, args } = &node.kind else { return };
    if *superagg {
        if name.eq_ignore_ascii_case("count_distinct") {
            diags.push(
                Diagnostic::new(
                    Code::W101,
                    node.span,
                    "count_distinct$ over a partial-aggregate stream counts distinct \
                     partial tuples, not distinct raw tuples",
                )
                .with_help(
                    "distinct counting does not survive partial aggregation; run it \
                     at the low level or over the raw stream",
                ),
            );
        }
        return;
    }
    let lower = name.to_ascii_lowercase();
    // The argument's partial kind, when it is a bare low-output column.
    let arg_kind = match args.first().map(|a| &a.kind) {
        Some(ExprKind::Ident(col)) => low.kind_of(col),
        _ => None,
    };
    let arg_name = match args.first().map(|a| &a.kind) {
        Some(ExprKind::Ident(col)) => col.as_str(),
        _ => "",
    };
    match lower.as_str() {
        "count" => {
            let help = match low.count_column() {
                Some(cnt) => format!("re-aggregate the low level's partial count: `sum({cnt})`"),
                None => "add a `count(*)` column to the low-level query and sum it \
                         here"
                    .to_string(),
            };
            diags.push(
                Diagnostic::new(
                    Code::W101,
                    node.span,
                    "count(*) over a partial-aggregate stream counts partial tuples, \
                     not raw tuples",
                )
                .with_help(help),
            );
        }
        "avg" => diags.push(
            Diagnostic::new(
                Code::W101,
                node.span,
                "avg over a partial-aggregate stream is skewed by uneven partial \
                 sizes",
            )
            .with_help(match low.count_column() {
                Some(cnt) => format!(
                    "compute the exact mean from re-aggregated partials: \
                     `sum({arg_name}) * 1.0 / sum({cnt})`",
                ),
                None => "carry a partial count at the low level and divide the \
                         re-aggregated sum by its sum"
                    .to_string(),
            }),
        ),
        "first" | "last" => {
            if matches!(
                arg_kind,
                Some(
                    PartialKind::Sum
                        | PartialKind::Count
                        | PartialKind::Min
                        | PartialKind::Max
                        | PartialKind::Fragile
                )
            ) {
                diags.push(
                    Diagnostic::new(
                        Code::W101,
                        node.span,
                        format!(
                            "{lower}(`{arg_name}`) over a partial-aggregate stream \
                             observes partial-flush order, not raw arrival order"
                        ),
                    )
                    .with_help("first/last do not survive partial aggregation"),
                );
            }
        }
        "min" | "max" => {
            let safe = matches!(
                (lower.as_str(), arg_kind),
                ("min", Some(PartialKind::Min))
                    | ("max", Some(PartialKind::Max))
                    | (_, Some(PartialKind::Key))
                    | (_, None)
            );
            if !safe {
                diags.push(
                    Diagnostic::new(
                        Code::W101,
                        node.span,
                        format!(
                            "{lower}(`{arg_name}`) over a partial aggregate is the \
                             {lower} of partial values, not of raw tuples"
                        ),
                    )
                    .with_help(format!(
                        "only `{lower}` over a low-level `{lower}` column \
                         re-aggregates exactly"
                    )),
                );
            }
        }
        "sum" => {
            if matches!(arg_kind, Some(PartialKind::Min | PartialKind::Max | PartialKind::Fragile))
            {
                diags.push(
                    Diagnostic::new(
                        Code::W101,
                        node.span,
                        format!(
                            "sum(`{arg_name}`) adds up partial values that are not \
                             additive"
                        ),
                    )
                    .with_help("only partial sums and partial counts are additive"),
                );
            }
        }
        _ => {}
    }
}

/// Cascade node cost: the row rate the high level of a cascade
/// observes. A low-level operator emits at most its certified group
/// ceiling once per window, so the high level's input rate is that
/// ceiling amortized over the window — the quantity the static audit
/// propagates through cascade edges in place of the raw feed rate.
///
/// A zero-second window (no window variable recognised) degenerates to
/// "the whole ceiling every second", the conservative choice.
pub fn cascade_output_rate(low_groups_bound: u64, low_window_secs: u64) -> u64 {
    low_groups_bound.div_ceil(low_window_secs.max(1))
}

/// Depth-first visit of every node in an expression.
fn walk<'e>(e: &'e AstExpr, f: &mut impl FnMut(&'e AstExpr)) {
    f(e);
    match &e.kind {
        ExprKind::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        ExprKind::Not(inner) | ExprKind::Neg(inner) => walk(inner, f),
        ExprKind::Call { args, .. } => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_query::parse_query;

    const LOW: &str = "SELECT tb, srcIP, destIP, sum(len) as len, count(*) as cnt \
                       FROM PKT GROUP BY time/1 as tb, srcIP, destIP";

    fn pair(high: &str) -> Vec<Diagnostic> {
        let low = parse_query(LOW).unwrap();
        let high = parse_query(high).unwrap();
        check_pushdown(&low, &high)
    }

    #[test]
    fn exact_reaggregation_is_clean() {
        let d = pair(
            "SELECT tb2, destIP, sum(len), sum(cnt) FROM PKTAGG \
             GROUP BY tb/60 as tb2, destIP",
        );
        assert_eq!(d, vec![]);
    }

    #[test]
    fn count_star_over_partials_is_flagged() {
        let src = "SELECT tb2, destIP, count(*) FROM PKTAGG GROUP BY tb/60 as tb2, destIP";
        let d = pair(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::W101);
        assert!(d[0].message.contains("partial tuples"));
        assert!(d[0].help.as_deref().unwrap().contains("sum(cnt)"));
        // The span covers the offending call in the high query's text.
        assert_eq!(&src[d[0].span.start..d[0].span.end], "count(*)");
    }

    #[test]
    fn avg_and_order_sensitive_aggregates_are_flagged() {
        let d = pair("SELECT tb2, avg(len) FROM PKTAGG GROUP BY tb/60 as tb2");
        assert!(d.iter().any(|d| d.code == Code::W101 && d.message.contains("avg")));
        let d = pair("SELECT tb2, first(len), last(cnt) FROM PKTAGG GROUP BY tb/60 as tb2");
        assert_eq!(d.iter().filter(|d| d.code == Code::W101).count(), 2);
    }

    #[test]
    fn min_max_only_reaggregate_their_own_kind() {
        let low = parse_query(
            "SELECT tb, srcIP, min(len) as lo, max(len) as hi FROM PKT \
             GROUP BY time/1 as tb, srcIP",
        )
        .unwrap();
        let ok = parse_query("SELECT tb2, min(lo), max(hi) FROM S GROUP BY tb/60 as tb2").unwrap();
        assert_eq!(check_pushdown(&low, &ok), vec![]);
        let bad = parse_query("SELECT tb2, min(hi), sum(lo) FROM S GROUP BY tb/60 as tb2").unwrap();
        let d = check_pushdown(&low, &bad);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.code == Code::W101));
    }

    #[test]
    fn selection_low_level_is_always_safe() {
        // A pure selection low query forwards raw tuples; counting them
        // at the high level is exact.
        let low =
            parse_query("SELECT tb, srcIP, len FROM PKT GROUP BY time/1 as tb, srcIP").unwrap();
        let high =
            parse_query("SELECT tb2, count(*), avg(len) FROM S GROUP BY tb/60 as tb2").unwrap();
        assert_eq!(check_pushdown(&low, &high), vec![]);
    }

    #[test]
    fn count_distinct_does_not_survive_partials() {
        let d = pair(
            "SELECT tb2, destIP FROM PKTAGG GROUP BY tb/60 as tb2, destIP \
             CLEANING WHEN count_distinct$(*) > 100 \
             CLEANING BY sum(cnt) > 10",
        );
        assert!(d.iter().any(|d| d.message.contains("distinct")), "{d:?}");
    }

    #[test]
    fn fixed_pktagg_reaggregation_check() {
        let good = parse_query(
            "SELECT tb, destIP, sum(len), sum(cnt) FROM PKTAGG GROUP BY time/60 as tb, destIP",
        )
        .unwrap();
        assert_eq!(check_reaggregation(&good), vec![]);
        let bad =
            parse_query("SELECT tb, destIP, count(*) FROM PKTAGG GROUP BY time/60 as tb, destIP")
                .unwrap();
        assert_eq!(check_reaggregation(&bad).len(), 1);
    }
}
