//! The shard ring: a bounded single-producer single-consumer queue on
//! the [`sso_sync`] facade, replacing the vendored channel so the
//! hand-off protocol is model-checkable.
//!
//! Classic Lamport design: `head`/`tail` are *monotonic* counters (slot
//! index is `counter % capacity`, so full/empty never alias), slots are
//! [`SyncCell`]s written by exactly one side at a time. The protocol's
//! memory orderings — and why each one is required — are verified by
//! the `model_check` suite and written up in `DESIGN.md`:
//!
//! * producer publishes a slot with a `Release` store of `tail`; the
//!   consumer's `Acquire` load of `tail` orders the slot read after the
//!   slot write;
//! * consumer retires a slot with a `Release` store of `head`; the
//!   producer's `Acquire` load of `head` orders slot *reuse* after the
//!   consumer's take;
//! * the two side-closed flags are `Release`-stored on drop and
//!   `Acquire`-checked after an empty/full observation, so a final
//!   hand-off is never missed.
//!
//! Single-producer / single-consumer is enforced structurally: the two
//! endpoint types are not `Clone` and their methods take `&mut self`.

use std::sync::Arc;

#[cfg(test)]
use sso_sync::hint::spin_yield;
use sso_sync::hint::Backoff;
use sso_sync::Ordering::{Acquire, Relaxed, Release};
use sso_sync::{SyncBool, SyncCell, SyncUsize};

struct Shared<T> {
    slots: Box<[SyncCell<Option<T>>]>,
    /// Next slot the consumer takes (monotonic; slot = head % capacity).
    head: SyncUsize,
    /// Next slot the producer fills (monotonic; slot = tail % capacity).
    tail: SyncUsize,
    /// The producer is gone: once the ring drains, `pop` returns `None`.
    producer_done: SyncBool,
    /// The consumer is gone: pushes fail fast instead of blocking.
    consumer_gone: SyncBool,
}

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value is handed back (drop-newest callers
    /// count it, blocking callers retry).
    Full(T),
    /// The consumer is gone; the value is handed back.
    Closed(T),
}

/// Create a bounded SPSC ring holding at most `capacity` items.
///
/// # Panics
/// If `capacity` is zero.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| SyncCell::new(None)).collect(),
        head: SyncUsize::new(0),
        tail: SyncUsize::new(0),
        producer_done: SyncBool::new(false),
        consumer_gone: SyncBool::new(false),
    });
    (Producer { shared: shared.clone() }, Consumer { shared })
}

/// The write end of a ring. Not `Clone`: exactly one producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The read end of a ring. Not `Clone`: exactly one consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> Producer<T> {
    /// Enqueue without waiting.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let s = &*self.shared;
        if s.consumer_gone.load(Acquire) {
            return Err(PushError::Closed(value));
        }
        // `tail` is only written by this side; `Relaxed` suffices.
        let tail = s.tail.load(Relaxed);
        // `Acquire` on `head` orders the slot overwrite below after the
        // consumer's take of the previous occupant.
        let head = s.head.load(Acquire);
        if tail.wrapping_sub(head) >= s.slots.len() {
            return Err(PushError::Full(value));
        }
        // SAFETY: `head <= tail < head + capacity` makes this slot
        // exclusively the producer's until `tail` advances past it.
        unsafe { s.slots[tail % s.slots.len()].with_mut(|slot| *slot = Some(value)) };
        // `Release` publishes the slot write to the consumer's
        // `Acquire` load of `tail`.
        s.tail.store(tail.wrapping_add(1), Release);
        Ok(())
    }

    /// Enqueue, waiting while the ring is full. `Err` hands the value
    /// back if the consumer is gone.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        self.push_tracked(value).map(|_| ())
    }

    /// [`Producer::push`], reporting whether the call had to wait:
    /// `Ok(true)` means the ring was full at least once before the value
    /// went in. One full-ring wait is one stall, *however many spin
    /// iterations it took* — callers that count stalls must not be able
    /// to over-count by spinning (the `model_check` suite pins this).
    pub fn push_tracked(&mut self, value: T) -> Result<bool, T> {
        self.push_tracked_with(value, || {})
    }

    /// [`Producer::push_tracked`] with a wait-entry hook:
    /// `on_first_stall` runs **exactly once**, at the first full-ring
    /// observation, before any spin — not per retry iteration. This is
    /// where callers record "a batch is now waiting" state (e.g. the
    /// `rt.ring_depth` gauge), so stalls shorter than one batch are
    /// visible the moment they begin rather than only at the next batch
    /// boundary. The once-per-wait contract is model-checked.
    pub fn push_tracked_with(
        &mut self,
        mut value: T,
        mut on_first_stall: impl FnMut(),
    ) -> Result<bool, T> {
        let mut stalled = false;
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(stalled),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => {
                    if !stalled {
                        stalled = true;
                        on_first_stall();
                    }
                    value = v;
                    backoff.wait();
                }
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // `Release` so a consumer that observes the flag also observes
        // every push before it.
        self.shared.producer_done.store(true, Release);
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeue without waiting. `Ok(None)` means currently empty but
    /// the producer may still push; `Err(())` means drained and closed.
    #[allow(clippy::result_unit_err)]
    pub fn try_pop(&mut self) -> Result<Option<T>, ()> {
        let s = &*self.shared;
        // `head` is only written by this side; `Relaxed` suffices.
        let head = s.head.load(Relaxed);
        // `Acquire` pairs with the producer's `Release` store: the slot
        // read below sees the push that made `tail` advance.
        if s.tail.load(Acquire) == head {
            if !s.producer_done.load(Acquire) {
                return Ok(None);
            }
            // The producer's last push happened before it set the flag;
            // re-check `tail` so that push is not missed. If it landed
            // between the two loads, fall through and take it now —
            // returning `Ok(None)` here would make a caller wait for a
            // wakeup that never comes.
            if s.tail.load(Acquire) == head {
                return Err(());
            }
        }
        // SAFETY: `head < tail` makes this slot exclusively the
        // consumer's until `head` advances past it.
        let value = unsafe { s.slots[head % s.slots.len()].with_mut(|slot| slot.take()) };
        // `Release` hands the emptied slot back to the producer's
        // `Acquire` load of `head`.
        s.head.store(head.wrapping_add(1), Release);
        Ok(Some(value.expect("ring slot published but empty")))
    }

    /// Dequeue, waiting while the ring is empty. `None` means the
    /// producer is gone and the ring is drained. The wait escalates
    /// from yields to micro-sleeps ([`Backoff`]) so idle consumers on
    /// an oversubscribed host don't starve the producer of cycles.
    pub fn pop(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_pop() {
                Ok(Some(v)) => return Some(v),
                Err(()) => return None,
                Ok(None) => backoff.wait(),
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(9), Err(PushError::Full(9)));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Ok(Some(i)));
        }
        assert_eq!(rx.try_pop(), Ok(None));
    }

    #[test]
    fn pop_drains_after_producer_drop() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn push_fails_after_consumer_drop() {
        let (mut tx, rx) = ring::<u32>(2);
        drop(rx);
        assert_eq!(tx.try_push(5), Err(PushError::Closed(5)));
        assert_eq!(tx.push(6), Err(6));
    }

    #[test]
    fn cross_thread_handoff_is_lossless() {
        const N: u32 = 10_000;
        let (mut tx, mut rx) = ring::<u32>(8);
        let producer = sso_sync::thread::spawn(move || {
            for i in 0..N {
                tx.push(i).unwrap();
            }
        });
        let mut expected = 0;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join();
    }

    #[test]
    fn wait_entry_hook_fires_once_per_wait_only_when_full() {
        let (mut tx, mut rx) = ring::<u32>(1);
        let mut fired = 0u32;
        assert_eq!(tx.push_tracked_with(1, || fired += 1), Ok(false));
        assert_eq!(fired, 0, "no hook on an un-stalled push");
        // The consumer drains only after the hook has run, so the
        // second push deterministically observes a full ring — and the
        // hook still runs exactly once across all the spins that follow.
        let gate = Arc::new(SyncBool::new(false));
        let gate2 = gate.clone();
        let consumer = sso_sync::thread::spawn(move || {
            while !gate2.load(Acquire) {
                spin_yield();
            }
            assert_eq!(rx.pop(), Some(1));
            assert_eq!(rx.pop(), Some(2));
            assert_eq!(rx.pop(), None);
        });
        let stalled = tx
            .push_tracked_with(2, || {
                fired += 1;
                gate.store(true, Release);
            })
            .unwrap();
        assert!(stalled);
        assert_eq!(fired, 1);
        drop(tx);
        consumer.join();
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (mut tx, mut rx) = ring::<u64>(2);
        for round in 0..100u64 {
            tx.try_push(round * 2).unwrap();
            tx.try_push(round * 2 + 1).unwrap();
            assert_eq!(rx.try_pop(), Ok(Some(round * 2)));
            assert_eq!(rx.try_pop(), Ok(Some(round * 2 + 1)));
        }
    }
}
