//! # sso-core
//!
//! The paper's primary contribution: a **generic stream sampling
//! operator** (§5–§6) that can be specialized into a wide family of
//! stream-sampling algorithms.
//!
//! The operator extends grouping/aggregation with:
//!
//! * **supergroups** — a grouping-set over a subset of the group-by
//!   variables; sampling *state* and *superaggregates* live per
//!   supergroup, samples (groups) live inside supergroups;
//! * **stateful functions (SFUNs)** — families of functions sharing
//!   mutable per-supergroup state, with window-to-window state
//!   carry-over;
//! * **cleaning phases** — `CLEANING WHEN <pred>` triggers a pass that
//!   applies `CLEANING BY <pred>` to every group of the supergroup,
//!   evicting groups for which it is false;
//! * **HAVING at window close** — the finishing-off predicate that
//!   decides which groups become output samples.
//!
//! The evaluation loop implemented by [`operator::SamplingOperator`]
//! follows §6.4 step by step. The four representative algorithms are
//! provided as SFUN libraries in [`libs`] plus ready-made query shapes in
//! [`queries`].
//!
//! Everything here is independent of any particular DSMS; `sso-gigascope`
//! embeds the operator into a two-level runtime, and `sso-query` builds
//! [`operator::OperatorSpec`]s from query text.

pub mod agg;
pub mod error;
pub mod expr;
pub mod libs;
pub mod merge;
pub mod metrics;
pub mod operator;
pub mod queries;
pub mod scalar;
pub mod sfun;
pub mod snapshot;
pub mod superagg;

pub use agg::{AggSpec, AggState};
pub use error::{panic_message, OpError};
pub use expr::{BinOp, EvalCtx, Expr};
pub use merge::{shard_plan, ColumnRule, MergeRule, NotMergeable, ShardPlan};
pub use metrics::OperatorMetrics;
pub use operator::{
    Degradation, OperatorSpec, OperatorStats, PagedBackend, SamplingOperator, SizingHints,
    SpillStats, WindowOutput, WindowStats,
};
pub use sfun::{SfunLibrary, SfunStates, SfunTelemetry, Signature};
pub use superagg::{SuperAggSpec, SuperAggState};
