//! Ablation: the group-table hash function (DESIGN.md).
//!
//! The operator's hot path is a hash-map probe keyed by a small tuple of
//! integer values per packet. The Rust perf guide recommends FxHash for
//! integer-heavy keys; this ablation quantifies the choice against the
//! standard library's SipHash on exactly our key shape.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;
use sso_types::{Tuple, Value};

const N: usize = 100_000;

fn group_keys() -> Vec<Tuple> {
    // (tb, srcIP, destIP, uts): the subset-sum query's group key shape.
    let mut rng = StdRng::seed_from_u64(9);
    (0..N)
        .map(|i| {
            Tuple::new(vec![
                Value::U64(i as u64 / 20_000),
                Value::U64(rng.gen_range(0..4096u64)),
                Value::U64(rng.gen_range(0..512u64)),
                Value::U64(i as u64),
            ])
        })
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let keys = group_keys();
    let mut group = c.benchmark_group("group_table_hash");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_function("fxhash_insert_lookup", |b| {
        b.iter(|| {
            let mut m: FxHashMap<Tuple, u64> = FxHashMap::default();
            for k in &keys {
                *m.entry(k.clone()).or_insert(0) += 1;
            }
            let mut hits = 0u64;
            for k in &keys {
                hits += m.get(std::hint::black_box(k)).copied().unwrap_or(0);
            }
            hits
        })
    });

    group.bench_function("siphash_insert_lookup", |b| {
        b.iter(|| {
            let mut m: HashMap<Tuple, u64> = HashMap::new();
            for k in &keys {
                *m.entry(k.clone()).or_insert(0) += 1;
            }
            let mut hits = 0u64;
            for k in &keys {
                hits += m.get(std::hint::black_box(k)).copied().unwrap_or(0);
            }
            hits
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
