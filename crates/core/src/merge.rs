//! Shard-mergeability classification (§7.2 partial aggregation).
//!
//! A query can run on N parallel operator instances — one per shard of a
//! hash-partitioned stream — exactly when its per-window state obeys a
//! partial-aggregation merge rule: the union of the per-shard outputs,
//! combined by the rule, must equal (exactly, or in distribution for
//! sampled queries) the single-instance output.
//!
//! [`shard_plan`] inspects an [`OperatorSpec`] and either produces a
//! [`ShardPlan`] — which tuple expressions to partition on, and which
//! [`MergeRule`] re-combines per-shard window outputs — or explains why
//! the query is not shard-mergeable. The runtime crate executes the
//! plan; the query front end surfaces the refusal as a diagnostic.

use std::fmt;

use crate::agg::AggSpec;
use crate::expr::Expr;
use crate::operator::OperatorSpec;
use crate::superagg::SuperAggSpec;
use sso_types::Value;

/// How one output column combines when two shards emit rows with equal
/// key columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRule {
    /// Part of the row identity: equal on every merged-together row.
    Key,
    /// Added across shards (`sum`, `count`).
    Sum,
    /// Minimum across shards.
    Min,
    /// Maximum across shards.
    Max,
}

/// How per-shard window outputs of one window re-combine into the
/// single-instance result.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeRule {
    /// Group keys are disjoint across shards (the partition key contains
    /// the whole non-window group key): concatenate rows.
    Concat,
    /// Rows with equal [`ColumnRule::Key`] columns combine column-wise.
    Combine(Vec<ColumnRule>),
    /// Threshold (subset-sum) sampling: re-threshold the union of the
    /// per-shard samples at the maximum per-shard threshold, then raise
    /// until the target size is met (unbiased by the tower property —
    /// see `sso_sampling::subset_sum::merge_threshold_samples`).
    SubsetSum {
        /// SELECT column holding `UMAX(sum(w), ssthreshold())`.
        weight_col: usize,
        /// Target sample size per window.
        target: usize,
    },
    /// Reservoir sampling: hypergeometric weighted re-sample of the
    /// per-shard reservoirs, weighted by per-shard tuples seen.
    Reservoir {
        /// Reservoir capacity per window.
        n: usize,
    },
    /// K-minimum-values signatures: per signature key, union the rows,
    /// sort by the hash column, keep the k smallest.
    KmvTruncate {
        /// SELECT columns identifying one signature (the supergroup key
        /// minus the window).
        key_cols: Vec<usize>,
        /// SELECT column holding the hash value.
        hash_col: usize,
        /// Signature size.
        k: usize,
    },
}

/// A shard-execution plan: how to route tuples and how to merge window
/// outputs.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Tuple-phase expressions whose values are hashed to pick a shard.
    /// Empty means round-robin (only valid with a key-free rule like
    /// [`MergeRule::Combine`] over window-only groups).
    pub partition_exprs: Vec<Expr>,
    /// The window-output merge rule.
    pub rule: MergeRule,
}

/// Why a query cannot run sharded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotMergeable {
    /// Human-readable explanation, phrased for a diagnostic note.
    pub reason: String,
}

impl NotMergeable {
    fn new(reason: impl Into<String>) -> Self {
        NotMergeable { reason: reason.into() }
    }
}

impl fmt::Display for NotMergeable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query is not shard-mergeable: {}", self.reason)
    }
}

impl std::error::Error for NotMergeable {}

/// Walk an expression tree, calling `f` on every node.
fn walk<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        Expr::Not(inner) => walk(inner, f),
        Expr::Sfun { args, .. } | Expr::Scalar { args, .. } => {
            for a in args {
                walk(a, f);
            }
        }
        Expr::Literal(_)
        | Expr::Column(_)
        | Expr::GroupVar(_)
        | Expr::Aggregate(_)
        | Expr::SuperAgg(_) => {}
    }
}

/// Find the first SFUN call named `name` anywhere under `e`.
fn find_sfun<'a>(e: &'a Expr, name: &str) -> Option<&'a Expr> {
    let mut found = None;
    walk(e, &mut |node| {
        if found.is_none() {
            if let Expr::Sfun { name: n, .. } = node {
                if *n == name {
                    found = Some(node);
                }
            }
        }
    });
    found
}

fn literal_usize(e: &Expr) -> Option<usize> {
    match e {
        Expr::Literal(Value::U64(v)) => Some(*v as usize),
        Expr::Literal(Value::I64(v)) if *v >= 0 => Some(*v as usize),
        _ => None,
    }
}

/// The group-by expressions that are data keys (not window attributes).
fn non_window_keys(spec: &OperatorSpec) -> Vec<Expr> {
    spec.group_by
        .iter()
        .enumerate()
        .filter(|(i, _)| !spec.window_indices.contains(i))
        .map(|(_, (_, e))| e.clone())
        .collect()
}

/// Column-wise combine rules for a SELECT list of plain group variables
/// and combinable aggregates; errors on anything else.
fn combine_rules(spec: &OperatorSpec) -> Result<Vec<ColumnRule>, NotMergeable> {
    spec.select
        .iter()
        .map(|(name, expr)| match expr {
            Expr::GroupVar(_) => Ok(ColumnRule::Key),
            Expr::Aggregate(i) => match spec.aggregates.get(*i) {
                Some(AggSpec::Sum(_) | AggSpec::Count) => Ok(ColumnRule::Sum),
                Some(AggSpec::Min(_)) => Ok(ColumnRule::Min),
                Some(AggSpec::Max(_)) => Ok(ColumnRule::Max),
                Some(AggSpec::First(_) | AggSpec::Last(_)) => Err(NotMergeable::new(format!(
                    "column `{name}` takes first/last over arrival order, \
                     which sharding does not preserve"
                ))),
                None => Err(NotMergeable::new(format!(
                    "column `{name}` references an undefined aggregate slot"
                ))),
            },
            _ => Err(NotMergeable::new(format!(
                "column `{name}` is not a group variable or combinable aggregate"
            ))),
        })
        .collect()
}

/// Classify an operator spec for sharded execution.
///
/// The decision procedure, in order:
///
/// 1. Distinct sampling is refused: its hash level is one global
///    threshold shared by every group in the window.
/// 2. Sampling SFUN libraries dispatch on the library name — subset-sum
///    and reservoir sampling have dedicated distributional merge rules;
///    the heavy-hitter (lossy counting) library combines column-wise.
/// 3. Queries with a declared SUPERGROUP partition on the supergroup
///    key, making every supergroup's state shard-local (min-hash
///    signatures additionally get the KMV union-truncate rule so they
///    stay correct under any partitioning).
/// 4. Plain aggregations partition on the non-window group key
///    (disjoint groups ⇒ concatenate), or — grouped by window only —
///    round-robin with column-wise combining.
pub fn shard_plan(spec: &OperatorSpec) -> Result<ShardPlan, NotMergeable> {
    let libs: Vec<&str> = spec.sfun_libs.iter().map(|l| l.name()).collect();

    if libs.contains(&"distinct_sampling_state") {
        return Err(NotMergeable::new(
            "distinct sampling keeps one global hash level per window; \
             per-shard levels diverge and the union over-represents \
             low-level shards",
        ));
    }
    if libs.len() > 1 {
        return Err(NotMergeable::new(format!(
            "query uses {} stateful-function libraries; merge rules are \
             defined per single library",
            libs.len()
        )));
    }

    match libs.first().copied() {
        Some("subsetsum_sampling_state") => {
            let where_clause = spec
                .where_clause
                .as_ref()
                .ok_or_else(|| NotMergeable::new("subset-sum query has no ssample() predicate"))?;
            let ssample = find_sfun(where_clause, "ssample")
                .ok_or_else(|| NotMergeable::new("subset-sum query has no ssample() predicate"))?;
            let Expr::Sfun { args, .. } = ssample else { unreachable!() };
            let target = args.get(1).and_then(literal_usize).ok_or_else(|| {
                NotMergeable::new("ssample() target sample size is not a literal")
            })?;
            let weight_col = spec
                .select
                .iter()
                .position(|(_, e)| find_sfun(e, "ssthreshold").is_some())
                .ok_or_else(|| {
                    NotMergeable::new(
                        "subset-sum SELECT has no ssthreshold() adjusted-weight column",
                    )
                })?;
            let partition_exprs = non_window_keys(spec);
            if partition_exprs.is_empty() {
                return Err(NotMergeable::new(
                    "subset-sum query groups by window only; no key to partition on",
                ));
            }
            // Without cleaning the threshold is fixed and identical on
            // every shard: per-shard samples are independent threshold
            // samples and plain concatenation is already unbiased.
            let rule = if spec.cleaning_when.is_none() {
                MergeRule::Concat
            } else {
                MergeRule::SubsetSum { weight_col, target }
            };
            Ok(ShardPlan { partition_exprs, rule })
        }
        Some("reservoir_sampling_state") => {
            let where_clause = spec
                .where_clause
                .as_ref()
                .ok_or_else(|| NotMergeable::new("reservoir query has no rsample() predicate"))?;
            let rsample = find_sfun(where_clause, "rsample")
                .ok_or_else(|| NotMergeable::new("reservoir query has no rsample() predicate"))?;
            let Expr::Sfun { args, .. } = rsample else { unreachable!() };
            let n = args
                .first()
                .and_then(literal_usize)
                .ok_or_else(|| NotMergeable::new("rsample() reservoir size is not a literal"))?;
            let partition_exprs = non_window_keys(spec);
            if partition_exprs.is_empty() {
                return Err(NotMergeable::new(
                    "reservoir query groups by window only; no key to partition on",
                ));
            }
            Ok(ShardPlan { partition_exprs, rule: MergeRule::Reservoir { n } })
        }
        Some("heavy_hitter_state") => {
            let partition_exprs = non_window_keys(spec);
            if partition_exprs.is_empty() {
                return Err(NotMergeable::new(
                    "heavy-hitters query groups by window only; no key to partition on",
                ));
            }
            // Partitioning on the group key keeps each candidate's count
            // on one shard; Combine (rather than Concat) also covers the
            // degenerate overlap where two shards report the same key.
            Ok(ShardPlan { partition_exprs, rule: MergeRule::Combine(combine_rules(spec)?) })
        }
        Some(other) => Err(NotMergeable::new(format!(
            "stateful-function library `{other}` has no registered merge rule"
        ))),
        None if !spec.supergroup_indices.is_empty() => {
            let partition_exprs: Vec<Expr> = spec
                .supergroup_indices
                .iter()
                .filter(|i| !spec.window_indices.contains(i))
                .map(|&i| spec.group_by[i].1.clone())
                .collect();
            if partition_exprs.is_empty() {
                return Err(NotMergeable::new(
                    "SUPERGROUP key has no non-window attribute to partition on",
                ));
            }
            // Min-hash signatures: if a Kth_smallest_value$ superagg's
            // group variable is a SELECT column, the KMV union-truncate
            // rule merges signatures exactly under any partitioning.
            let kth = spec.superaggs.iter().find_map(|s| match s {
                SuperAggSpec::KthSmallest { expr: Expr::GroupVar(g), k } => Some((*g, *k)),
                _ => None,
            });
            if let Some((g, k)) = kth {
                if let Some(hash_col) =
                    spec.select.iter().position(|(_, e)| matches!(e, Expr::GroupVar(v) if *v == g))
                {
                    let key_cols: Vec<usize> = spec
                        .select
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, e))| match e {
                            Expr::GroupVar(v) => spec.supergroup_indices.contains(v),
                            _ => false,
                        })
                        .map(|(i, _)| i)
                        .collect();
                    return Ok(ShardPlan {
                        partition_exprs,
                        rule: MergeRule::KmvTruncate { key_cols, hash_col, k },
                    });
                }
            }
            // Any other supergroup query: all supergroup state lives on
            // the shard owning the supergroup key, so outputs are
            // disjoint.
            Ok(ShardPlan { partition_exprs, rule: MergeRule::Concat })
        }
        None if !spec.superaggs.is_empty() => Err(NotMergeable::new(
            "window-global superaggregates cannot be recomputed from \
             per-shard outputs",
        )),
        None => {
            let partition_exprs = non_window_keys(spec);
            if partition_exprs.is_empty() {
                // Window-only grouping: any shard may own any row of the
                // (single) group; combine column-wise.
                Ok(ShardPlan { partition_exprs, rule: MergeRule::Combine(combine_rules(spec)?) })
            } else {
                Ok(ShardPlan { partition_exprs, rule: MergeRule::Concat })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libs::distinct::DistinctOpConfig;
    use crate::libs::reservoir::ReservoirOpConfig;
    use crate::libs::subset_sum::SubsetSumOpConfig;
    use crate::queries;

    #[test]
    fn total_sum_is_round_robin_combine() {
        let plan = shard_plan(&queries::total_sum_query(60)).unwrap();
        assert!(plan.partition_exprs.is_empty());
        assert_eq!(
            plan.rule,
            MergeRule::Combine(vec![ColumnRule::Key, ColumnRule::Sum, ColumnRule::Sum])
        );
    }

    #[test]
    fn dynamic_subset_sum_gets_threshold_merge() {
        let cfg = SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() };
        let spec = queries::subset_sum_query(60, cfg, false).unwrap();
        let plan = shard_plan(&spec).unwrap();
        assert_eq!(plan.partition_exprs.len(), 3); // srcIP, destIP, uts
        assert_eq!(plan.rule, MergeRule::SubsetSum { weight_col: 3, target: 100 });
    }

    #[test]
    fn basic_subset_sum_concatenates() {
        let spec = queries::basic_subset_sum_query(60, 600.0).unwrap();
        let plan = shard_plan(&spec).unwrap();
        assert_eq!(plan.rule, MergeRule::Concat, "fixed threshold needs no re-threshold");
    }

    #[test]
    fn heavy_hitters_combine_columns() {
        let spec = queries::heavy_hitters_query(60, 100, Some(50)).unwrap();
        let plan = shard_plan(&spec).unwrap();
        assert_eq!(plan.partition_exprs.len(), 1); // srcIP
        assert_eq!(
            plan.rule,
            MergeRule::Combine(vec![
                ColumnRule::Key,
                ColumnRule::Key,
                ColumnRule::Sum,
                ColumnRule::Sum
            ])
        );
    }

    #[test]
    fn minhash_gets_kmv_truncate_on_supergroup_key() {
        let spec = queries::minhash_query(60, 10).unwrap();
        let plan = shard_plan(&spec).unwrap();
        assert_eq!(plan.partition_exprs.len(), 1); // srcIP
        assert_eq!(plan.rule, MergeRule::KmvTruncate { key_cols: vec![1], hash_col: 2, k: 10 });
    }

    #[test]
    fn reservoir_gets_weighted_merge() {
        let cfg = ReservoirOpConfig { n: 25, ..Default::default() };
        let spec = queries::reservoir_query(60, cfg).unwrap();
        let plan = shard_plan(&spec).unwrap();
        assert_eq!(plan.partition_exprs.len(), 2); // srcIP, destIP
        assert_eq!(plan.rule, MergeRule::Reservoir { n: 25 });
    }

    #[test]
    fn distinct_sampling_is_refused() {
        let cfg = DistinctOpConfig { capacity: 256, carry_level: true };
        let spec = queries::distinct_sample_query(60, cfg).unwrap();
        let err = shard_plan(&spec).unwrap_err();
        assert!(err.reason.contains("global hash level"), "{}", err.reason);
    }
}
