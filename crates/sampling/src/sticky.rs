//! Sticky sampling (Manku & Motwani, VLDB 2002) — the probabilistic
//! sibling of lossy counting from the same paper (the paper's reference
//! \[3\] describes both).
//!
//! Entries are *sampled into* the table with rate `r` (an element not in
//! the table is added with probability `1/r`); once tracked, an entry's
//! count is exact from that point ("sticky"). The rate doubles as the
//! stream grows, and at each rate change every tracked entry is
//! re-certified by a sequence of coin flips (its count is decremented
//! per tails; heads stops the flips; a count hitting zero evicts the
//! entry).
//!
//! Guarantees (support `s`, error `ε`, failure probability `δ`): every
//! element with true frequency ≥ `s·n` is reported with probability at
//! least `1 − δ`; estimated counts undercount by at most `ε·n` in
//! expectation; space is `O((2/ε)·log(1/(s·δ)))` *independent of n*.
//!
//! On the sampling operator this is yet another admit/clean/finalize
//! instance: WHERE = the sampling coin, CLEANING WHEN = the rate change,
//! CLEANING BY = the re-certification flips.

use std::collections::HashMap;
use std::hash::Hash;

use rand::Rng;

/// The sticky-sampling sketch.
#[derive(Debug, Clone)]
pub struct StickySampler<T: Eq + Hash> {
    support: f64,
    epsilon: f64,
    /// `t = (2/ε)·log(1/(s·δ))`: the window after which the rate doubles.
    t: f64,
    rate: u64,
    stream_len: u64,
    /// Length at which the next rate doubling happens.
    next_boundary: u64,
    entries: HashMap<T, u64>,
    rate_changes: u64,
}

impl<T: Eq + Hash + Clone> StickySampler<T> {
    /// Create a sketch for support `s`, error `ε < s`, and failure
    /// probability `δ`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < s < 1` and `0 < δ < 1`.
    pub fn new(support: f64, epsilon: f64, delta: f64) -> Self {
        assert!(
            0.0 < epsilon && epsilon < support && support < 1.0,
            "need 0 < epsilon < support < 1"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let t = 2.0 / epsilon * (1.0 / (support * delta)).ln();
        StickySampler {
            support,
            epsilon,
            t,
            rate: 1,
            stream_len: 0,
            next_boundary: (2.0 * t) as u64,
            entries: HashMap::new(),
            rate_changes: 0,
        }
    }

    /// Observe one element.
    pub fn insert<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.stream_len += 1;
        if self.stream_len > self.next_boundary {
            self.rate *= 2;
            self.next_boundary *= 2;
            self.rate_changes += 1;
            self.recertify(rng);
        }
        if let Some(count) = self.entries.get_mut(&item) {
            *count += 1;
            return;
        }
        // Sample new entries with probability 1/rate.
        if self.rate == 1 || rng.gen_range(0..self.rate) == 0 {
            self.entries.insert(item, 1);
        }
    }

    /// The rate-change cleaning phase: for each entry, flip coins and
    /// decrement per tails until heads; evict entries that reach zero.
    fn recertify<R: Rng>(&mut self, rng: &mut R) {
        self.entries.retain(|_, count| {
            while *count > 0 && rng.gen_bool(0.5) {
                *count -= 1;
            }
            *count > 0
        });
    }

    /// Elements with estimated frequency at least `(s − ε)·n`.
    pub fn query(&self) -> Vec<(T, u64)> {
        let threshold = (self.support - self.epsilon) * self.stream_len as f64;
        let mut out: Vec<(T, u64)> = self
            .entries
            .iter()
            .filter(|(_, &c)| c as f64 >= threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// Estimated count of `item` (0 if untracked; never overcounts).
    pub fn estimate(&self, item: &T) -> u64 {
        self.entries.get(item).copied().unwrap_or(0)
    }

    /// Elements observed.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Tracked entries (the sketch's space).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Rate-doubling (cleaning) phases so far.
    pub fn rate_changes(&self) -> u64 {
        self.rate_changes
    }

    /// The configured space window `t`.
    pub fn t(&self) -> f64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "epsilon < support")]
    fn rejects_bad_parameters() {
        let _ = StickySampler::<u64>::new(0.01, 0.02, 0.1);
    }

    #[test]
    fn exact_until_first_boundary() {
        let mut s = StickySampler::new(0.1, 0.01, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            s.insert("a", &mut rng);
        }
        assert_eq!(s.estimate(&"a"), 100, "rate 1 counts exactly");
    }

    #[test]
    fn never_overcounts() {
        let mut s = StickySampler::new(0.05, 0.01, 0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for i in 0..200_000u64 {
            let item = (i % 97) as u32; // uniform over 97 items
            s.insert(item, &mut rng);
            *truth.entry(item).or_default() += 1;
        }
        for (item, &f) in &truth {
            assert!(s.estimate(item) <= f, "overcount for {item}");
        }
    }

    #[test]
    fn reports_heavy_hitters() {
        let support = 0.05;
        let epsilon = 0.01;
        let mut s = StickySampler::new(support, epsilon, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let n = 500_000u64;
        for i in 0..n {
            // Item 0: 20% of the stream; item 1: 8%; the rest uniform.
            let item = match i % 25 {
                0..=4 => 0u32,
                5..=6 => 1,
                r => 100 + r as u32,
            };
            s.insert(item, &mut rng);
            *truth.entry(item).or_default() += 1;
        }
        let reported: HashMap<u32, u64> = s.query().into_iter().collect();
        for (&item, &f) in &truth {
            if f as f64 >= support * n as f64 {
                assert!(
                    reported.contains_key(&item),
                    "missed heavy hitter {item} (freq {})",
                    f as f64 / n as f64
                );
            }
            if (f as f64) < (support - epsilon) * n as f64 {
                assert!(!reported.contains_key(&item), "false positive {item}");
            }
        }
    }

    #[test]
    fn space_is_independent_of_stream_length() {
        let mut s = StickySampler::new(0.02, 0.01, 0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut peak = 0usize;
        for i in 0..1_000_000u64 {
            // Uniform over a huge domain: worst case for space.
            s.insert(i, &mut rng);
            peak = peak.max(s.tracked());
        }
        // Expected space ~ 2t = (4/eps) ln(1/(s*delta)) ~ 2500; generous.
        assert!(peak < 10_000, "peak tracked {peak}");
        assert!(s.rate_changes() > 5, "rate must have doubled repeatedly");
    }

    #[test]
    fn undercount_is_bounded_in_expectation() {
        // For a heavily repeated item, the undercount is the time before
        // it got sampled at the final rate ~ rate coin flips ~ eps*n/2.
        let epsilon = 0.02;
        let mut s = StickySampler::new(0.1, epsilon, 0.05);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 300_000u64;
        for _ in 0..n {
            s.insert("hot", &mut rng);
        }
        let est = s.estimate(&"hot");
        assert!(est <= n);
        assert!(
            n - est <= (2.0 * epsilon * n as f64) as u64,
            "undercount {} beyond 2*eps*n",
            n - est
        );
    }
}
