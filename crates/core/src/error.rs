//! Operator-level errors.

use std::fmt;

use sso_types::TypeError;

/// Errors raised while building or evaluating a sampling operator.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// A value-level type error during expression evaluation.
    Type(TypeError),
    /// An expression referenced context that the current clause does not
    /// provide (e.g. an aggregate in the WHERE clause).
    MissingContext {
        /// What was referenced, e.g. `"aggregate"`.
        what: &'static str,
        /// Which clause was being evaluated.
        clause: &'static str,
    },
    /// A stateful function was called with the wrong arguments.
    BadSfunCall {
        /// Function name.
        function: String,
        /// Why the call was rejected.
        reason: String,
    },
    /// The operator specification is inconsistent.
    InvalidSpec(String),
    /// A scalar function rejected its arguments.
    BadScalarCall {
        /// Function name.
        function: String,
        /// Why the call was rejected.
        reason: String,
    },
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Type(e) => write!(f, "type error: {e}"),
            OpError::MissingContext { what, clause } => {
                write!(f, "{what} referenced in {clause}, which does not provide it")
            }
            OpError::BadSfunCall { function, reason } => {
                write!(f, "bad call to stateful function {function}: {reason}")
            }
            OpError::InvalidSpec(msg) => write!(f, "invalid operator spec: {msg}"),
            OpError::BadScalarCall { function, reason } => {
                write!(f, "bad call to function {function}: {reason}")
            }
        }
    }
}

impl std::error::Error for OpError {}

impl From<TypeError> for OpError {
    fn from(e: TypeError) -> Self {
        OpError::Type(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: OpError = TypeError::DivisionByZero.into();
        assert_eq!(e.to_string(), "type error: division by zero");
        let e = OpError::MissingContext { what: "aggregate", clause: "WHERE" };
        assert_eq!(e.to_string(), "aggregate referenced in WHERE, which does not provide it");
        let e = OpError::InvalidSpec("no group by".into());
        assert!(e.to_string().contains("no group by"));
    }
}
