//! The equivalence/implication prover over canonical predicates.
//!
//! This is the same closure style as the W204 degradation prover in
//! `sso-analysis`: purely syntactic reasoning over *normalized* forms,
//! extended with one semantic rule family — numeric comparison
//! widening. Everything it proves is a sufficient condition; it never
//! claims an implication it cannot justify, so a failed proof only
//! costs a sharing opportunity, never correctness.
//!
//! Rules, for canonical premises `P = p1 AND … AND pn` and goal `c`:
//!
//! * **Syntactic membership** — `c` canonical-equal to some `pi`.
//! * **Trivial goal** — `c` is the literal `TRUE`.
//! * **Comparison widening** — `pi = (x OP_a A)` implies
//!   `c = (x OP_b B)` when the canonical renderings of the left-hand
//!   sides match and the literal bounds nest: e.g. `x >= A ⇒ x >= B`
//!   iff `B <= A`, `x > A ⇒ x >= B` iff `B <= A`, `x = A ⇒ x OP B`
//!   iff `A OP B` holds. Numerics compare as `f64` (both `Int` and
//!   `Float` literals participate).

use sso_query::{AstExpr, BinAstOp, ExprKind};

use crate::norm::NormalizedStatement;

fn lit_num(e: &AstExpr) -> Option<f64> {
    match &e.kind {
        ExprKind::Int(v) => Some(*v as f64),
        ExprKind::Float(v) => Some(*v),
        _ => None,
    }
}

/// Split a canonical comparison `lhs OP literal` into its parts.
fn comparison(e: &AstExpr) -> Option<(&AstExpr, BinAstOp, f64)> {
    if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
        if op.is_comparison() {
            if let Some(b) = lit_num(rhs) {
                return Some((lhs, *op, b));
            }
        }
    }
    None
}

/// Does `x OP_a a` (for every x) imply `x OP_b b`?
fn widens(op_a: BinAstOp, a: f64, op_b: BinAstOp, b: f64) -> bool {
    use BinAstOp::{Eq, Ge, Gt, Le, Lt, Ne};
    match (op_a, op_b) {
        // Lower bounds: anything at least / above `a` clears a bound
        // that is no higher.
        (Ge, Ge) => b <= a,
        (Ge, Gt) => b < a,
        (Gt, Gt) | (Gt, Ge) => b <= a,
        // Upper bounds, mirrored.
        (Le, Le) => b >= a,
        (Le, Lt) => b > a,
        (Lt, Lt) | (Lt, Le) => b >= a,
        // A point premise implies whatever the point satisfies.
        (Eq, Eq) => a == b,
        (Eq, Ne) => a != b,
        (Eq, Ge) => a >= b,
        (Eq, Gt) => a > b,
        (Eq, Le) => a <= b,
        (Eq, Lt) => a < b,
        _ => false,
    }
}

/// Prove `p1 AND … AND pn ⇒ goal` (premises and goal in canonical
/// form). An empty premise list proves only the trivial goal.
pub fn implies(premises: &[AstExpr], goal: &AstExpr) -> bool {
    if matches!(goal.kind, ExprKind::Bool(true)) {
        return true;
    }
    if premises.iter().any(|p| p == goal) {
        return true;
    }
    if let Some((gl, g_op, gb)) = comparison(goal) {
        let gl_text = gl.to_string();
        for p in premises {
            if let Some((pl, p_op, pb)) = comparison(p) {
                if pl.to_string() == gl_text && widens(p_op, pb, g_op, gb) {
                    return true;
                }
            }
        }
    }
    false
}

/// The strongest shared prefilter for a set of same-stream statements:
/// every hoistable clause (deduplicated by canonical text, in first-
/// appearance order) that *each* member's hoistable prefix provably
/// implies. A member with an empty hoistable prefix — no WHERE, or a
/// stateful call first — implies nothing, so it empties the shared
/// prefilter for its whole cluster: soundness over opportunity.
pub fn shared_prefilter(members: &[&NormalizedStatement]) -> Vec<AstExpr> {
    let mut candidates: Vec<AstExpr> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for m in members {
        for c in &m.hoistable {
            let text = c.to_string();
            if !seen.contains(&text) {
                seen.push(text);
                candidates.push(c.clone());
            }
        }
    }
    candidates.into_iter().filter(|c| members.iter().all(|m| implies(&m.hoistable, c))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::normalize_statement;
    use sso_query::parse_query;

    fn clause(text: &str) -> AstExpr {
        crate::norm::normalize(
            &parse_query(&format!("SELECT tb FROM PKT WHERE {text} GROUP BY time/60 as tb"))
                .unwrap()
                .where_clause
                .unwrap(),
        )
    }

    #[test]
    fn membership_and_trivial_goals() {
        let p = vec![clause("len > 100"), clause("src_port = 80")];
        assert!(implies(&p, &clause("len > 100")));
        assert!(implies(&p, &clause("1 < 2")), "goal folds to TRUE");
        assert!(!implies(&p, &clause("dest_port = 80")));
        assert!(!implies(&[], &clause("len > 0")), "empty premises prove nothing");
    }

    #[test]
    fn comparison_widening() {
        let p = vec![clause("len >= 130")];
        assert!(implies(&p, &clause("len >= 100")));
        assert!(implies(&p, &clause("len > 100")));
        assert!(implies(&p, &clause("len >= 130")));
        assert!(!implies(&p, &clause("len > 130")));
        assert!(!implies(&p, &clause("len >= 131")));

        let p = vec![clause("len < 100")];
        assert!(implies(&p, &clause("len <= 100")));
        assert!(implies(&p, &clause("len < 200")));
        assert!(!implies(&p, &clause("len < 50")));

        let p = vec![clause("len = 80")];
        assert!(implies(&p, &clause("len >= 80")));
        assert!(implies(&p, &clause("len > 10")));
        assert!(implies(&p, &clause("len != 81")));
        assert!(!implies(&p, &clause("len > 80")));
    }

    #[test]
    fn widening_matches_lhs_canonically() {
        // `100 <= len` orients to `len >= 100`, so it matches premises
        // written the other way around.
        let p = vec![clause("len >= 130")];
        assert!(implies(&p, &clause("100 <= len")));
        // Different LHS shapes do not match.
        assert!(!implies(&p, &clause("src_port >= 100")));
    }

    #[test]
    fn shared_prefilter_needs_every_member() {
        let schema = sso_query::base_stream_schema("PKT").unwrap();
        let mk = |t: &str| normalize_statement(0, 0, &parse_query(t).unwrap(), &schema);
        let a = mk("SELECT tb FROM PKT WHERE len >= 100 GROUP BY time/60 as tb");
        let b = mk("SELECT tb FROM PKT WHERE len >= 130 GROUP BY time/60 as tb");
        let shared = shared_prefilter(&[&a, &b]);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].to_string(), "(len >= 100)");

        // A member with no hoistable prefix nulls the shared prefilter.
        let c = mk("SELECT tb FROM PKT GROUP BY time/60 as tb");
        assert!(shared_prefilter(&[&a, &b, &c]).is_empty());

        // A stateful-first WHERE also contributes nothing.
        let d = mk("SELECT tb FROM PKT WHERE ssample(len, 100) AND len >= 100 \
                    GROUP BY time/60 as tb");
        assert!(shared_prefilter(&[&a, &d]).is_empty());
    }
}
