//! Trace persistence: write generated packet traces to a simple CSV
//! form and read them back, so experiments can be pinned to an exact
//! trace file (the closest equivalent of the paper's captured feeds).
//!
//! Format: one packet per line,
//! `uts,src_ip,dest_ip,src_port,dest_port,proto,len`, all decimal, with
//! a fixed header line.

use std::io::{BufRead, BufReader, Read, Write};

use sso_types::{Packet, Protocol};

/// The header line written before the packets.
pub const HEADER: &str = "uts,src_ip,dest_ip,src_port,dest_port,proto,len";

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and description).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Write a trace in CSV form.
pub fn write_trace(packets: &[Packet], mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for p in packets {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            p.uts,
            p.src_ip,
            p.dest_ip,
            p.src_port,
            p.dest_port,
            p.proto.number(),
            p.len
        )?;
    }
    Ok(())
}

/// Read a trace written by [`write_trace`].
pub fn read_trace(r: impl Read) -> Result<Vec<Packet>, TraceError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            if line.trim() != HEADER {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("expected header `{HEADER}`"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |what: &str| -> Result<u64, TraceError> {
            fields
                .next()
                .ok_or_else(|| TraceError::Parse {
                    line: lineno,
                    message: format!("missing field `{what}`"),
                })?
                .trim()
                .parse()
                .map_err(|e| TraceError::Parse {
                    line: lineno,
                    message: format!("bad `{what}`: {e}"),
                })
        };
        let uts = next("uts")?;
        let src_ip = next("src_ip")? as u32;
        let dest_ip = next("dest_ip")? as u32;
        let src_port = next("src_port")? as u16;
        let dest_port = next("dest_port")? as u16;
        let proto = Protocol::from_number(next("proto")? as u8);
        let len = next("len")? as u32;
        if fields.next().is_some() {
            return Err(TraceError::Parse { line: lineno, message: "trailing fields".into() });
        }
        out.push(Packet { uts, src_ip, dest_ip, src_port, dest_port, proto, len });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::research_feed;

    #[test]
    fn round_trip_preserves_the_trace() {
        let packets = research_feed(9).take_seconds(2);
        let mut buf = Vec::new();
        write_trace(&packets, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(packets, back);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_trace("1,2,3,4,5,6,7\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected header"), "{err}");
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = format!("{HEADER}\n1,2,3\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let text = format!("{HEADER}\n1,2,3,4,5,6,7,8\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");

        let text = format!("{HEADER}\n1,2,x,4,5,6,7\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad `dest_ip`"), "{err}");
    }

    #[test]
    fn skips_blank_lines() {
        let text = format!("{HEADER}\n1,2,3,4,5,6,700\n\n");
        let packets = read_trace(text.as_bytes()).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].len, 700);
        assert_eq!(packets[0].proto, Protocol::Tcp);
    }
}
