//! **Figure 4 — Cleaning phases per period** (1000 samples per period).
//!
//! The cost of relaxation: each window the relaxed algorithm starts with
//! a 10× too-low threshold, so a handful of cleaning phases raise it
//! back (the paper observes ~4, with a spike while the very first
//! windows find the right threshold); the non-relaxed algorithm settles
//! to ~1 (just the final window-border subsample).

use sso_bench::{header, maybe_json, run_subset_sum};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_netgen::research_feed;

#[derive(serde::Serialize)]
struct Row {
    tb: u64,
    relaxed: u64,
    nonrelaxed: u64,
}

fn main() {
    const WINDOW: u64 = 20;
    const N: usize = 1000;
    const SECONDS: u64 = 600;

    let packets = research_feed(0xf162).take_seconds(SECONDS);
    let relaxed = run_subset_sum(
        &packets,
        WINDOW,
        SubsetSumOpConfig { target: N, initial_z: 1.0, ..Default::default() },
    )
    .expect("relaxed run");
    let nonrelaxed = run_subset_sum(
        &packets,
        WINDOW,
        SubsetSumOpConfig { target: N, initial_z: 1.0, ..Default::default() }.non_relaxed(),
    )
    .expect("non-relaxed run");

    let rows: Vec<Row> = relaxed
        .iter()
        .zip(&nonrelaxed)
        .map(|(r, n)| Row { tb: r.tb, relaxed: r.cleanings, nonrelaxed: n.cleanings })
        .collect();

    if maybe_json(&rows) {
        return;
    }
    header("Figure 4: cleaning phases per period (N = 1000, 20s periods)");
    println!("{:>6} {:>10} {:>12}", "period", "relaxed", "nonrelaxed");
    for r in &rows {
        println!("{:>6} {:>10} {:>12}", r.tb, r.relaxed, r.nonrelaxed);
    }
    let tail = &rows[rows.len().min(3)..];
    let mean =
        |f: fn(&Row) -> u64| tail.iter().map(f).sum::<u64>() as f64 / tail.len().max(1) as f64;
    println!(
        "\nsteady state (after the first windows): relaxed {:.1} cleanings/period, \
         non-relaxed {:.1}.",
        mean(|r| r.relaxed),
        mean(|r| r.nonrelaxed)
    );
    println!(
        "paper's shape: both spike while finding the threshold, then relaxed \
         stabilizes around ~4 phases vs ~1 for non-relaxed."
    );
}
