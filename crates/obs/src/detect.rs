//! The under-sampling detector.
//!
//! The paper's bursty-load diagnosis: dynamic subset-sum carries the
//! final threshold `z` into the next window, so after a traffic burst a
//! quiet window starts with a threshold calibrated for the burst and
//! admits almost nothing — the achieved sample collapses far below the
//! target even though plenty of tuples were offered. The relaxed
//! carry-over `z_next = z_now / f` (f ≈ 10) recovers within a window.
//!
//! [`UndersampleDetector`] watches the per-window `(achieved, target,
//! offered)` triple and fires when the operator *could* have filled its
//! budget (`offered >= target`) but achieved less than
//! `ratio × target`. Firing increments `op.undersampled_windows` and
//! updates the achieved/target gauges so the pathology is visible in
//! any exporter or the meta-stream.

use crate::registry::{Counter, Gauge, Registry};

/// Detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct UndersampleConfig {
    /// Fire when `achieved < ratio * target` (given enough offered
    /// tuples). The strict carry-over collapses to `~target/D` after a
    /// `D×` load drop while the relaxed variant recovers to
    /// `~f·target/D`, so 0.1 cleanly separates the two for `D ≫ f`.
    pub ratio: f64,
}

impl Default for UndersampleConfig {
    fn default() -> Self {
        UndersampleConfig { ratio: 0.1 }
    }
}

/// Per-operator under-sampling detector with registry-backed outputs.
#[derive(Debug, Clone)]
pub struct UndersampleDetector {
    cfg: UndersampleConfig,
    fired: Counter,
    achieved: Gauge,
    target: Gauge,
}

impl UndersampleDetector {
    /// Register detector outputs in `registry` under `label`.
    pub fn register(
        registry: &Registry,
        label: impl Into<String> + Clone,
        cfg: UndersampleConfig,
    ) -> Self {
        UndersampleDetector {
            cfg,
            fired: registry.counter_labeled("op.undersampled_windows", label.clone()),
            achieved: registry.gauge_labeled("op.sample_achieved", label.clone()),
            target: registry.gauge_labeled("op.sample_target", label),
        }
    }

    /// Feed one closed window's numbers; returns whether the detector
    /// fired for this window.
    pub fn observe(&self, achieved: u64, target: u64, offered: u64) -> bool {
        self.achieved.set(achieved as f64);
        self.target.set(target as f64);
        let fired =
            target > 0 && offered >= target && (achieved as f64) < self.cfg.ratio * target as f64;
        if fired {
            self.fired.inc();
        }
        fired
    }

    /// Total windows flagged so far (this cell).
    pub fn fired_windows(&self) -> u64 {
        self.fired.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(r: &Registry) -> UndersampleDetector {
        UndersampleDetector::register(r, "", UndersampleConfig::default())
    }

    #[test]
    fn fires_on_collapse_with_ample_offer() {
        let r = Registry::new();
        let d = detector(&r);
        // Post-burst quiet window: 20k offered, target 1000, achieved 20.
        assert!(d.observe(20, 1000, 20_000));
        assert_eq!(d.fired_windows(), 1);
        assert_eq!(r.snapshot().value("op.sample_achieved"), 20.0);
    }

    #[test]
    fn quiet_when_sample_is_healthy() {
        let r = Registry::new();
        let d = detector(&r);
        // Relaxed carry-over: achieved ~ f/D of target = 20%.
        assert!(!d.observe(200, 1000, 20_000));
        assert!(!d.observe(1000, 1000, 5000));
        assert_eq!(d.fired_windows(), 0);
    }

    #[test]
    fn quiet_when_offer_is_small() {
        let r = Registry::new();
        let d = detector(&r);
        // Only 50 tuples arrived: a tiny sample is expected, not a bug.
        assert!(!d.observe(50, 1000, 50));
        // No target configured: nothing to detect.
        assert!(!d.observe(0, 0, 1_000_000));
        assert_eq!(d.fired_windows(), 0);
    }
}
