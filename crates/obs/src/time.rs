//! The timing facade.
//!
//! Hot-path crates are forbidden (by clippy `disallowed-methods`) from
//! calling `std::time::Instant::now()` directly; they go through
//! [`Stopwatch`] instead so every timing site is discoverable and can
//! be sampled or disabled in one place.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since `start`.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds, saturated to `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.0.elapsed();
        d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// The current instant, for call sites that need a raw anchor (e.g.
/// paced replay). Prefer [`Stopwatch`] for durations.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 2_000_000);
    }
}
