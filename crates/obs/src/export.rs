//! Snapshot exporters: JSON and Prometheus text format.
//!
//! JSON is hand-rendered (the metric set is small and flat) so the
//! output stays a single compact document that pipes cleanly into
//! external validators. Prometheus output follows the text exposition
//! format: `# TYPE` lines, labels in `{}`, histograms as cumulative
//! `_bucket{le=...}` series plus `_sum`/`_count`.

use std::fmt::Write as _;

use crate::hist::HistSnapshot;
use crate::registry::{Metric, MetricKind, MetricValue, Snapshot};

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_metric(out: &mut String, m: &Metric) {
    out.push_str("{\"metric\":");
    push_json_str(out, m.name);
    out.push_str(",\"label\":");
    push_json_str(out, &m.label);
    let _ = write!(out, ",\"kind\":\"{}\"", m.kind.as_str());
    match &m.value {
        MetricValue::Counter(v) => {
            let _ = write!(out, ",\"value\":{v}");
        }
        MetricValue::Gauge(v) => {
            out.push_str(",\"value\":");
            push_json_f64(out, *v);
        }
        MetricValue::Histogram(h) => {
            let _ = write!(out, ",\"count\":{},\"sum\":{}", h.count, h.sum);
            out.push_str(",\"mean\":");
            push_json_f64(out, h.mean());
            let _ = write!(out, ",\"p50\":{},\"p99\":{}", h.quantile(0.5), h.quantile(0.99));
        }
    }
    out.push('}');
}

/// Render one snapshot as a single-line JSON object:
/// `{"seq":N,"metrics":[...]}`.
pub fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(64 * snap.metrics.len() + 32);
    let _ = write!(out, "{{\"seq\":{},\"metrics\":[", snap.seq);
    for (i, m) in snap.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_metric(&mut out, m);
    }
    out.push_str("]}");
    out
}

/// Render a run's snapshot series as one JSON document:
/// `{"snapshots":[...]}` — what `sso run --metrics` writes.
pub fn snapshots_to_json(snaps: &[Snapshot]) -> String {
    let mut out = String::from("{\"snapshots\":[");
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&snapshot_to_json(s));
    }
    out.push_str("]}\n");
    out
}

fn prom_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

fn prom_labels(label: &str, extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if !label.is_empty() {
        // Labels are "key=value"; fall back to instance="..." otherwise.
        match label.split_once('=') {
            Some((k, v)) => parts.push(format!("{}=\"{}\"", prom_name(k), v)),
            None => parts.push(format!("instance=\"{label}\"")),
        }
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prom_histogram(out: &mut String, name: &str, label: &str, h: &HistSnapshot) {
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = HistSnapshot::bucket_bound(i).to_string();
        let _ = writeln!(out, "{name}_bucket{} {cum}", prom_labels(label, Some(("le", le))));
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        prom_labels(label, Some(("le", "+Inf".into()))),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", prom_labels(label, None), h.sum);
    let _ = writeln!(out, "{name}_count{} {}", prom_labels(label, None), h.count);
}

/// `# HELP` text for the well-known metric families; scrapers surface
/// it next to the series, so unknown names still get a truthful line.
fn prom_help(name: &str) -> &'static str {
    match name {
        "rt.tuples" => "Tuples processed by the shard worker",
        "rt.windows" => "Windows closed by the shard worker",
        "rt.stalls" => "Full-ring waits the router observed pushing to this shard",
        "rt.dropped" => "Tuples dropped at a full shard ring (drop-newest backpressure)",
        "rt.shed_tuples" => "Tuples shed below the backpressure threshold at a full ring",
        "rt.ring_depth" => {
            "Batches resident in the shard ring (sampled at push, including wait entry)"
        }
        "rt.quarantines" => "Worker panics caught and quarantined",
        "rt.coverage" => "Run-level output coverage (1.0 = no fault degraded the output)",
        "op.tuples" => "Tuples offered to the sampling operator",
        "op.admitted" => "Tuples admitted past the sampling predicate",
        "op.windows" => "Windows closed by the sampling operator",
        "op.output_rows" => "Rows emitted at window close",
        "op.groups" => "Live groups in the operator table",
        "op.threshold_z" => "Current sampling threshold",
        "op.process_ns" => "Tuple-phase latency (sampled 1 in 64)",
        "op.window_close_ns" => "Window-close flush latency",
        "op.finalize_ns" => "End-of-stream force-close latency",
        "low.busy_ns" => "Low-level node busy time on the router thread",
        "prof.stage_ns" => "Causal-trace stage duration total (label stage=NAME)",
        "prof.stage_events" => "Causal-trace events observed per stage",
        "prof.window_ns" => "End-to-end window latency: first Process stamp to merged Emit",
        "prof.dropped_events" => "Trace events lost to lane ring wrap-around",
        n if n.starts_with("prof.stage.") => "Causal-trace per-stage duration distribution",
        n if n.starts_with("store.") => "Durable-store metric (checkpoints, WAL, spill pager)",
        _ => "stream-sampler metric",
    }
}

/// Render one snapshot in the Prometheus text exposition format.
pub fn snapshot_to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for m in &snap.metrics {
        let name = prom_name(m.name);
        if m.name != last_name {
            let ty = match m.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", prom_help(m.name));
            let _ = writeln!(out, "# TYPE {name} {ty}");
            last_name = m.name;
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name}{} {v}", prom_labels(&m.label, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{} {v}", prom_labels(&m.label, None));
            }
            MetricValue::Histogram(h) => prom_histogram(&mut out, &name, &m.label, h),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_labeled("rt.tuples", "shard=0").add(100);
        r.counter_labeled("rt.tuples", "shard=1").add(50);
        r.gauge("op.threshold_z").set(42.25);
        let h = r.histogram("op.process_ns");
        h.record(1000);
        h.record(3000);
        r
    }

    #[test]
    fn json_is_well_formed() {
        let r = sample_registry();
        let json = snapshot_to_json(&r.snapshot());
        assert!(json.starts_with("{\"seq\":0,\"metrics\":["));
        assert!(json.contains("\"metric\":\"rt.tuples\",\"label\":\"shard=1\""));
        assert!(json.contains("\"value\":42.25"));
        assert!(json.contains("\"count\":2,\"sum\":4000"));
        // Balanced braces/brackets as a cheap structural check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn snapshots_document_wraps_series() {
        let r = sample_registry();
        let doc = snapshots_to_json(&[r.snapshot(), r.snapshot()]);
        assert!(doc.starts_with("{\"snapshots\":["));
        assert!(doc.contains("\"seq\":1"));
        assert!(doc.ends_with("]}\n"));
    }

    #[test]
    fn prometheus_has_types_and_hist_series() {
        let r = sample_registry();
        let text = snapshot_to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE rt_tuples counter"));
        assert!(text.contains("rt_tuples{shard=\"0\"} 100"));
        assert!(text.contains("# TYPE op_threshold_z gauge"));
        assert!(text.contains("op_process_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("op_process_ns_sum 4000"));
        assert!(text.contains("op_process_ns_count 2"));
        // TYPE line appears once per metric name even with two cells.
        assert_eq!(text.matches("# TYPE rt_tuples").count(), 1);
    }

    #[test]
    fn prometheus_help_precedes_every_type_line() {
        let r = sample_registry();
        r.counter("made.up_name").inc();
        let text = snapshot_to_prometheus(&r.snapshot());
        assert!(text.contains("# HELP rt_tuples Tuples processed by the shard worker"));
        assert_eq!(text.matches("# HELP rt_tuples").count(), 1);
        // Unknown names still get a truthful generic HELP line.
        assert!(text.contains("# HELP made_up_name stream-sampler metric"));
        // The exposition-format pairing: each TYPE directly follows its
        // HELP for the same metric name.
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                let prev = lines[i - 1];
                assert!(
                    prev.starts_with(&format!("# HELP {name} ")),
                    "TYPE for {name} not preceded by its HELP: {prev}"
                );
            }
        }
    }
}
