//! # sso-netgen
//!
//! Synthetic IP packet feeds standing in for the paper's two live network
//! taps (§7). The paper evaluated on:
//!
//! 1. a **research-center link**: 5,000–15,000 packets/s, *highly
//!    variable* — used for the accuracy experiments (Figures 2–4) exactly
//!    because sharp inter-window load swings expose estimation problems;
//! 2. a **data-center tap**: ~100,000 packets/s (~400 Mbit/s), highly
//!    aggregated and therefore *stable* — used for the CPU-overhead
//!    experiments (Figures 5–6) because consistent load gives consistent
//!    measurements.
//!
//! [`research_feed`] and [`datacenter_feed`] reproduce those two traffic
//! *shapes* deterministically from a seed:
//!
//! * flow-structured traffic (5-tuples) with heavy-tailed flow lengths
//!   (Pareto), so per-packet weights have the elephant/mice mix
//!   subset-sum sampling is designed for;
//! * Zipf-like destination popularity, so heavy-hitter queries have
//!   genuine heavy hitters;
//! * the research feed's per-second rate follows a log-AR(1) process with
//!   occasional deep lulls, producing the 10–100× inter-window volume
//!   swings that trigger the paper's non-relaxed under-sampling pathology;
//! * the data-center feed holds 100k pkt/s within a ±2% jitter band.
//!
//! [`ddos_feed`] adds the concluding section's stress scenario: a storm
//! of tiny single-packet flows that explodes the group table of a naive
//! flow-aggregation query.

pub mod feed;
pub mod flow;
pub mod profile;
pub mod rate;
pub mod trace;

pub use feed::{burst_feed, datacenter_feed, ddos_feed, research_feed, FeedConfig, TraceGenerator};
pub use flow::{Flow, FlowProfile};
pub use profile::{feed_profile, ColumnProfile, FeedProfile, FEED_PROFILES};
pub use rate::{BurstRate, DatacenterRate, DdosRate, RateProcess, ResearchRate};
pub use trace::{read_trace, write_trace, TraceError};
