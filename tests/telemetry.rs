//! Integration tests for the telemetry subsystem: the under-sampling
//! detector replaying the paper's bursty-load pathology, and the
//! self-monitoring meta-stream (a sampling query over the operator's
//! own telemetry tuples).

use stream_sampler::obs::{snapshot_tuples, Registry, Snapshot};
use stream_sampler::operator::libs::subset_sum::SubsetSumOpConfig;
use stream_sampler::operator::{queries, OperatorMetrics};
use stream_sampler::prelude::*;

/// Run the paper's dynamic subset-sum query over the burst feed with
/// the given relaxation factor, windows aligned to the burst
/// half-period, and return (undersampled windows fired, snapshots).
fn run_burst(relax_factor: f64) -> (u64, Vec<Snapshot>) {
    let pkts = stream_sampler::netgen::burst_feed(11).take_seconds(60);
    let cfg = SubsetSumOpConfig { target: 500, initial_z: 1.0, relax_factor, ..Default::default() };
    let spec = queries::subset_sum_query(10, cfg, false).unwrap();
    let mut op = SamplingOperator::new(spec).unwrap();
    let registry = Registry::new();
    op.set_metrics(OperatorMetrics::register(&registry, ""));
    let mut snapshots = Vec::new();
    for p in &pkts {
        if op.process(&p.to_tuple()).unwrap().is_some() {
            snapshots.push(registry.snapshot());
        }
    }
    op.finish().unwrap();
    snapshots.push(registry.snapshot());
    let fired = snapshots.last().unwrap().value("op.undersampled_windows") as u64;
    (fired, snapshots)
}

/// §7.1: a threshold carried strictly (`f = 1`) out of a busy window is
/// ~50× too high for the quiet window that follows, so the quiet
/// window's achieved sample collapses and the detector fires; the
/// relaxed `f = 10` carry-over recovers within the window and stays
/// quiet.
#[test]
fn undersampling_detector_fires_for_strict_carry_over_only() {
    let (strict_fired, _) = run_burst(1.0);
    let (relaxed_fired, _) = run_burst(10.0);
    assert!(
        strict_fired >= 1,
        "strict carry-over should under-sample at least one quiet window, fired {strict_fired}"
    );
    assert_eq!(relaxed_fired, 0, "relaxed f=10 carry-over should keep every window sampled");
}

/// The detector's registry outputs carry the paper's diagnostic signals:
/// the threshold trajectory z(t) and achieved-vs-target sample sizes.
#[test]
fn telemetry_snapshots_expose_threshold_trajectory() {
    let (_, snapshots) = run_burst(1.0);
    assert!(snapshots.len() >= 4, "one snapshot per closed window plus final");
    let thresholds: Vec<f64> = snapshots.iter().map(|s| s.value("op.threshold_z")).collect();
    assert!(
        thresholds.iter().any(|&z| z > 1.0),
        "busy windows must push the threshold up: {thresholds:?}"
    );
    let last = snapshots.last().unwrap();
    assert!(last.value("op.sample_target") > 0.0);
    assert!(last.value("op.windows") >= 5.0);
    assert!(last.value("op.tuples") > 100_000.0, "burst feed offers >100k tuples");
}

/// The on-theme acceptance path: snapshots rendered as METRICS tuples
/// are fed back through a *sampling operator* — the DSMS querying its
/// own telemetry, as Gigascope monitored Gigascope.
#[test]
fn meta_stream_query_runs_end_to_end() {
    let (_, snapshots) = run_burst(10.0);
    let tuples: Vec<Tuple> = snapshots.iter().flat_map(snapshot_tuples).collect();
    assert!(!tuples.is_empty());

    let mut meta = compile(
        "SELECT sb, metric, sum(value), count(*) FROM METRICS \
         GROUP BY seq/2 as sb, metric",
        &metrics_schema(),
        &PlannerConfig::standard(),
    )
    .unwrap();
    let windows = meta.run(tuples.iter()).unwrap();
    assert!(!windows.is_empty(), "meta query must close at least one window");

    // Every snapshot carries the same metric set, so each meta window
    // groups by metric name; the op.tuples series must appear and its
    // per-window sums must be positive and non-decreasing over time
    // (counters are cumulative).
    let mut tuple_sums = Vec::new();
    for w in &windows {
        for row in &w.rows {
            if row.get(1).as_str() == Ok("op.tuples") {
                tuple_sums.push(row.get(2).as_f64().unwrap());
            }
        }
    }
    assert!(!tuple_sums.is_empty(), "op.tuples series missing from meta output");
    assert!(tuple_sums.windows(2).all(|p| p[1] >= p[0]), "cumulative counter: {tuple_sums:?}");
}

/// Satellite of the fault-tolerance PR: per-shard runtime health —
/// drops, stalls, quarantines, coverage — flows through the same
/// METRICS meta-stream, labeled `shard=N`, so a meta query can watch
/// shard failures the way it watches threshold trajectories.
#[test]
fn per_shard_fault_accounting_reaches_the_metrics_stream() {
    use stream_sampler::operator::{queries, shard_plan};
    use stream_sampler::runtime::{run_sharded, RuntimeConfig};

    let registry = Registry::new();
    let spec = queries::total_sum_query(1);
    let plan = shard_plan(&spec).unwrap();
    // One injected panic: shard 2 quarantines one window.
    let mut fault = stream_sampler::faults::FaultPlan::empty(3);
    fault.events.push(stream_sampler::faults::FaultEvent::WorkerPanic { shard: 2, at_tuple: 500 });
    let cfg =
        RuntimeConfig::new(4).with_registry(registry.clone()).with_faults(fault.into_shared());
    let pkts = stream_sampler::netgen::research_feed(11).take_seconds(3);
    let tuples: Vec<Tuple> = pkts.iter().map(|p| p.to_tuple()).collect();
    let report = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap();
    assert!(report.degraded());

    let snap = registry.snapshot();
    // Every shard publishes its own labeled series.
    for shard in 0..4 {
        let label = format!("shard={shard}");
        for name in ["rt.tuples", "rt.stalls", "rt.dropped", "rt.quarantines", "rt.uncovered"] {
            assert!(
                snap.metrics.iter().any(|m| m.name == name && m.label == label),
                "missing {name}{{{label}}} in snapshot"
            );
        }
    }
    // The quarantine landed on the injected shard, and the registry's
    // labeled cells agree with the report exactly.
    let quarantined: f64 = snap
        .metrics
        .iter()
        .filter(|m| m.name == "rt.quarantines" && m.label == "shard=2")
        .map(|m| m.scalar())
        .sum();
    assert_eq!(quarantined, 1.0);
    let cov = snap.metrics.iter().find(|m| m.name == "rt.coverage").expect("coverage gauge");
    assert!((cov.scalar() - report.coverage).abs() < 1e-12);

    // And the meta-stream carries it: group the snapshot's tuples by
    // (metric, label) and find the per-shard uncovered series.
    let tuples: Vec<Tuple> = snapshot_tuples(&snap);
    let mut meta = compile(
        "SELECT sb, metric, label, sum(value) FROM METRICS \
         GROUP BY seq/1 as sb, metric, label",
        &metrics_schema(),
        &PlannerConfig::standard(),
    )
    .unwrap();
    let windows = meta.run(tuples.iter()).unwrap();
    let mut uncovered_rows = 0;
    for w in &windows {
        for row in &w.rows {
            if row.get(1).as_str() == Ok("rt.uncovered")
                && row.get(2).as_str().map(|l| l.starts_with("shard=")).unwrap_or(false)
            {
                uncovered_rows += 1;
            }
        }
    }
    assert_eq!(uncovered_rows, 4, "one labeled uncovered series per shard");
}
