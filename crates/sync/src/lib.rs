//! # sso-sync
//!
//! The concurrency facade for the workspace's hand-rolled lock-free
//! structures: the sharded-handle metrics registry in `sso-obs`, the
//! SPSC shard rings and the window-aligned merge barrier in
//! `sso-runtime`. Hot paths use [`SyncU64`], [`SyncUsize`],
//! [`SyncBool`], [`SyncCell`], and [`SyncMutex`] instead of raw
//! `std::sync::atomic` / `std::sync::Mutex` types (lint-enforced via
//! per-crate `clippy.toml` deny-lists).
//!
//! In a normal build every facade call is an `#[inline]` passthrough to
//! the `std` primitive — zero cost, identical codegen. With the `model`
//! feature enabled, the same types additionally check a thread-local:
//! inside a [`model::Model::check`] run they become *visible operations*
//! of a deterministic scheduler that
//!
//! - enumerates thread interleavings up to bounded depth, pruning
//!   equivalent schedules with dynamic partial-order reduction (only
//!   reorderings of *dependent* operations — same location, at least
//!   one write — spawn new schedules), and
//! - tracks a vector clock per thread and per location, reporting
//!   happens-before data races on [`SyncCell`] accesses, lost updates
//!   (a plain store clobbering a value the storing thread never
//!   observed), and deadlocks — each with a replayable schedule trace.
//!
//! Outside a model run the instrumented types take one thread-local
//! branch and then behave exactly like the plain build, so a test
//! binary that links the `model` feature can still run ordinary
//! multi-threaded tests.
//!
//! The memory-model treatment is ThreadSanitizer-style: values are
//! sequentially consistent, but *synchronization* follows the declared
//! orderings — an `Acquire` load only joins clocks published by a
//! `Release` (or stronger) store, a `Relaxed` store publishes nothing.
//! A missing `Release`/`Acquire` pair therefore surfaces as a data race
//! on the non-atomic data it was supposed to order, which is exactly
//! the bug class the orderings exist to prevent. Relaxed *value*
//! reordering (store buffering litmus shapes) is not modeled.

mod facade;

pub use facade::{fence, SyncBool, SyncCell, SyncMutex, SyncMutexGuard, SyncU64, SyncUsize};
pub use std::sync::atomic::Ordering;

pub mod hint;
pub mod thread;

#[cfg(feature = "model")]
pub mod model;
