//! Long-run stability: millions of tuples through the operator stack
//! with bounded memory and sane throughput.

use std::time::Instant;

use stream_sampler::operator::libs::subset_sum::SubsetSumOpConfig;
use stream_sampler::prelude::*;

#[test]
fn subset_sum_survives_minutes_of_datacenter_load() {
    // ~2M packets, 20 one-second windows: the group table must stay at
    // γ·N, window stats must be consistent, and throughput must exceed
    // the paper's 100k pkt/s line rate with margin.
    let packets = datacenter_feed(501).take_seconds(20);
    let n = packets.len();
    assert!(n > 1_900_000, "feed should be ~2M packets: {n}");
    let cfg = SubsetSumOpConfig { target: 1000, initial_z: 100.0, ..Default::default() };
    let mut op = SamplingOperator::new(queries::subset_sum_query(1, cfg, false).unwrap()).unwrap();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();

    let t0 = Instant::now();
    let mut windows = 0;
    let mut peak_groups = 0;
    for (i, t) in tuples.iter().enumerate() {
        if op.process(t).unwrap().is_some() {
            windows += 1;
        }
        if i % 4096 == 0 {
            peak_groups = peak_groups.max(op.group_count());
        }
    }
    op.finish().unwrap();
    let elapsed = t0.elapsed();
    let rate = n as f64 / elapsed.as_secs_f64();

    assert_eq!(windows, 19, "one window boundary per second");
    assert!(peak_groups <= 2001, "group table bounded by gamma*N: {peak_groups}");
    assert!(
        rate > 200_000.0,
        "throughput {rate:.0} tuples/s should clear the paper's 100k pkt/s line rate"
    );
    let stats = op.stats();
    assert_eq!(stats.tuples, n as u64);
    assert!(stats.admitted < stats.tuples / 10, "admission is the rare path");
}

#[test]
fn window_gaps_and_idle_periods_are_handled() {
    // Packets only in seconds 0, 7, and 30: window ids jump. Each burst
    // becomes its own window; the operator must not emit phantom
    // windows or leak groups.
    let mut packets = Vec::new();
    for &sec in &[0u64, 7, 30] {
        for i in 0..1000u64 {
            packets.push(Packet {
                uts: sec * 1_000_000_000 + i * 1_000_000,
                src_ip: i as u32 % 10,
                dest_ip: 1,
                src_port: 1,
                dest_port: 2,
                proto: stream_sampler::types::Protocol::Udp,
                len: 100,
            });
        }
    }
    let mut op = SamplingOperator::new(queries::total_sum_query(1)).unwrap();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let outs = op.run(tuples.iter()).unwrap();
    assert_eq!(outs.len(), 3);
    let tbs: Vec<u64> = outs.iter().map(|w| w.window.get(0).as_u64().unwrap()).collect();
    assert_eq!(tbs, vec![0, 7, 30]);
    for w in &outs {
        assert_eq!(w.rows.len(), 1);
        assert_eq!(w.rows[0].get(1), &Value::U64(100_000));
    }
}

#[test]
fn ddos_storm_does_not_blow_up_the_sampled_flow_query() {
    // 30s with a 10s attack of tiny spoofed flows; the integrated
    // sampled-flow query's live group count stays bounded throughout.
    let packets = ddos_feed(502, 10, 20).take_seconds(30);
    let query = "
        SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
        FROM PKT
        WHERE ssample(len, 500) = TRUE
        GROUP BY time/5 as tb, srcIP, destIP, srcPort, destPort, proto
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let mut peak = 0;
    for p in &packets {
        op.process(&p.to_tuple()).unwrap();
        peak = peak.max(op.group_count());
    }
    op.finish().unwrap();
    assert!(peak <= 1001, "sampled flow table bounded through the attack: {peak}");
}

#[test]
fn operator_is_reusable_across_hundreds_of_windows() {
    // 600 tiny windows: carry-over, table resets, and stats must stay
    // consistent for a long-lived operator.
    let mut packets = Vec::new();
    for sec in 0..600u64 {
        for i in 0..50u64 {
            packets.push(Packet {
                uts: sec * 1_000_000_000 + i * 10_000_000,
                src_ip: (i % 5) as u32,
                dest_ip: 1,
                src_port: 1,
                dest_port: 2,
                proto: stream_sampler::types::Protocol::Tcp,
                len: 500,
            });
        }
    }
    let cfg = SubsetSumOpConfig { target: 10, initial_z: 1.0, ..Default::default() };
    let mut op = SamplingOperator::new(queries::subset_sum_query(1, cfg, false).unwrap()).unwrap();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let outs = op.run(tuples.iter()).unwrap();
    assert_eq!(outs.len(), 600);
    for w in &outs {
        let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
        let rel = (est - 25_000.0).abs() / 25_000.0;
        assert!(rel < 0.4, "window {}: est {est}", w.window);
    }
    assert_eq!(op.stats().windows, 600);
    assert_eq!(op.stats().tuples, 30_000);
}
