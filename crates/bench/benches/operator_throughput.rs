//! Per-tuple cost of each paper query shape on the sampling operator.
//!
//! The paper's line-rate claim rests on the operator's per-tuple work
//! being small; this bench measures tuples/second for plain
//! aggregation, dynamic subset-sum (relaxed and non-relaxed), heavy
//! hitters, min-hash, and reservoir sampling, all over the same
//! data-center-shaped tuple stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sso_core::libs::reservoir::ReservoirOpConfig;
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, OperatorSpec, SamplingOperator};
use sso_netgen::datacenter_feed;
use sso_types::Tuple;

type SpecMaker = Box<dyn Fn() -> OperatorSpec>;

fn tuple_stream(seconds: u64) -> Vec<Tuple> {
    datacenter_feed(77).take_seconds(seconds).iter().map(|p| p.to_tuple()).collect()
}

fn run(spec: OperatorSpec, tuples: &[Tuple]) {
    let mut op = SamplingOperator::new(spec).expect("valid spec");
    for t in tuples {
        op.process(std::hint::black_box(t)).expect("process");
    }
    op.finish().expect("finish");
}

fn bench_queries(c: &mut Criterion) {
    let tuples = tuple_stream(1);
    let n = tuples.len() as u64;
    let mut group = c.benchmark_group("operator_throughput");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    let ss = SubsetSumOpConfig { target: 1000, initial_z: 50_000.0, ..Default::default() };
    let cases: Vec<(&str, SpecMaker)> = vec![
        ("aggregation", Box::new(|| queries::total_sum_query(20))),
        ("subset_sum_relaxed", Box::new(move || queries::subset_sum_query(20, ss, false).unwrap())),
        (
            "subset_sum_nonrelaxed",
            Box::new(move || queries::subset_sum_query(20, ss.non_relaxed(), false).unwrap()),
        ),
        ("basic_subset_sum", Box::new(|| queries::basic_subset_sum_query(20, 50_000.0).unwrap())),
        ("heavy_hitters", Box::new(|| queries::heavy_hitters_query(20, 1000, None).unwrap())),
        ("minhash", Box::new(|| queries::minhash_query(20, 100).unwrap())),
        (
            "reservoir",
            Box::new(|| {
                queries::reservoir_query(20, ReservoirOpConfig { n: 1000, ..Default::default() })
                    .unwrap()
            }),
        ),
    ];
    for (name, make) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| run(make(), &tuples));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
