//! Expressions and their evaluation contexts.
//!
//! The operator's clauses (WHERE, GROUP BY, HAVING, CLEANING WHEN,
//! CLEANING BY, SELECT) are all expression trees over a shared [`Expr`]
//! type, but each clause runs with a different [`EvalCtx`]: the WHERE
//! clause sees the input tuple and the supergroup's stateful-function
//! states; CLEANING BY and HAVING see a group's key and aggregates; and
//! so on. Referencing context a clause does not provide is an
//! [`OpError::MissingContext`].

use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::sync::Arc;

use sso_types::{Tuple, Value};

use crate::agg::AggState;
use crate::error::OpError;
use crate::scalar::ScalarFn;
use crate::sfun::SfunFn;
use crate::superagg::SuperAggState;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A compiled expression. Column, aggregate, superaggregate, and stateful
/// function references are resolved to slot indices by the planner
/// (`sso-query`) or by the programmatic builders in [`crate::queries`].
#[derive(Clone)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// Input-tuple column by position (tuple-phase clauses only).
    Column(usize),
    /// Group-by variable by position: during the tuple phase, the
    /// computed group-by values; during the group phase, the group key.
    GroupVar(usize),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Group aggregate slot (group-phase clauses only).
    Aggregate(usize),
    /// Superaggregate slot of the current supergroup.
    SuperAgg(usize),
    /// Stateful function call: library slot + function + argument
    /// expressions.
    Sfun {
        /// Index of the owning library in the operator spec.
        lib: usize,
        /// Function name (for error messages).
        name: &'static str,
        /// The function implementation.
        fun: Arc<SfunFn>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Pure scalar function call.
    Scalar {
        /// Function name (for error messages).
        name: &'static str,
        /// The function implementation.
        fun: Arc<ScalarFn>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl std::fmt::Debug for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "Literal({v})"),
            Expr::Column(i) => write!(f, "Column({i})"),
            Expr::GroupVar(i) => write!(f, "GroupVar({i})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs:?} {op:?} {rhs:?})"),
            Expr::Not(e) => write!(f, "Not({e:?})"),
            Expr::Aggregate(i) => write!(f, "Aggregate({i})"),
            Expr::SuperAgg(i) => write!(f, "SuperAgg({i})"),
            Expr::Sfun { name, args, .. } => write!(f, "Sfun({name}, {args:?})"),
            Expr::Scalar { name, args, .. } => write!(f, "Scalar({name}, {args:?})"),
        }
    }
}

/// The evaluation context of one clause invocation.
///
/// Fields are `Option`s: a clause provides only the context that exists
/// at its point in the evaluation loop (§6.4).
pub struct EvalCtx<'a> {
    /// Which clause is being evaluated (for error messages).
    pub clause: &'static str,
    /// The input tuple (tuple-phase clauses: WHERE, GROUP BY, CLEANING
    /// WHEN, aggregate updates).
    pub tuple: Option<&'a Tuple>,
    /// Group-by variable values: the computed per-tuple values during the
    /// tuple phase, or the group key during the group phase.
    pub group_vars: Option<&'a [Value]>,
    /// The current group's aggregate states (group phase).
    pub aggs: Option<&'a [AggState]>,
    /// The current supergroup's superaggregates.
    pub superaggs: Option<&'a [SuperAggState]>,
    /// The current supergroup's stateful-function states, one per
    /// library.
    pub sfun_states: Option<&'a mut [Box<dyn Any + Send>]>,
}

impl<'a> EvalCtx<'a> {
    /// A context with nothing available (useful for constant folding and
    /// tests).
    pub fn empty(clause: &'static str) -> Self {
        EvalCtx {
            clause,
            tuple: None,
            group_vars: None,
            aggs: None,
            superaggs: None,
            sfun_states: None,
        }
    }
}

impl Expr {
    /// Evaluate against a context.
    pub fn eval(&self, ctx: &mut EvalCtx<'_>) -> Result<Value, OpError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(i) => {
                let t = ctx
                    .tuple
                    .ok_or(OpError::MissingContext { what: "input column", clause: ctx.clause })?;
                Ok(t.get(*i).clone())
            }
            Expr::GroupVar(i) => {
                let g = ctx.group_vars.ok_or(OpError::MissingContext {
                    what: "group-by variable",
                    clause: ctx.clause,
                })?;
                Ok(g.get(*i).cloned().unwrap_or(Value::Null))
            }
            Expr::Aggregate(i) => {
                let aggs = ctx
                    .aggs
                    .ok_or(OpError::MissingContext { what: "aggregate", clause: ctx.clause })?;
                Ok(aggs
                    .get(*i)
                    .map(|a| a.value())
                    .ok_or(OpError::InvalidSpec(format!("aggregate slot {i} out of range")))?)
            }
            Expr::SuperAgg(i) => {
                let sa = ctx.superaggs.ok_or(OpError::MissingContext {
                    what: "superaggregate",
                    clause: ctx.clause,
                })?;
                Ok(sa
                    .get(*i)
                    .map(|s| s.value())
                    .ok_or(OpError::InvalidSpec(format!("superaggregate slot {i} out of range")))?)
            }
            Expr::Not(e) => {
                let v = e.eval(ctx)?;
                Ok(Value::Bool(!v.truthy()))
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        if !lhs.eval(ctx)?.truthy() {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(rhs.eval(ctx)?.truthy()));
                    }
                    BinOp::Or => {
                        if lhs.eval(ctx)?.truthy() {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(rhs.eval(ctx)?.truthy()));
                    }
                    _ => {}
                }
                let a = lhs.eval(ctx)?;
                let b = rhs.eval(ctx)?;
                let v = match op {
                    BinOp::Add => a.add(&b)?,
                    BinOp::Sub => a.sub(&b)?,
                    BinOp::Mul => a.mul(&b)?,
                    BinOp::Div => a.div(&b)?,
                    BinOp::Rem => a.rem(&b)?,
                    BinOp::Eq => Value::Bool(a.eq_value(&b)?),
                    BinOp::Ne => Value::Bool(!a.eq_value(&b)?),
                    BinOp::Lt => Value::Bool(a.compare(&b)? == CmpOrdering::Less),
                    BinOp::Le => Value::Bool(a.compare(&b)? != CmpOrdering::Greater),
                    BinOp::Gt => Value::Bool(a.compare(&b)? == CmpOrdering::Greater),
                    BinOp::Ge => Value::Bool(a.compare(&b)? != CmpOrdering::Less),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(v)
            }
            Expr::Sfun { lib, name, fun, args } => {
                // SFUN calls sit in WHERE and run once per input tuple;
                // argument lists are tiny, so evaluate them into a stack
                // buffer to keep the per-tuple path allocation-free.
                let mut stack: [Value; 4] = std::array::from_fn(|_| Value::Null);
                let mut heap;
                let argv: &[Value] = if args.len() <= stack.len() {
                    for (slot, a) in stack.iter_mut().zip(args) {
                        *slot = a.eval(ctx)?;
                    }
                    &stack[..args.len()]
                } else {
                    heap = Vec::with_capacity(args.len());
                    for a in args {
                        heap.push(a.eval(ctx)?);
                    }
                    &heap
                };
                let states = ctx.sfun_states.as_mut().ok_or(OpError::MissingContext {
                    what: "stateful function state",
                    clause: ctx.clause,
                })?;
                let state = states.get_mut(*lib).ok_or_else(|| {
                    OpError::InvalidSpec(format!("sfun library slot {lib} out of range"))
                })?;
                fun(state.as_mut(), argv)
                    .map_err(|reason| OpError::BadSfunCall { function: name.to_string(), reason })
            }
            Expr::Scalar { name, fun, args } => {
                let mut stack: [Value; 4] = std::array::from_fn(|_| Value::Null);
                let mut heap;
                let argv: &[Value] = if args.len() <= stack.len() {
                    for (slot, a) in stack.iter_mut().zip(args) {
                        *slot = a.eval(ctx)?;
                    }
                    &stack[..args.len()]
                } else {
                    heap = Vec::with_capacity(args.len());
                    for a in args {
                        heap.push(a.eval(ctx)?);
                    }
                    &heap
                };
                fun(argv)
                    .map_err(|reason| OpError::BadScalarCall { function: name.to_string(), reason })
            }
        }
    }

    /// Evaluate as a predicate: any error is propagated, otherwise the
    /// value's truthiness.
    pub fn eval_bool(&self, ctx: &mut EvalCtx<'_>) -> Result<bool, OpError> {
        Ok(self.eval(ctx)?.truthy())
    }

    // -- construction helpers (used by tests, examples, and the planner) --

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `lhs op rhs` helper.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, other)
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, other)
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_types::Tuple;

    fn tuple_ctx(t: &Tuple) -> EvalCtx<'_> {
        EvalCtx { tuple: Some(t), ..EvalCtx::empty("TEST") }
    }

    #[test]
    fn literals_and_arithmetic() {
        let e = Expr::lit(2u64).add(Expr::lit(3u64)).eval(&mut EvalCtx::empty("T")).unwrap();
        assert_eq!(e, Value::U64(5));
        let e = Expr::lit(10u64).div(Expr::lit(4u64)).eval(&mut EvalCtx::empty("T")).unwrap();
        assert_eq!(e, Value::U64(2));
    }

    #[test]
    fn column_access_needs_tuple() {
        let t = Tuple::new(vec![Value::U64(7), Value::str("x")]);
        let mut ctx = tuple_ctx(&t);
        assert_eq!(Expr::Column(0).eval(&mut ctx).unwrap(), Value::U64(7));
        let err = Expr::Column(0).eval(&mut EvalCtx::empty("HAVING")).unwrap_err();
        assert!(matches!(err, OpError::MissingContext { what: "input column", clause: "HAVING" }));
    }

    #[test]
    fn group_vars_and_aggregates_need_context() {
        assert!(Expr::GroupVar(0).eval(&mut EvalCtx::empty("WHERE")).is_err());
        assert!(Expr::Aggregate(0).eval(&mut EvalCtx::empty("WHERE")).is_err());
        assert!(Expr::SuperAgg(0).eval(&mut EvalCtx::empty("GROUP BY")).is_err());
    }

    #[test]
    fn comparisons() {
        let mut ctx = EvalCtx::empty("T");
        assert_eq!(Expr::lit(1u64).lt(Expr::lit(2u64)).eval(&mut ctx).unwrap(), Value::Bool(true));
        assert_eq!(Expr::lit(2u64).le(Expr::lit(2u64)).eval(&mut ctx).unwrap(), Value::Bool(true));
        assert_eq!(Expr::lit(1u64).ge(Expr::lit(2u64)).eval(&mut ctx).unwrap(), Value::Bool(false));
        assert_eq!(
            Expr::lit(1u64).eq(Expr::lit(1i64)).eval(&mut ctx).unwrap(),
            Value::Bool(true),
            "cross-signedness equality"
        );
    }

    #[test]
    fn logical_short_circuit() {
        // The RHS would error (missing tuple), but AND short-circuits.
        let e = Expr::lit(false).and(Expr::Column(0));
        assert_eq!(e.eval(&mut EvalCtx::empty("T")).unwrap(), Value::Bool(false));
        let e = Expr::bin(BinOp::Or, Expr::lit(true), Expr::Column(0));
        assert_eq!(e.eval(&mut EvalCtx::empty("T")).unwrap(), Value::Bool(true));
        // Non-short-circuit path errors.
        let e = Expr::lit(true).and(Expr::Column(0));
        assert!(e.eval(&mut EvalCtx::empty("T")).is_err());
    }

    #[test]
    fn not_negates_truthiness() {
        let mut ctx = EvalCtx::empty("T");
        assert_eq!(Expr::Not(Box::new(Expr::lit(0u64))).eval(&mut ctx).unwrap(), Value::Bool(true));
        assert_eq!(
            Expr::Not(Box::new(Expr::lit(5u64))).eval(&mut ctx).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn eval_bool_uses_truthiness() {
        let mut ctx = EvalCtx::empty("T");
        assert!(Expr::lit(1u64).eval_bool(&mut ctx).unwrap());
        assert!(!Expr::lit(0u64).eval_bool(&mut ctx).unwrap());
        assert!(!Expr::Literal(Value::Null).eval_bool(&mut ctx).unwrap());
    }

    #[test]
    fn division_by_zero_propagates() {
        let e = Expr::lit(1u64).div(Expr::lit(0u64));
        assert!(matches!(
            e.eval(&mut EvalCtx::empty("T")),
            Err(OpError::Type(sso_types::TypeError::DivisionByZero))
        ));
    }

    #[test]
    fn time_bucketing_expression() {
        // time/20 as tb over a tuple with time = 47.
        let t = Tuple::new(vec![Value::U64(47)]);
        let mut ctx = tuple_ctx(&t);
        let tb = Expr::Column(0).div(Expr::lit(20u64)).eval(&mut ctx).unwrap();
        assert_eq!(tb, Value::U64(2));
    }

    #[test]
    fn scalar_call() {
        let umax = crate::scalar::umax();
        let e =
            Expr::Scalar { name: "UMAX", fun: umax, args: vec![Expr::lit(3u64), Expr::lit(9u64)] };
        assert_eq!(e.eval(&mut EvalCtx::empty("T")).unwrap(), Value::U64(9));
    }

    #[test]
    fn debug_formatting_is_informative() {
        let e = Expr::lit(1u64).add(Expr::Column(2));
        assert_eq!(format!("{e:?}"), "(Literal(1) Add Column(2))");
    }
}
