//! Cross-window state carry-over (§6.1): the behaviors Figures 2–4 rest
//! on, exercised through the full operator stack.

use std::collections::HashMap;

use stream_sampler::operator::libs::subset_sum::SubsetSumOpConfig;
use stream_sampler::prelude::*;

/// A two-phase load: busy seconds then quiet seconds, repeated. Every
/// packet is 1000 bytes so volumes are exact.
fn square_wave(windows: u64, window_secs: u64, busy_pps: u64, quiet_pps: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    for w in 0..windows {
        let pps = if w % 2 == 0 { busy_pps } else { quiet_pps };
        for s in 0..window_secs {
            let sec = w * window_secs + s;
            for i in 0..pps {
                out.push(Packet {
                    uts: sec * 1_000_000_000 + i * (1_000_000_000 / pps) + 1,
                    src_ip: (i % 64) as u32,
                    dest_ip: 1000,
                    src_port: 1,
                    dest_port: 2,
                    proto: stream_sampler::types::Protocol::Udp,
                    len: 1000,
                });
            }
        }
    }
    out
}

fn run_subset_sum(
    cfg: SubsetSumOpConfig,
    packets: &[Packet],
    window_secs: u64,
) -> Vec<(u64, f64, usize, u64)> {
    let spec = queries::subset_sum_query(window_secs, cfg, true).unwrap();
    let mut op = SamplingOperator::new(spec).unwrap();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();
    windows
        .iter()
        .map(|w| {
            let tb = w.window.get(0).as_u64().unwrap();
            let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            let cleanings = w.rows.first().map(|r| r.get(4).as_u64().unwrap()).unwrap_or(0);
            (tb, est, w.rows.len(), cleanings)
        })
        .collect()
}

#[test]
fn non_relaxed_undersamples_quiet_windows_relaxed_does_not() {
    // Busy windows: 20k pps * 5s * 1000B = 100 MB. Quiet: 1.5 MB (67x).
    // The non-relaxed threshold carried out of a busy window is ~1 MB,
    // so a quiet window yields ~1 sample and loses the residual.
    let packets = square_wave(8, 5, 20_000, 300);
    let truth_quiet = 300 * 5 * 1000; // bytes per quiet window

    let non_relaxed = run_subset_sum(
        SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() }.non_relaxed(),
        &packets,
        5,
    );
    let relaxed = run_subset_sum(
        SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() },
        &packets,
        5,
    );

    let quiet = |rows: &[(u64, f64, usize, u64)]| -> (f64, f64) {
        let mut est = 0.0;
        let mut n = 0.0;
        for (tb, e, _, _) in rows {
            if tb % 2 == 1 {
                est += e;
                n += 1.0;
            }
        }
        (est, n * truth_quiet as f64)
    };
    let (nr_est, nr_truth) = quiet(&non_relaxed);
    let (rx_est, rx_truth) = quiet(&relaxed);
    let nr_ratio = nr_est / nr_truth;
    let rx_ratio = rx_est / rx_truth;
    assert!(nr_ratio < 0.9, "non-relaxed should under-estimate: ratio {nr_ratio:.3}");
    assert!((0.9..1.1).contains(&rx_ratio), "relaxed should track the truth: ratio {rx_ratio:.3}");

    // Figure 3's shape: non-relaxed collects far fewer than N samples on
    // quiet windows; relaxed stays near N.
    let quiet_counts = |rows: &[(u64, f64, usize, u64)]| -> Vec<usize> {
        rows.iter().filter(|(tb, ..)| tb % 2 == 1 && *tb > 1).map(|(_, _, n, _)| *n).collect()
    };
    for (&nr_n, &rx_n) in quiet_counts(&non_relaxed).iter().zip(&quiet_counts(&relaxed)) {
        assert!(nr_n < 5, "non-relaxed quiet window collected {nr_n}, expected ~1");
        assert!(rx_n >= 2 * nr_n.max(1), "relaxed ({rx_n}) must out-collect non-relaxed ({nr_n})");
    }
}

#[test]
fn relaxed_pays_extra_cleaning_phases_on_steady_load() {
    // Steady load: the paper's Figure 4 (relaxed ~4, non-relaxed ~1
    // after convergence).
    let packets = square_wave(6, 5, 20_000, 20_000); // both phases equal
    let relaxed = run_subset_sum(
        SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() },
        &packets,
        5,
    );
    let non_relaxed = run_subset_sum(
        SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() }.non_relaxed(),
        &packets,
        5,
    );
    // Skip the first (bootstrap) window; compare steady state.
    let steady = |rows: &[(u64, f64, usize, u64)]| -> f64 {
        let tail: Vec<u64> = rows.iter().skip(2).map(|(_, _, _, c)| *c).collect();
        tail.iter().sum::<u64>() as f64 / tail.len() as f64
    };
    let rx = steady(&relaxed);
    let nr = steady(&non_relaxed);
    assert!(rx > nr, "relaxed ({rx:.1}) must clean more than non-relaxed ({nr:.1})");
    assert!(nr <= 2.0, "non-relaxed steady-state cleanings: {nr:.1}");
    assert!((2.0..=12.0).contains(&rx), "relaxed steady-state cleanings: {rx:.1}");
}

#[test]
fn supergroup_state_carries_only_for_matching_keys() {
    // Subset-sum per srcIP supergroup: two sources with very different
    // volumes must converge to different thresholds, carried
    // independently across windows.
    let mut packets = Vec::new();
    for sec in 0..20u64 {
        for i in 0..2000u64 {
            // Source 1 sends 10x the volume of source 2.
            let (src, len) = if i % 11 != 0 { (1u32, 1000u32) } else { (2, 100) };
            packets.push(Packet {
                uts: sec * 1_000_000_000 + i * 500_000,
                src_ip: src,
                dest_ip: 9,
                src_port: 1,
                dest_port: 2,
                proto: stream_sampler::types::Protocol::Udp,
                len,
            });
        }
    }
    let query = "
        SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()), ssthreshold()
        FROM PKT
        WHERE ssample(len, 50) = TRUE
        GROUP BY time/5 as tb, srcIP, destIP, uts
        SUPERGROUP srcIP
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();
    assert_eq!(windows.len(), 4);

    // In the last window, source 1's threshold must exceed source 2's
    // (more volume at the same target N), and per-source estimates must
    // track per-source truth.
    let mut truth: HashMap<(u64, u64), u64> = HashMap::new();
    for p in &packets {
        *truth.entry((p.time() / 5, p.src_ip as u64)).or_default() += p.len as u64;
    }
    let last = windows.last().unwrap();
    let tb = last.window.get(0).as_u64().unwrap();
    let mut z_by_src: HashMap<u64, f64> = HashMap::new();
    let mut est_by_src: HashMap<u64, f64> = HashMap::new();
    for r in &last.rows {
        let src = r.get(1).as_u64().unwrap();
        z_by_src.insert(src, r.get(4).as_f64().unwrap());
        *est_by_src.entry(src).or_default() += r.get(3).as_f64().unwrap();
    }
    assert!(
        z_by_src[&1] > 3.0 * z_by_src[&2],
        "per-supergroup thresholds must differ: z1 {} z2 {}",
        z_by_src[&1],
        z_by_src[&2]
    );
    for src in [1u64, 2] {
        let actual = truth[&(tb, src)] as f64;
        let rel = (est_by_src[&src] - actual).abs() / actual;
        assert!(rel < 0.35, "src {src}: est {} vs {actual} (rel {rel:.3})", est_by_src[&src]);
    }
}

#[test]
fn state_does_not_leak_across_a_gap_of_supergroup_absence() {
    // A supergroup absent for one window does NOT inherit its old state
    // (the old table only holds the immediately previous window, per
    // §6.4). Source 2 appears in windows 0 and 2 only.
    let mut packets = Vec::new();
    for sec in 0..15u64 {
        let w = sec / 5;
        for i in 0..1000u64 {
            let src = if i % 2 == 0 { 1u32 } else { 2 };
            if src == 2 && w == 1 {
                continue;
            }
            packets.push(Packet {
                uts: sec * 1_000_000_000 + i * 1_000_000,
                src_ip: src,
                dest_ip: 9,
                src_port: 1,
                dest_port: 2,
                proto: stream_sampler::types::Protocol::Udp,
                len: 1000,
            });
        }
    }
    let query = "
        SELECT tb, srcIP, destIP, ssthreshold()
        FROM PKT
        WHERE ssample(len, 20) = TRUE
        GROUP BY time/5 as tb, srcIP, destIP, uts
        SUPERGROUP srcIP
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();
    assert_eq!(windows.len(), 3);

    // Window 2: source 2 restarts from the configured initial_z (0 →
    // bootstrap), not from its window-0 threshold. Evidence: its window-2
    // sample count is near the bootstrap pattern (cleanings ran), and
    // processing succeeded at all (no stale-state panic).
    let w2 = &windows[2];
    let src2_rows = w2.rows.iter().filter(|r| r.get(1) == &Value::U64(2)).count();
    assert!(src2_rows > 0, "source 2 must be sampled again in window 2");
}
