//! Declared rate and cardinality envelopes for the built-in feeds.
//!
//! The static audit pass (`sso-analysis`) seeds its abstract domain from
//! these declarations: the peak sustained packet rate bounds rows/window,
//! and per-column cardinalities bound the group-table growth of exact
//! aggregation. Every number here is a *certified envelope*, not a mean:
//! it must dominate anything the corresponding generator can emit, and
//! the tests below re-derive each envelope from actual traces so the
//! declarations cannot drift away from the generators.
//!
//! Cardinalities are `Option<u64>`: `None` declares the column unbounded
//! (practically: per-row unique, like the nanosecond `uts` timestamp the
//! paper uses to make every packet its own group).

/// Declared value-cardinality envelope of one packet column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnProfile {
    /// Schema column name (matches [`sso_types::Packet::schema`]).
    pub name: &'static str,
    /// Upper bound on distinct values the feed can emit over any
    /// horizon, or `None` for unbounded (per-row unique).
    pub cardinality: Option<u64>,
}

/// Declared envelope of one built-in feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedProfile {
    /// Feed name as accepted by the `--feed` CLI flag.
    pub name: &'static str,
    /// Peak sustained packet rate (packets per second). The rate
    /// processes clamp or band-limit their output, so this is a hard
    /// ceiling, not a long-run mean.
    pub peak_rows_per_sec: u64,
    /// Column cardinality envelopes.
    pub columns: &'static [ColumnProfile],
}

impl FeedProfile {
    /// Cardinality envelope of a column, if declared. Unknown columns
    /// return `None`-as-absent (callers must treat them as unbounded).
    pub fn column_cardinality(&self, name: &str) -> Option<Option<u64>> {
        self.columns.iter().find(|c| c.name == name).map(|c| c.cardinality)
    }
}

/// Address-space envelopes shared by the non-spoofed feeds:
/// [`crate::flow::AddressSpace`] draws 4096 client addresses, 512
/// servers (plus the fixed DDoS victim), ephemeral source ports from
/// `1024..65535`, a 7-entry destination-port table, two protocols, and
/// packet lengths in `40..=1400`.
const BASELINE_COLUMNS: &[ColumnProfile] = &[
    ColumnProfile { name: "time", cardinality: None },
    ColumnProfile { name: "uts", cardinality: None },
    ColumnProfile { name: "srcIP", cardinality: Some(4096) },
    ColumnProfile { name: "destIP", cardinality: Some(513) },
    ColumnProfile { name: "srcPort", cardinality: Some(64_511) },
    ColumnProfile { name: "destPort", cardinality: Some(8) },
    ColumnProfile { name: "proto", cardinality: Some(2) },
    ColumnProfile { name: "len", cardinality: Some(1461) },
];

/// The DDoS feed spoofs attack source addresses across the full IPv4
/// space, so `srcIP` is effectively unbounded for certification.
const DDOS_COLUMNS: &[ColumnProfile] = &[
    ColumnProfile { name: "time", cardinality: None },
    ColumnProfile { name: "uts", cardinality: None },
    ColumnProfile { name: "srcIP", cardinality: Some(u32::MAX as u64 + 1) },
    ColumnProfile { name: "destIP", cardinality: Some(513) },
    ColumnProfile { name: "srcPort", cardinality: Some(64_511) },
    ColumnProfile { name: "destPort", cardinality: Some(8) },
    ColumnProfile { name: "proto", cardinality: Some(2) },
    ColumnProfile { name: "len", cardinality: Some(1461) },
];

/// Envelopes for every built-in feed.
///
/// * `research` — `ResearchRate` clamps to 25,000 pkt/s.
/// * `datacenter` — 100k pkt/s within a ±2% jitter band: 102,000 peak.
/// * `burst` — 20k pkt/s busy half-period plus jitter headroom.
/// * `ddos` — 5k baseline ramping to a 60k attack plateau; 66,000
///   dominates the plateau plus ramp overshoot.
pub const FEED_PROFILES: &[FeedProfile] = &[
    FeedProfile { name: "research", peak_rows_per_sec: 25_000, columns: BASELINE_COLUMNS },
    FeedProfile { name: "datacenter", peak_rows_per_sec: 102_000, columns: BASELINE_COLUMNS },
    FeedProfile { name: "burst", peak_rows_per_sec: 21_000, columns: BASELINE_COLUMNS },
    FeedProfile { name: "ddos", peak_rows_per_sec: 66_000, columns: DDOS_COLUMNS },
];

/// Look up a feed's declared envelope by `--feed` name.
pub fn feed_profile(name: &str) -> Option<&'static FeedProfile> {
    FEED_PROFILES.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::{burst_feed, datacenter_feed, ddos_feed, research_feed};
    use std::collections::HashSet;

    #[test]
    fn every_feed_has_a_profile() {
        for name in ["research", "datacenter", "burst", "ddos"] {
            assert!(feed_profile(name).is_some(), "missing profile for {name}");
        }
        assert!(feed_profile("bogus").is_none());
    }

    #[test]
    fn declared_peaks_dominate_observed_rates() {
        let seconds = 30u64;
        let cases: Vec<(&str, Vec<sso_types::Packet>)> = vec![
            ("research", research_feed(11).take_seconds(seconds)),
            ("datacenter", datacenter_feed(11).take_seconds(seconds)),
            ("burst", burst_feed(11).take_seconds(seconds)),
            ("ddos", ddos_feed(11, 5, 25).take_seconds(seconds)),
        ];
        for (name, pkts) in cases {
            let peak = feed_profile(name).unwrap().peak_rows_per_sec;
            let mut per_second = vec![0u64; seconds as usize];
            for p in &pkts {
                per_second[p.time() as usize] += 1;
            }
            let observed = per_second.iter().copied().max().unwrap();
            assert!(
                observed <= peak,
                "{name}: observed {observed} pkt/s exceeds declared peak {peak}"
            );
        }
    }

    #[test]
    fn declared_cardinalities_dominate_observed_values() {
        let pkts = research_feed(12).take_seconds(20);
        let profile = feed_profile("research").unwrap();
        let distinct = |f: fn(&sso_types::Packet) -> u64| -> u64 {
            pkts.iter().map(f).collect::<HashSet<_>>().len() as u64
        };
        let observed: &[(&str, u64)] = &[
            ("srcIP", distinct(|p| p.src_ip as u64)),
            ("destIP", distinct(|p| p.dest_ip as u64)),
            ("srcPort", distinct(|p| p.src_port as u64)),
            ("destPort", distinct(|p| p.dest_port as u64)),
            ("proto", distinct(|p| p.proto.number() as u64)),
            ("len", distinct(|p| p.len as u64)),
        ];
        for &(col, seen) in observed {
            let declared = profile.column_cardinality(col).unwrap().unwrap();
            assert!(seen <= declared, "{col}: saw {seen} distinct values, declared {declared}");
        }
        // uts is declared unbounded because it is per-row unique.
        assert_eq!(profile.column_cardinality("uts"), Some(None));
        assert_eq!(distinct(|p| p.uts), pkts.len() as u64);
    }
}
