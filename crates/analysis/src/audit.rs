//! The audit pass: abstract interpretation over a file of cascaded
//! queries, producing a [`BoundsReport`] plus W2xx diagnostics.
//!
//! The pass walks the file exactly as the runtime would wire it
//! (consecutive statements cascade, base-stream names start a fresh
//! pipeline), carries an [`AbstractState`] along each edge, and
//! evaluates the per-sampler closed forms of [`crate::bounds`] at every
//! node. It never instantiates an operator or generates traffic —
//! `clippy.toml` bans the execution paths — so auditing a whole corpus
//! costs milliseconds.

use sso_core::{shard_plan, Expr, OperatorSpec};
use sso_netgen::profile::feed_profile;
use sso_query::ast::Query;
use sso_query::diag::{self, Code, Diagnostic};
use sso_query::{analyze, parse_query, plan, PlannerConfig, Span};
use sso_types::Schema;

use crate::bounds::{detect_sampler, expr_cardinality, provably_non_negative, window_seconds};
use crate::domain::{AbstractState, Card, SkewClass};
use crate::report::{BoundsReport, StatementBounds};

/// What to audit against.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Feed envelope name (see [`sso_netgen::profile::FEED_PROFILES`]).
    /// An unknown name audits with no envelope: every input dimension
    /// starts unbounded.
    pub feed: String,
    /// Shard count the skew and mergeability checks assume.
    pub shards: usize,
    /// Router-lane count the skew verdict assumes (the runtime's
    /// `--routers`). Every lane hash-routes by the same partition key,
    /// so a narrow key funnels *all* lanes into the same few shards —
    /// the W202 verdict is stated per lane.
    pub routers: usize,
    /// Optional total-state budget in bytes; the report records it and
    /// [`AuditOutcome::budget_exceeded`] reflects the verdict.
    pub budget: Option<u64>,
    /// Optional durable-run `--state-budget` in bytes; the report's
    /// `durable` section records it and W206 fires when it is below the
    /// spill pager's two-page-per-shard working-set floor.
    pub state_budget: Option<u64>,
    /// Emit W205 for deletion-unsafe plans (turnstile deployments).
    pub turnstile: bool,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            feed: "research".to_string(),
            shards: 1,
            routers: 1,
            budget: None,
            state_budget: None,
            turnstile: false,
        }
    }
}

/// Everything the audit produced for one file.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// The bounds certificate.
    pub report: BoundsReport,
    /// All diagnostics (E-codes from the analyzer, W2xx from the
    /// audit), spans rebased onto the whole file.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditOutcome {
    /// Did any statement's certified state exceed the budget, or — with
    /// a budget set — fail to certify a finite total at all?
    pub fn budget_exceeded(&self) -> bool {
        match self.report.budget {
            Some(b) => self.report.total_state_bytes().exceeds(b),
            None => false,
        }
    }

    /// Does the outcome contain error-severity diagnostics?
    pub fn has_errors(&self) -> bool {
        diag::has_errors(&self.diagnostics)
    }
}

/// Split a query file into `(byte offset, statement)` pairs on
/// unquoted semicolons, ignoring `--` line comments — the convention
/// shared by `sso check` and `sso audit`. A chunk whose non-comment
/// content is blank (a trailing comment block, stray whitespace) is
/// dropped.
pub fn split_statements(text: &str) -> Vec<(usize, &str)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut in_comment = false;
    for (i, &c) in bytes.iter().enumerate() {
        if in_comment {
            in_comment = c != b'\n';
        } else if in_string {
            in_string = c != b'\'';
        } else {
            match c {
                b'\'' => in_string = true,
                b'-' if bytes.get(i + 1) == Some(&b'-') => in_comment = true,
                b';' => {
                    out.push((start, &text[start..i]));
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    out.push((start, &text[start..]));
    out.retain(|(_, s)| {
        s.lines().map(|l| l.split("--").next().unwrap_or("")).any(|l| !l.trim().is_empty())
    });
    out
}

/// What one audited statement hands to the next level of a cascade.
struct PrevLevel {
    query: Query,
    spec: OperatorSpec,
    /// Certified live-group ceiling (drives the high level's rate).
    groups_bound: Card,
    window_secs: Option<u64>,
    /// Per-output-column cardinality bounds.
    out_columns: Vec<(String, Card)>,
    /// `(column, seconds per distinct value)` for the passed-through
    /// window variable, so the high level can window on it.
    ordered_periods: Vec<(String, u64)>,
}

/// Audit a whole query file. Never executes anything.
pub fn audit_file(text: &str, opts: &AuditOptions) -> AuditOutcome {
    let config = PlannerConfig::standard();
    let mut diagnostics = Vec::new();
    let mut statements = Vec::new();
    let mut prev: Option<PrevLevel> = None;

    for (idx, (base, stmt)) in split_statements(text).into_iter().enumerate() {
        let name = format!("stmt{idx}");
        let mut next = None;
        let mut diags = match parse_query(stmt) {
            Ok(q) => {
                let base_schema = sso_query::base_stream_schema(&q.from.text);
                let is_base = base_schema.is_some();
                let schema = match (&prev, base_schema) {
                    (Some(p), None) => p.spec.output_schema(&q.from.text),
                    (_, Some(s)) => s,
                    (None, None) => sso_types::Packet::schema(),
                };
                let mut diags = analyze(&q, &schema, &config);
                if let Some(p) = &prev {
                    if !is_base {
                        diags.extend(sso_gigascope::check_pushdown(&p.query, &q));
                    }
                }
                if !diag::has_errors(&diags) {
                    if let Ok(spec) = plan(&q, &schema, &config) {
                        let input = input_state(&q, is_base, &prev, opts);
                        let (bounds, level, audit_diags) =
                            audit_statement(name.clone(), &q, &spec, &schema, &input, opts);
                        diags.extend(audit_diags);
                        statements.push(bounds);
                        next = Some(level);
                    }
                }
                diags
            }
            // Re-run through check() to get the E100/E101 diagnostic
            // form of lex/parse failures.
            Err(_) => sso_query::check(stmt, &sso_types::Packet::schema(), &config),
        };
        // Re-base spans from the statement onto the whole file.
        for d in &mut diags {
            if !d.span.is_dummy() {
                d.span = Span::new(d.span.start + base, d.span.end + base);
            }
        }
        diagnostics.extend(diags);
        prev = next;
    }

    // W206: --state-budget below the spill pager's working-set floor.
    if let Some(budget) = opts.state_budget {
        let floor = 2 * sso_core::snapshot::PAGE_BYTES as u64;
        let per_shard = budget / opts.shards.max(1) as u64;
        if per_shard < floor {
            diagnostics.push(
                Diagnostic::new(
                    Code::W206,
                    Span::DUMMY,
                    format!(
                        "--state-budget {budget} leaves each of {} shards {per_shard} bytes, \
                         below the pager's two-page working set ({floor} bytes)",
                        opts.shards.max(1)
                    ),
                )
                .with_help(
                    "the spill pager pins the open page and the touched page; give each \
                     shard at least two pages or lower --shards",
                ),
            );
        }
    }

    let report = BoundsReport {
        feed: opts.feed.clone(),
        shards: opts.shards,
        budget: opts.budget,
        state_budget: opts.state_budget,
        statements,
    };
    AuditOutcome { report, diagnostics }
}

/// The abstract state on the statement's input edge: the declared feed
/// envelope for a base stream, the previous level's certified output
/// for a cascade high.
fn input_state(
    q: &Query,
    is_base: bool,
    prev: &Option<PrevLevel>,
    opts: &AuditOptions,
) -> InputState {
    if let (false, Some(p)) = (is_base, prev) {
        // A closed low level emits at most its group ceiling per
        // window; amortized over the window that is the high level's
        // peak input rate.
        let rows_per_sec = match (p.groups_bound, p.window_secs) {
            (Card::Finite(g), Some(w)) => Card::Finite(sso_gigascope::cascade_output_rate(g, w)),
            _ => Card::Unbounded,
        };
        return InputState {
            state: AbstractState { rows_per_sec, columns: p.out_columns.clone() },
            ordered_periods: p.ordered_periods.clone(),
        };
    }
    match feed_profile(&opts.feed) {
        Some(profile) if is_base && q.from.text != sso_obs::METRICS_STREAM => {
            let columns = profile
                .columns
                .iter()
                .filter_map(|c| c.cardinality.map(|n| (c.name.to_string(), Card::Finite(n))))
                .collect();
            InputState {
                state: AbstractState {
                    rows_per_sec: Card::Finite(profile.peak_rows_per_sec),
                    columns,
                },
                // Base packet streams carry `time` in whole seconds.
                ordered_periods: vec![("time".to_string(), 1)],
            }
        }
        _ => InputState {
            state: AbstractState { rows_per_sec: Card::Unbounded, columns: Vec::new() },
            ordered_periods: vec![("time".to_string(), 1)],
        },
    }
}

struct InputState {
    state: AbstractState,
    ordered_periods: Vec<(String, u64)>,
}

/// Audit one planned statement against its input state.
fn audit_statement(
    name: String,
    q: &Query,
    spec: &OperatorSpec,
    schema: &Schema,
    input: &InputState,
    opts: &AuditOptions,
) -> (StatementBounds, PrevLevel, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let env = |col: &str| input.state.column_card(col);
    let period = |col: &str| input.ordered_periods.iter().find(|(n, _)| n == col).map(|&(_, p)| p);

    // Window length: the first window-defining group item with a
    // recognizable shape.
    let window_secs = spec
        .window_indices
        .iter()
        .filter_map(|&i| q.group_by.get(i))
        .find_map(|item| window_seconds(&item.expr, schema, &period));
    let rows_per_window = match window_secs {
        Some(w) => input.state.rows_per_sec.times(w),
        None => Card::Unbounded,
    };

    // Key-cardinality product over the non-window group items: within
    // one tumbling window the window variables are constant, and the
    // group table is flushed when the window closes.
    let is_window = |i: usize| spec.window_indices.contains(&i);
    let mut key_cardinality = Card::Finite(1);
    let mut unbounded_key_span = None;
    for (i, item) in q.group_by.iter().enumerate() {
        if is_window(i) {
            continue;
        }
        let card = expr_cardinality(&item.expr, &env);
        if !card.is_finite() && unbounded_key_span.is_none() {
            unbounded_key_span = Some(item.expr.span);
        }
        key_cardinality = key_cardinality * card;
    }

    // Supergroup cardinality (window variables excluded by the spec).
    let supergroup_cardinality = spec
        .supergroup_indices
        .iter()
        .filter_map(|&i| q.group_by.get(i))
        .fold(Card::Finite(1), |acc, item| acc * expr_cardinality(&item.expr, &env));
    let supergroup_bound = supergroup_cardinality.min(rows_per_window);

    // The sampler's per-supergroup cap, scaled by live supergroups.
    let sampler = detect_sampler(q);
    let per_supergroup_bound = sampler.kind.per_supergroup_bound(rows_per_window);
    let groups_bound =
        key_cardinality.min(rows_per_window).min(per_supergroup_bound * supergroup_bound);

    let group_entry_bytes = spec.group_entry_bytes() as u64;
    let supergroup_entry_bytes = spec.supergroup_entry_bytes() as u64;
    let state_bytes =
        groups_bound.times(group_entry_bytes) + supergroup_bound.times(supergroup_entry_bytes);

    // W201: no finite state ceiling.
    if !groups_bound.is_finite() {
        let span = unbounded_key_span.unwrap_or(Span::DUMMY);
        let mut causes = Vec::new();
        if window_secs.is_none() {
            causes.push("the query has no tumbling window over an ordered column");
        }
        if !key_cardinality.is_finite() {
            causes.push("a group-by key has unbounded cardinality under the feed envelope");
        }
        if !per_supergroup_bound.is_finite() {
            causes.push("no sampling clause caps live groups per supergroup");
        }
        diags.push(
            Diagnostic::new(
                Code::W201,
                span,
                format!(
                    "cannot certify a finite state bound for this query ({})",
                    sampler.kind.label()
                ),
            )
            .with_help(causes.join("; ")),
        );
    }

    // Mergeability, skew (W202/W203).
    let (mergeable, skew) = match shard_plan(spec) {
        Ok(plan) => {
            let skew = if plan.partition_exprs.is_empty() {
                SkewClass::RoundRobin
            } else {
                let card = plan
                    .partition_exprs
                    .iter()
                    .fold(Card::Finite(1), |acc, e| acc * core_expr_card(e, q, spec, schema, &env));
                SkewClass::classify(card, opts.shards)
            };
            if opts.shards > 1 && skew.is_hazard() {
                let routed = match skew {
                    SkewClass::Constant => 1,
                    SkewClass::Narrow { cardinality } => cardinality,
                    _ => unreachable!("is_hazard() covers only Constant and Narrow"),
                };
                let lanes = opts.routers.max(1);
                let message = if lanes > 1 {
                    // Every router lane hashes the same key the same
                    // way, so the narrow key concentrates all lanes
                    // onto the same shards — the verdict holds per
                    // lane, and the reached shards' workers drain
                    // `lanes` contending rings each.
                    format!(
                        "partition key reaches at most {routed} of {} shards from each of \
                         {lanes} router lanes ({skew} skew class)",
                        opts.shards
                    )
                } else {
                    format!(
                        "partition key reaches at most {routed} of {} shards ({skew} skew class)",
                        opts.shards
                    )
                };
                diags.push(Diagnostic::new(Code::W202, Span::DUMMY, message).with_help(
                    "at least one shard is statically guaranteed to idle; partition on a \
                     higher-cardinality key or lower --shards",
                ));
            }
            (true, skew)
        }
        Err(not_mergeable) => {
            if opts.shards > 1 {
                diags.push(
                    Diagnostic::new(
                        Code::W203,
                        Span::DUMMY,
                        format!(
                            "query is not shard-mergeable but the audit assumes --shards {}",
                            opts.shards
                        ),
                    )
                    .with_help(not_mergeable.reason),
                );
            }
            (false, SkewClass::RoundRobin)
        }
    };

    // W204: a shed-path re-weighting needs a provably non-negative
    // subset-sum weight.
    if let Some(w) = &sampler.weight_expr {
        if !provably_non_negative(w, schema) {
            diags.push(
                Diagnostic::new(
                    Code::W204,
                    w.span,
                    "subset-sum weight is not provably non-negative",
                )
                .with_help(
                    "load shedding re-weights surviving tuples by the inverse sampling rate; \
                     a weight that can be negative (or wrap) makes the shed estimate unsound",
                ),
            );
        }
    }

    // W205: deletion-unsafe state on a turnstile deployment.
    let deletion_safety = sampler.kind.deletion_safety();
    if opts.turnstile {
        if let crate::domain::DeletionSafety::Unsafe(reason) = deletion_safety {
            diags.push(
                Diagnostic::new(
                    Code::W205,
                    Span::DUMMY,
                    format!("{} state cannot absorb turnstile deletions", sampler.kind.label()),
                )
                .with_help(reason),
            );
        }
    }

    let bounds = StatementBounds {
        name,
        stream: q.from.text.clone(),
        sampler: sampler.kind.clone(),
        window_secs,
        rows_per_sec: input.state.rows_per_sec,
        rows_per_window,
        key_cardinality,
        supergroup_cardinality,
        per_supergroup_bound,
        groups_bound,
        group_entry_bytes,
        supergroup_entry_bytes,
        state_bytes,
        skew,
        mergeable,
        deletion_safety,
    };

    // What the next cascade level sees: column cardinalities for
    // group-variable passthroughs, the window variable's period.
    let mut out_columns = Vec::new();
    let mut ordered_periods = Vec::new();
    for (col_name, expr) in &spec.select {
        if let Expr::GroupVar(i) = expr {
            if is_window(*i) {
                if let Some(w) = window_secs {
                    ordered_periods.push((col_name.clone(), w));
                }
                continue;
            }
            if let Some(item) = q.group_by.get(*i) {
                let card = expr_cardinality(&item.expr, &env);
                if card.is_finite() {
                    out_columns.push((col_name.clone(), card));
                }
            }
        }
    }
    let level = PrevLevel {
        query: q.clone(),
        spec: spec.clone(),
        groups_bound,
        window_secs,
        out_columns,
        ordered_periods,
    };
    (bounds, level, diags)
}

/// Cardinality bound of a compiled (core) expression — used for the
/// router's partition key, which is tuple-phase.
fn core_expr_card(
    e: &Expr,
    q: &Query,
    spec: &OperatorSpec,
    schema: &Schema,
    env: &impl Fn(&str) -> Card,
) -> Card {
    match e {
        Expr::Literal(_) => Card::Finite(1),
        Expr::Column(i) => schema.fields().get(*i).map(|f| env(&f.name)).unwrap_or(Card::Unbounded),
        Expr::GroupVar(i) => {
            if spec.window_indices.contains(i) {
                // Constant within a window; the router only ever sees
                // one live window's tuples per key.
                Card::Finite(1)
            } else {
                q.group_by
                    .get(*i)
                    .map(|item| expr_cardinality(&item.expr, env))
                    .unwrap_or(Card::Unbounded)
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            core_expr_card(lhs, q, spec, schema, env) * core_expr_card(rhs, q, spec, schema, env)
        }
        Expr::Not(inner) => core_expr_card(inner, q, spec, schema, env),
        Expr::Sfun { args, .. } | Expr::Scalar { args, .. } => args
            .iter()
            .fold(Card::Finite(1), |acc, a| acc * core_expr_card(a, q, spec, schema, env)),
        _ => Card::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_ignores_comments_and_quoted_semicolons() {
        let text = "-- header; not a split\nSELECT a FROM PKT; -- trailing; comment\n\
                    SELECT 'x;y' FROM PKT;\n-- only a comment after the last statement\n";
        let stmts = split_statements(text);
        assert_eq!(stmts.len(), 2, "{stmts:?}");
        assert!(stmts[0].1.contains("SELECT a"));
        assert!(stmts[1].1.contains("'x;y'"));
        assert_eq!(stmts[0].0, 0, "offsets cover the preceding comment");
    }

    #[test]
    fn splitter_drops_blank_chunks() {
        assert!(split_statements("  \n-- nothing here\n").is_empty());
        assert_eq!(split_statements("SELECT a FROM PKT").len(), 1);
    }
}
