//! Low-level query nodes: early data reduction at the packet level.
//!
//! Gigascope's low-level queries are "simple data reduction operators"
//! — selection and partial aggregation — running directly against the
//! ring buffer. Crucially, a packet only incurs a *copy* (here: the
//! construction of a boxed-value [`Tuple`]) when it is forwarded to a
//! high-level query. The paper's Figure 6 shows why this matters: a
//! pass-everything selection subquery burned ~60% of a CPU in memory
//! copies, while pushing *basic* subset-sum sampling (threshold `z/10`)
//! down into the low-level node cut it to ~4%.

use sso_sampling::subset_sum::BasicSubsetSum;
use sso_types::{Packet, Tuple};

/// A low-level query node: packet in, optional forwarded tuple out.
pub trait LowLevelQuery: Send {
    /// The node's display name.
    fn name(&self) -> &'static str;

    /// Process one packet; `Some(tuple)` forwards it to the high level.
    fn process(&mut self, pkt: &Packet) -> Option<Tuple>;

    /// End of stream: flush any buffered output (e.g. a partial
    /// aggregation epoch). Defaults to nothing.
    fn finish(&mut self) -> Vec<Tuple> {
        Vec::new()
    }
}

/// A cheap native predicate over packet fields.
pub type PacketPredicate = Box<dyn FnMut(&Packet) -> bool + Send>;

/// A selection node with a cheap native predicate over packet fields.
pub struct SelectionNode {
    predicate: Option<PacketPredicate>,
}

impl SelectionNode {
    /// Forward every packet (the paper's baseline low-level query).
    pub fn pass_all() -> Self {
        SelectionNode { predicate: None }
    }

    /// Forward packets matching the predicate.
    pub fn with_predicate(pred: impl FnMut(&Packet) -> bool + Send + 'static) -> Self {
        SelectionNode { predicate: Some(Box::new(pred)) }
    }
}

impl LowLevelQuery for SelectionNode {
    fn name(&self) -> &'static str {
        "selection"
    }

    fn process(&mut self, pkt: &Packet) -> Option<Tuple> {
        let pass = match &mut self.predicate {
            Some(p) => p(pkt),
            None => true,
        };
        // The tuple construction is the "memory copy" of the real
        // system: it only happens for forwarded packets.
        pass.then(|| pkt.to_tuple())
    }
}

/// The §7.2 prefilter: *basic* subset-sum sampling at a low threshold in
/// the low-level node. The high-level dynamic algorithm then sees an
/// already-thinned stream and adapts its own threshold upward.
///
/// Per the basic algorithm (§4.4), a sampled *small* tuple's measure is
/// adjusted to the threshold ("setting t.x to z") before forwarding, so
/// downstream sums over the thinned stream remain unbiased.
pub struct PrefilterNode {
    basic: BasicSubsetSum,
    len_idx: usize,
}

impl PrefilterNode {
    /// Prefilter with the given threshold (the paper used a tenth of the
    /// dynamic algorithm's steady-state threshold).
    pub fn new(z: f64) -> Self {
        let len_idx = Packet::schema().index_of("len").expect("PKT has len");
        PrefilterNode { basic: BasicSubsetSum::new(z), len_idx }
    }

    /// The prefilter's threshold.
    pub fn z(&self) -> f64 {
        self.basic.z()
    }

    /// Packets offered / sampled so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.basic.offered(), self.basic.sampled())
    }
}

impl LowLevelQuery for PrefilterNode {
    fn name(&self) -> &'static str {
        "basic-ss-prefilter"
    }

    fn process(&mut self, pkt: &Packet) -> Option<Tuple> {
        if !self.basic.offer(pkt.len as u64) {
            return None;
        }
        let mut tuple = pkt.to_tuple();
        let adjusted = self.basic.adjusted_weight(pkt.len as u64);
        tuple.set(self.len_idx, sso_types::Value::U64(adjusted as u64));
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_types::Protocol;

    fn pkt(len: u32) -> Packet {
        Packet {
            uts: 1,
            src_ip: 1,
            dest_ip: 2,
            src_port: 3,
            dest_port: 4,
            proto: Protocol::Tcp,
            len,
        }
    }

    #[test]
    fn pass_all_forwards_everything() {
        let mut n = SelectionNode::pass_all();
        assert!(n.process(&pkt(100)).is_some());
        assert!(n.process(&pkt(40)).is_some());
    }

    #[test]
    fn predicate_filters() {
        let mut n = SelectionNode::with_predicate(|p| p.len > 100);
        assert!(n.process(&pkt(1500)).is_some());
        assert!(n.process(&pkt(40)).is_none());
    }

    #[test]
    fn forwarded_tuple_matches_schema() {
        let mut n = SelectionNode::pass_all();
        let t = n.process(&pkt(123)).unwrap();
        t.check_arity(&Packet::schema()).unwrap();
    }

    #[test]
    fn prefilter_thins_small_packets() {
        let mut n = PrefilterNode::new(10_000.0);
        let mut forwarded = 0;
        for _ in 0..1000 {
            if n.process(&pkt(100)).is_some() {
                forwarded += 1;
            }
        }
        // 1000 * 100 bytes = 100k total, z = 10k -> ~10 samples.
        assert!((5..=15).contains(&forwarded), "forwarded {forwarded}");
        let (offered, sampled) = n.counts();
        assert_eq!(offered, 1000);
        assert_eq!(sampled as usize, forwarded);
    }

    #[test]
    fn prefilter_always_forwards_large_packets() {
        let mut n = PrefilterNode::new(1000.0);
        for _ in 0..10 {
            assert!(n.process(&pkt(1500)).is_some());
        }
    }
}
