//! The lineage stamp: one pipeline stage crossing, packed into four
//! `u64` words (32 bytes).
//!
//! ## Layout
//!
//! ```text
//! word 0   t_ns     start time, ns since the profiler epoch
//! word 1   dur_ns   duration in ns (0 for instant events)
//! word 2   window (low u32) | batch (high u32)
//! word 3   stage (u8) | shard (u16) << 8 | aux (40 bits) << 24
//! ```
//!
//! `shard = u16::MAX`, `window/batch = u32::MAX` mean "not applicable".
//! `aux` is a stage-specific payload (tuples in the batch, rows merged)
//! clamped to 40 bits **at construction**, so an [`Event`] always
//! re-encodes to the exact words it decoded from — the property the
//! flight-recorder round-trip proptest pins.

/// Pipeline stages a batch crosses, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Router-side stream intake: reading the feed (incl. any upstream
    /// low-level node running inline) and hashing tuples to shards.
    Ingest = 0,
    /// Handing one batch to a shard ring (the push itself, wait excluded).
    Route = 1,
    /// Blocked on a full shard ring before the push succeeded.
    RingWait = 2,
    /// A worker running the operator over one batch.
    Process = 3,
    /// A worker's end-of-stream finalize (final window flush).
    Flush = 4,
    /// The router waiting on the merge barrier for shard partials.
    BarrierWait = 5,
    /// Merging per-shard partial windows.
    Merge = 6,
    /// One merged window leaving the operator.
    Emit = 7,
    /// Gigascope low-level node work attributed to the stream source.
    Low = 8,
}

/// All stages, in causal order (the order attribution tables print in).
pub const STAGES: [Stage; 9] = [
    Stage::Ingest,
    Stage::Route,
    Stage::RingWait,
    Stage::Process,
    Stage::Flush,
    Stage::BarrierWait,
    Stage::Merge,
    Stage::Emit,
    Stage::Low,
];

impl Stage {
    /// Stable lowercase name (used in dumps, reports, and `prof.*` metrics).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Route => "route",
            Stage::RingWait => "ring_wait",
            Stage::Process => "process",
            Stage::Flush => "flush",
            Stage::BarrierWait => "barrier_wait",
            Stage::Merge => "merge",
            Stage::Emit => "emit",
            Stage::Low => "low",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Stage> {
        STAGES.get(v as usize).copied()
    }
}

/// `shard` value meaning "no shard" (router-side events).
pub const SHARD_NONE: u16 = u16::MAX;
/// `window` value meaning "no window ordinal".
pub const WINDOW_NONE: u32 = u32::MAX;
/// `batch` value meaning "no batch id".
pub const BATCH_NONE: u32 = u32::MAX;
/// Largest representable `aux` payload (40 bits).
pub const AUX_MAX: u64 = (1 << 40) - 1;

/// One decoded lineage-stamp event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub stage: Stage,
    /// Owning shard, or [`SHARD_NONE`].
    pub shard: u16,
    /// Window ordinal (per-shard for `Process`, merged for `Emit`), or
    /// [`WINDOW_NONE`].
    pub window: u32,
    /// Router-assigned batch id threading causality across threads, or
    /// [`BATCH_NONE`].
    pub batch: u32,
    /// Start, ns since the profiler epoch.
    pub t_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Stage-specific payload (tuple count, rows), clamped to 40 bits.
    pub aux: u64,
}

impl Event {
    /// A stamp with no shard/window/batch attribution.
    pub fn new(stage: Stage, t_ns: u64, dur_ns: u64) -> Event {
        Event {
            stage,
            shard: SHARD_NONE,
            window: WINDOW_NONE,
            batch: BATCH_NONE,
            t_ns,
            dur_ns,
            aux: 0,
        }
    }

    pub fn shard(mut self, shard: u16) -> Event {
        self.shard = shard;
        self
    }

    pub fn window(mut self, window: u32) -> Event {
        self.window = window;
        self
    }

    pub fn batch(mut self, batch: u32) -> Event {
        self.batch = batch;
        self
    }

    /// Attach a payload, clamped to [`AUX_MAX`].
    pub fn aux(mut self, aux: u64) -> Event {
        self.aux = aux.min(AUX_MAX);
        self
    }

    /// End of the event: `t_ns + dur_ns`, saturating.
    pub fn end_ns(&self) -> u64 {
        self.t_ns.saturating_add(self.dur_ns)
    }

    pub(crate) fn to_words(self) -> [u64; 4] {
        [
            self.t_ns,
            self.dur_ns,
            u64::from(self.window) | (u64::from(self.batch) << 32),
            u64::from(self.stage as u8)
                | (u64::from(self.shard) << 8)
                | ((self.aux & AUX_MAX) << 24),
        ]
    }

    /// Decode one slot; `None` if the stage byte is out of range (a
    /// torn live read or a corrupt dump frame).
    pub(crate) fn from_words(w: [u64; 4]) -> Option<Event> {
        let stage = Stage::from_u8((w[3] & 0xff) as u8)?;
        Some(Event {
            stage,
            shard: ((w[3] >> 8) & 0xffff) as u16,
            window: (w[2] & 0xffff_ffff) as u32,
            batch: (w[2] >> 32) as u32,
            t_ns: w[0],
            dur_ns: w[1],
            aux: w[3] >> 24,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        let e = Event::new(Stage::Process, 123_456_789, 42).shard(7).window(3).batch(91).aux(1024);
        let w = e.to_words();
        assert_eq!(Event::from_words(w), Some(e));
        assert_eq!(Event::from_words(w).unwrap().to_words(), w);
    }

    #[test]
    fn aux_clamps_to_40_bits() {
        let e = Event::new(Stage::Emit, 0, 0).aux(u64::MAX);
        assert_eq!(e.aux, AUX_MAX);
        assert_eq!(Event::from_words(e.to_words()), Some(e));
    }

    #[test]
    fn none_sentinels_survive() {
        let e = Event::new(Stage::Ingest, 1, 2);
        let d = Event::from_words(e.to_words()).unwrap();
        assert_eq!(d.shard, SHARD_NONE);
        assert_eq!(d.window, WINDOW_NONE);
        assert_eq!(d.batch, BATCH_NONE);
    }

    #[test]
    fn bad_stage_byte_rejected() {
        assert_eq!(Event::from_words([0, 0, 0, 200]), None);
    }
}
