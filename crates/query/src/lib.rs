//! # sso-query
//!
//! The textual front end for the sampling operator: a lexer, a
//! recursive-descent parser for the extended aggregation syntax of §5,
//!
//! ```text
//! SELECT <select expression list>
//! FROM <stream>
//! WHERE <predicate>
//! GROUP BY <group-by variable definition list>
//! [SUPERGROUP <group-by variable list>]
//! [HAVING <predicate>]
//! CLEANING WHEN <predicate>
//! CLEANING BY <predicate>
//! ```
//!
//! and a planner that resolves names against a stream [`Schema`] and a
//! set of registered SFUN libraries, producing an executable
//! [`sso_core::OperatorSpec`].
//!
//! ```
//! use sso_query::{compile, PlannerConfig};
//! use sso_types::Packet;
//!
//! let mut op = compile(
//!     "SELECT tb, srcIP, sum(len) FROM PKT GROUP BY time/60 as tb, srcIP",
//!     &Packet::schema(),
//!     &PlannerConfig::standard(),
//! ).unwrap();
//! let out = op.run(std::iter::empty()).unwrap();
//! assert!(out.is_empty());
//! ```

pub mod ast;
pub mod error;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{AstExpr, BinAstOp, Query, SelectItem};
pub use error::QueryError;
pub use explain::explain;
pub use lexer::{Lexer, Token};
pub use parser::parse_query;
pub use plan::{plan, PlannerConfig};

use sso_core::SamplingOperator;
use sso_types::Schema;

/// Parse, plan, and instantiate a query in one step.
pub fn compile(
    text: &str,
    schema: &Schema,
    config: &PlannerConfig,
) -> Result<SamplingOperator, QueryError> {
    let q = parse_query(text)?;
    let spec = plan(&q, schema, config)?;
    SamplingOperator::new(spec).map_err(QueryError::Plan)
}
