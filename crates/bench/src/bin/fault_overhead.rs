//! **Fault-tolerance overhead** — throughput cost of shard supervision.
//!
//! The quarantine machinery sits on the worker hot path: a per-tuple
//! fault-schedule check and a per-segment `catch_unwind` (one per
//! batch, not per tuple, when nothing panics). This benchmark runs the
//! `runtime_scaling` workload twice per repetition: once under
//! [`Supervision::Abort`] with no fault plan (the pre-supervision
//! semantics) and once under the default [`Supervision::Quarantine`]
//! with an *armed but never-firing* fault plan (worker events parked at
//! `at_tuple = u64::MAX`), so the fault-check branch is live on every
//! tuple. Repetitions alternate the modes; best-of-reps is reported.
//!
//! The acceptance gate (enforced by `scripts/check.sh` over
//! `BENCH_faults.json`) is ≤ 5% throughput overhead: surviving shard
//! failures must not cost a shard's worth of throughput.

use std::time::Instant;

use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, shard_plan, OpError, OperatorSpec};
use sso_faults::{FaultEvent, FaultPlan};
use sso_gigascope::{run_plan_sharded_with, SelectionNode};
use sso_netgen::datacenter_feed;
use sso_runtime::{RuntimeConfig, Supervision};
use sso_types::Packet;

const SEED: u64 = 0x5ca1e;
const SECONDS: u64 = 20;
const WINDOW: u64 = 5;
const TARGET: usize = 1000;
const SHARDS: usize = 4;
const REPS: usize = 7;

#[derive(serde::Serialize)]
struct Config {
    feed: &'static str,
    seed: u64,
    seconds: u64,
    packets: usize,
    window_secs: u64,
    target_samples: usize,
    shards: usize,
    reps: usize,
}

#[derive(serde::Serialize)]
struct Mode {
    supervised: bool,
    secs: f64,
    tuples_per_sec: f64,
    windows: usize,
}

#[derive(serde::Serialize)]
struct Report {
    config: Config,
    baseline: Mode,
    supervised: Mode,
    /// Throughput lost to supervision + armed fault checks, percent
    /// (negative = noise in the supervised run's favor).
    overhead_pct: f64,
}

fn spec(shards: usize) -> impl Fn(usize) -> Result<OperatorSpec, OpError> {
    move |_shard| {
        let cfg = SubsetSumOpConfig {
            target: TARGET.div_ceil(shards),
            initial_z: 1.0,
            ..Default::default()
        };
        queries::subset_sum_query(WINDOW, cfg, false)
    }
}

/// A plan whose worker events are armed on every shard but can never
/// fire: the per-tuple check branch stays on the hot path.
fn parked_plan() -> FaultPlan {
    let mut plan = FaultPlan::empty(0);
    for shard in 0..SHARDS {
        plan.events.push(FaultEvent::WorkerPanic { shard, at_tuple: u64::MAX });
    }
    plan
}

fn run_once(packets: &[Packet], supervised: bool) -> (f64, usize) {
    let full = SubsetSumOpConfig { target: TARGET, initial_z: 1.0, ..Default::default() };
    let plan = shard_plan(&queries::subset_sum_query(WINDOW, full, false).unwrap())
        .expect("subset-sum is shard-mergeable");
    let mut cfg = RuntimeConfig::new(SHARDS);
    if supervised {
        cfg = cfg.with_faults(parked_plan().into_shared());
    } else {
        cfg.supervision = Supervision::Abort;
    }
    let t0 = Instant::now();
    let report = run_plan_sharded_with(
        Box::new(SelectionNode::pass_all()),
        &plan,
        spec(SHARDS),
        &cfg,
        packets.iter().cloned(),
    )
    .expect("sharded run");
    assert!(!report.degraded(), "parked faults must never fire");
    (t0.elapsed().as_secs_f64(), report.windows.len())
}

fn main() {
    let packets = datacenter_feed(SEED).take_seconds(SECONDS);
    let n = packets.len();
    if !sso_bench::json_mode() {
        eprintln!("# {n} packets, {REPS} alternating reps per mode");
    }

    let mut base_best = (f64::INFINITY, 0usize);
    let mut sup_best = (f64::INFINITY, 0usize);
    for _ in 0..REPS {
        let base = run_once(&packets, false);
        if base.0 < base_best.0 {
            base_best = base;
        }
        let sup = run_once(&packets, true);
        if sup.0 < sup_best.0 {
            sup_best = sup;
        }
    }

    let base_tps = n as f64 / base_best.0;
    let sup_tps = n as f64 / sup_best.0;
    let report = Report {
        config: Config {
            feed: "datacenter",
            seed: SEED,
            seconds: SECONDS,
            packets: n,
            window_secs: WINDOW,
            target_samples: TARGET,
            shards: SHARDS,
            reps: REPS,
        },
        baseline: Mode {
            supervised: false,
            secs: base_best.0,
            tuples_per_sec: base_tps,
            windows: base_best.1,
        },
        supervised: Mode {
            supervised: true,
            secs: sup_best.0,
            tuples_per_sec: sup_tps,
            windows: sup_best.1,
        },
        overhead_pct: 100.0 * (base_tps - sup_tps) / base_tps,
    };

    if maybe_json(&report) {
        return;
    }
    header("Fault-tolerance overhead: supervised (armed checks) vs abort-on-panic");
    println!("{:>12} {:>8} {:>12} {:>8}", "mode", "secs", "tuples/s", "windows");
    for m in [&report.baseline, &report.supervised] {
        println!(
            "{:>12} {:>8.3} {:>12.0} {:>8}",
            if m.supervised { "supervised" } else { "baseline" },
            m.secs,
            m.tuples_per_sec,
            m.windows,
        );
    }
    println!("overhead: {:.2}%", report.overhead_pct);
}
