//! Reservoir sampling (Vitter, *Random sampling with a reservoir*, 1985).
//!
//! Two implementations:
//!
//! * [`Reservoir`] — Algorithm R: O(1) work per record, one random draw
//!   per record. Simple, and the distributional reference.
//! * [`SkipReservoir`] — skip-based sampling in the spirit of Vitter's
//!   Algorithm Z: instead of drawing per record, draw a *skip count*
//!   Σ(n, t), jump over that many records, and replace a random slot with
//!   the next one. We use Li's Algorithm L formulation of the skip
//!   distribution, which achieves the same optimal
//!   `O(n (1 + log(N/n)))` expected draws as Vitter's
//!   rejection-acceptance method and produces exactly uniform samples.
//!
//! The skip structure is what the paper's operator exploits: `rsample(n)`
//! is a stateful function that returns `TRUE` for records chosen as
//! candidates and `FALSE` for skipped ones.

use rand::Rng;

/// Fixed-size uniform reservoir (Algorithm R).
///
/// After `t ≥ n` offers, each of the `t` records seen has probability
/// `n / t` of being in the reservoir.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir { capacity, seen: 0, items: Vec::with_capacity(capacity) }
    }

    /// Offer one record. Returns `true` if the record was placed in the
    /// reservoir (possibly evicting another).
    pub fn offer<R: Rng>(&mut self, item: T, rng: &mut R) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            true
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
                true
            } else {
                false
            }
        }
    }

    /// Records offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume into the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Reset for a new window, keeping the capacity.
    pub fn clear(&mut self) {
        self.seen = 0;
        self.items.clear();
    }

    /// Rehydrate a reservoir from an already-drawn sample and its offer
    /// count — the merge path of a sharded runtime receives exactly this
    /// (per-shard sample rows plus the shard's window tuple count).
    ///
    /// # Panics
    /// Panics if `capacity == 0`, if the sample exceeds the capacity, or
    /// if it exceeds `seen`.
    pub fn from_parts(capacity: usize, seen: u64, items: Vec<T>) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert!(items.len() <= capacity, "sample larger than capacity");
        assert!(items.len() as u64 <= seen, "sample larger than offer count");
        Reservoir { capacity, seen, items }
    }
}

impl<T: Clone> Reservoir<T> {
    /// Weighted merge of two reservoirs over *disjoint* substreams: the
    /// result is distributed exactly like a single reservoir run over the
    /// concatenated stream.
    ///
    /// The number of survivors taken from each side follows the
    /// hypergeometric allocation (draw `k` records without replacement
    /// from an urn holding `seen_a` + `seen_b` records), realised by
    /// sequential weighted draws; the chosen count is then filled with a
    /// uniform subset of that side's sample. This is the standard
    /// parallel-reservoir merge rule (cf. StreamSampling.jl's `merge`).
    pub fn merge<R: Rng>(&self, other: &Reservoir<T>, rng: &mut R) -> Reservoir<T> {
        let capacity = self.capacity.min(other.capacity);
        let total = self.seen + other.seen;
        let available = self.items.len() + other.items.len();
        let k = ((capacity as u64).min(total) as usize).min(available);
        // Hypergeometric split of the k slots between the two sides.
        let (mut left, mut right) = (self.seen, other.seen);
        let mut from_left = 0usize;
        for _ in 0..k {
            if left + right == 0 {
                break;
            }
            if rng.gen_range(0..left + right) < left {
                from_left += 1;
                left -= 1;
            } else {
                right -= 1;
            }
        }
        // A side can hold fewer items than its hypergeometric share:
        // the caller may have built it from grouped output, where
        // sampled records collapsed onto shared keys. Clamp the split
        // to what each side can actually supply (k <= available keeps
        // the clamp bounds ordered).
        let from_left =
            from_left.clamp(k.saturating_sub(other.items.len()), self.items.len().min(k));
        // Uniform subset of each side's sample (partial Fisher–Yates).
        let mut items = Vec::with_capacity(capacity);
        for (source, take) in [(self, from_left), (other, k - from_left)] {
            let mut pool = source.items.clone();
            for _ in 0..take {
                let j = rng.gen_range(0..pool.len());
                items.push(pool.swap_remove(j));
            }
        }
        Reservoir { capacity, seen: total, items }
    }
}

/// Skip-based uniform reservoir (Algorithm L skip distribution).
///
/// Equivalent in distribution to [`Reservoir`], but once the reservoir is
/// full it draws O(1) random numbers per *accepted* record rather than
/// per offered record. [`SkipReservoir::pending_skip`] exposes the current
/// skip so a stream operator can discard records without consulting the
/// sampler.
#[derive(Debug, Clone)]
pub struct SkipReservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    /// log-uniform accumulator `W` of Algorithm L.
    w: f64,
    /// Records still to skip before the next acceptance.
    skip: u64,
}

impl<T> SkipReservoir<T> {
    /// Create a skip reservoir holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        SkipReservoir { capacity, seen: 0, items: Vec::with_capacity(capacity), w: 1.0, skip: 0 }
    }

    fn draw_skip<R: Rng>(&mut self, rng: &mut R) {
        // W *= U^{1/n}; skip = floor(log U' / log(1-W))
        self.w *= f64::exp(f64::ln(rng.gen::<f64>()) / self.capacity as f64);
        let u: f64 = rng.gen::<f64>();
        let denom = f64::ln_1p(-self.w);
        self.skip = if denom == 0.0 { u64::MAX } else { (f64::ln(u) / denom) as u64 };
    }

    /// Offer one record. Returns `true` if it entered the reservoir.
    pub fn offer<R: Rng>(&mut self, item: T, rng: &mut R) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            if self.items.len() == self.capacity {
                self.draw_skip(rng);
            }
            return true;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        let slot = rng.gen_range(0..self.capacity);
        self.items[slot] = item;
        self.draw_skip(rng);
        true
    }

    /// How many upcoming records will be skipped without acceptance.
    pub fn pending_skip(&self) -> u64 {
        if self.items.len() < self.capacity {
            0
        } else {
            self.skip
        }
    }

    /// Records offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume into the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Subsample exactly `n` of `items`, uniformly without replacement, in one
/// sequential pass (Knuth's selection-sampling Algorithm S).
///
/// This is the "cleaning phase" primitive of the paper's reservoir query:
/// the operator over-collects up to `T·n` candidates and then randomly
/// keeps `n`.
pub fn select_exactly<T, R: Rng>(items: Vec<T>, n: usize, rng: &mut R) -> Vec<T> {
    let total = items.len();
    if n >= total {
        return items;
    }
    let mut kept = Vec::with_capacity(n);
    let mut needed = n;
    let mut remaining = total;
    for item in items {
        // P(keep) = needed / remaining.
        if (rng.gen_range(0..remaining as u64) as usize) < needed {
            kept.push(item);
            needed -= 1;
            if needed == 0 {
                break;
            }
        }
        remaining -= 1;
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn fills_then_holds_capacity() {
        let mut r = Reservoir::new(5);
        let mut g = rng(1);
        for i in 0..100u64 {
            r.offer(i, &mut g);
            assert!(r.items().len() <= 5);
        }
        assert_eq!(r.items().len(), 5);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Reservoir::<u64>::new(0);
    }

    #[test]
    fn short_stream_keeps_everything() {
        let mut r = Reservoir::new(10);
        let mut g = rng(2);
        for i in 0..7u64 {
            assert!(r.offer(i, &mut g));
        }
        let mut items = r.into_items();
        items.sort_unstable();
        assert_eq!(items, (0..7).collect::<Vec<_>>());
    }

    /// Chi-square style uniformity check: every record should appear in
    /// the final sample with frequency ~ n/N across trials.
    fn inclusion_counts<F>(n: usize, total: u64, trials: u32, mut run: F) -> Vec<u32>
    where
        F: FnMut(u64) -> Vec<u64>,
    {
        let mut counts = vec![0u32; total as usize];
        for t in 0..trials {
            for item in run(t as u64) {
                counts[item as usize] += 1;
            }
        }
        let expected = trials as f64 * n as f64 / total as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected) / expected.sqrt();
            // 6-sigma-ish bound on a Poisson-ish count; loose but catches
            // systematic bias (e.g. never replacing early items).
            assert!(dev.abs() < 6.0, "item {i}: count {c}, expected {expected:.1}");
        }
        counts
    }

    #[test]
    fn algorithm_r_is_uniform() {
        inclusion_counts(10, 100, 2000, |seed| {
            let mut r = Reservoir::new(10);
            let mut g = rng(seed * 7 + 1);
            for i in 0..100u64 {
                r.offer(i, &mut g);
            }
            r.into_items()
        });
    }

    #[test]
    fn skip_reservoir_is_uniform() {
        inclusion_counts(10, 100, 2000, |seed| {
            let mut r = SkipReservoir::new(10);
            let mut g = rng(seed * 13 + 5);
            for i in 0..100u64 {
                r.offer(i, &mut g);
            }
            r.into_items()
        });
    }

    #[test]
    fn skip_reservoir_always_keeps_exactly_capacity() {
        let mut r = SkipReservoir::new(25);
        let mut g = rng(3);
        for i in 0..10_000u64 {
            r.offer(i, &mut g);
        }
        assert_eq!(r.items().len(), 25);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn skip_reservoir_accepts_far_fewer_than_offers() {
        // The whole point of skip generation: acceptances ~ n log(N/n),
        // not N.
        let mut r = SkipReservoir::new(10);
        let mut g = rng(4);
        let mut acceptances = 0u64;
        for i in 0..100_000u64 {
            if r.offer(i, &mut g) {
                acceptances += 1;
            }
        }
        // n + n*ln(N/n) = 10 + 10*ln(10000) ~ 102; allow generous slack.
        assert!(acceptances < 400, "acceptances = {acceptances}");
    }

    #[test]
    fn pending_skip_reports_zero_while_filling() {
        let mut r = SkipReservoir::new(4);
        let mut g = rng(5);
        assert_eq!(r.pending_skip(), 0);
        for i in 0..3u64 {
            r.offer(i, &mut g);
            assert_eq!(r.pending_skip(), 0);
        }
    }

    #[test]
    fn select_exactly_returns_exact_count() {
        let mut g = rng(6);
        let out = select_exactly((0..100u64).collect(), 17, &mut g);
        assert_eq!(out.len(), 17);
        // All distinct, all from the input.
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 17);
        assert!(sorted.iter().all(|&x| x < 100));
    }

    #[test]
    fn select_exactly_with_n_at_least_len_is_identity() {
        let mut g = rng(7);
        let out = select_exactly(vec![1u64, 2, 3], 3, &mut g);
        assert_eq!(out, vec![1, 2, 3]);
        let out = select_exactly(vec![1u64, 2, 3], 10, &mut g);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn select_exactly_is_uniform() {
        inclusion_counts(10, 50, 3000, |seed| {
            let mut g = rng(seed * 31 + 11);
            select_exactly((0..50u64).collect(), 10, &mut g)
        });
    }

    #[test]
    fn clear_resets_reservoir() {
        let mut r = Reservoir::new(3);
        let mut g = rng(8);
        for i in 0..10u64 {
            r.offer(i, &mut g);
        }
        r.clear();
        assert_eq!(r.seen(), 0);
        assert!(r.items().is_empty());
        // Still usable after clear.
        r.offer(99, &mut g);
        assert_eq!(r.items(), &[99]);
    }
}
