//! Multi-query execution: one low-level node feeding several high-level
//! queries — how the paper's accuracy experiment runs "two query sets
//! simultaneously" (§7.1: the exact aggregation and the sampling query
//! over the same feed), and how a production Gigascope hosts many
//! queries on one tap.

use sso_obs::Stopwatch;

use sso_core::{OpError, SamplingOperator, WindowOutput};
use sso_types::Packet;

use crate::engine::NodeStats;
use crate::nodes::LowLevelQuery;

/// One low-level node fanning out to several named high-level queries.
pub struct FanoutPlan {
    /// The shared low-level (packet-side) node.
    pub low: Box<dyn LowLevelQuery>,
    /// The high-level queries, each receiving every forwarded tuple.
    pub highs: Vec<(String, SamplingOperator)>,
}

/// One high-level query's results from a fan-out run.
#[derive(Debug)]
pub struct QueryResult {
    /// The query's name (as given in the plan).
    pub name: String,
    /// Node accounting.
    pub stats: NodeStats,
    /// Every closed window, in order.
    pub windows: Vec<WindowOutput>,
}

/// The result of a fan-out run.
#[derive(Debug)]
pub struct FanoutReport {
    /// Low-level node accounting.
    pub low: NodeStats,
    /// Per-query results, in plan order.
    pub queries: Vec<QueryResult>,
    /// Stream span (last uts − first uts).
    pub stream_span: std::time::Duration,
}

impl FanoutReport {
    /// The named query's result.
    pub fn query(&self, name: &str) -> Option<&QueryResult> {
        self.queries.iter().find(|q| q.name == name)
    }
}

/// Run several queries over one packet stream through a shared low-level
/// node.
pub fn run_fanout(
    mut plan: FanoutPlan,
    packets: impl IntoIterator<Item = Packet>,
) -> Result<FanoutReport, OpError> {
    let mut low = NodeStats { name: plan.low.name().to_string(), ..Default::default() };
    let mut results: Vec<QueryResult> = plan
        .highs
        .iter()
        .map(|(name, _)| QueryResult {
            name: name.clone(),
            stats: NodeStats { name: name.clone(), ..Default::default() },
            windows: Vec::new(),
        })
        .collect();
    let mut first_uts = None;
    let mut last_uts = 0u64;

    for pkt in packets {
        first_uts.get_or_insert(pkt.uts);
        last_uts = pkt.uts;
        low.tuples_in += 1;
        let sw = Stopwatch::start();
        let forwarded = plan.low.process(&pkt);
        low.busy += sw.elapsed();
        let Some(tuple) = forwarded else {
            continue;
        };
        low.tuples_out += 1;
        for ((_, op), result) in plan.highs.iter_mut().zip(results.iter_mut()) {
            result.stats.tuples_in += 1;
            let sw = Stopwatch::start();
            let out = op.process(&tuple)?;
            result.stats.busy += sw.elapsed();
            if let Some(w) = out {
                result.stats.tuples_out += w.rows.len() as u64;
                result.windows.push(w);
            }
        }
    }
    for tuple in plan.low.finish() {
        low.tuples_out += 1;
        for ((_, op), result) in plan.highs.iter_mut().zip(results.iter_mut()) {
            result.stats.tuples_in += 1;
            if let Some(w) = op.process(&tuple)? {
                result.stats.tuples_out += w.rows.len() as u64;
                result.windows.push(w);
            }
        }
    }
    for ((_, op), result) in plan.highs.iter_mut().zip(results.iter_mut()) {
        if let Some(w) = op.finish()? {
            result.stats.tuples_out += w.rows.len() as u64;
            result.windows.push(w);
        }
    }
    let stream_span =
        std::time::Duration::from_nanos(last_uts.saturating_sub(first_uts.unwrap_or(0)));
    Ok(FanoutReport { low, queries: results, stream_span })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodes::SelectionNode;
    use sso_core::libs::subset_sum::SubsetSumOpConfig;
    use sso_core::queries;
    use sso_netgen::research_feed;

    /// The §7.1 methodology: the exact aggregation and the sampling
    /// query run simultaneously over the same feed; per window, the
    /// sampling estimate is compared to the exact sum.
    #[test]
    fn exact_and_sampled_queries_run_side_by_side() {
        let packets = research_feed(301).take_seconds(10);
        let cfg = SubsetSumOpConfig { target: 200, initial_z: 1.0, ..Default::default() };
        let plan = FanoutPlan {
            low: Box::new(SelectionNode::pass_all()),
            highs: vec![
                ("actual".into(), SamplingOperator::new(queries::total_sum_query(5)).unwrap()),
                (
                    "sampled".into(),
                    SamplingOperator::new(queries::subset_sum_query(5, cfg, false).unwrap())
                        .unwrap(),
                ),
            ],
        };
        let n = packets.len() as u64;
        let report = run_fanout(plan, packets).unwrap();
        assert_eq!(report.low.tuples_in, n);
        let actual = report.query("actual").unwrap();
        let sampled = report.query("sampled").unwrap();
        assert_eq!(actual.stats.tuples_in, n, "every query sees every tuple");
        assert_eq!(actual.windows.len(), sampled.windows.len());
        for (wa, ws) in actual.windows.iter().zip(&sampled.windows) {
            let exact = wa.rows[0].get(1).as_f64().unwrap();
            let est: f64 = ws.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.25, "window {}: est {est:.0} vs {exact:.0}", wa.window);
        }
    }

    #[test]
    fn fanout_queries_are_independent() {
        // The same query twice must produce identical outputs: queries
        // must not share or perturb each other's state.
        let packets = research_feed(302).take_seconds(5);
        let plan = FanoutPlan {
            low: Box::new(SelectionNode::pass_all()),
            highs: vec![
                ("a".into(), SamplingOperator::new(queries::total_sum_query(2)).unwrap()),
                ("b".into(), SamplingOperator::new(queries::total_sum_query(2)).unwrap()),
            ],
        };
        let report = run_fanout(plan, packets).unwrap();
        let a = report.query("a").unwrap();
        let b = report.query("b").unwrap();
        assert_eq!(a.windows.len(), b.windows.len());
        for (wa, wb) in a.windows.iter().zip(&b.windows) {
            assert_eq!(wa.rows, wb.rows);
        }
    }

    #[test]
    fn query_lookup_by_name() {
        let packets = research_feed(303).take_seconds(1);
        let plan = FanoutPlan {
            low: Box::new(SelectionNode::pass_all()),
            highs: vec![(
                "only".into(),
                SamplingOperator::new(queries::total_sum_query(1)).unwrap(),
            )],
        };
        let report = run_fanout(plan, packets).unwrap();
        assert!(report.query("only").is_some());
        assert!(report.query("missing").is_none());
    }
}
