//! Flight-recorder dump format property: for arbitrary dumps,
//! encode → decode → encode is **byte-identical**, and decode rejects
//! any single-bit corruption of the framed payloads. This is what lets
//! `sso trace` trust a dump written moments before a crash: either the
//! frames checksum clean and decode to exactly what was recorded, or
//! the file fails loudly.

use proptest::prelude::*;
use sso_profile::{
    decode_dump, encode_dump, Dump, DumpReason, Event, LaneDump, LaneKind, Stage, AUX_MAX,
};

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::Ingest),
        Just(Stage::Route),
        Just(Stage::RingWait),
        Just(Stage::Process),
        Just(Stage::Flush),
        Just(Stage::BarrierWait),
        Just(Stage::Merge),
        Just(Stage::Emit),
        Just(Stage::Low),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    // The vendored proptest implements Strategy for tuples up to five
    // elements — nest the id fields.
    (
        (stage_strategy(), any::<u64>(), any::<u64>()),
        (any::<u16>(), any::<u32>(), any::<u32>(), any::<u64>()),
    )
        .prop_map(|((stage, t_ns, dur_ns), (shard, window, batch, aux))| {
            // The constructor clamps aux to 40 bits, which is exactly
            // why re-encoding is lossless.
            Event::new(stage, t_ns, dur_ns).shard(shard).window(window).batch(batch).aux(aux)
        })
}

fn lane_strategy() -> impl Strategy<Value = LaneDump> {
    (
        prop_oneof![
            Just(LaneKind::Router),
            Just(LaneKind::Worker),
            Just(LaneKind::Merge),
            Just(LaneKind::Low)
        ],
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(event_strategy(), 0..24),
    )
        .prop_map(|(kind, index, dropped, events)| LaneDump { kind, index, dropped, events })
}

fn dump_strategy() -> impl Strategy<Value = Dump> {
    (
        prop_oneof![
            Just(DumpReason::Manual),
            Just(DumpReason::Panic),
            Just(DumpReason::Straggle),
            Just(DumpReason::Shed),
            Just(DumpReason::Crash)
        ],
        proptest::collection::vec(lane_strategy(), 0..6),
    )
        .prop_map(|(reason, lanes)| Dump { reason, lanes })
}

proptest! {
    #[test]
    fn encode_decode_encode_is_byte_identical(dump in dump_strategy()) {
        let bytes = encode_dump(&dump);
        let decoded = decode_dump(&bytes).expect("canonical bytes decode");
        prop_assert_eq!(&decoded, &dump);
        prop_assert_eq!(encode_dump(&decoded), bytes);
    }

    #[test]
    fn clamped_aux_survives_and_events_round_trip(dump in dump_strategy()) {
        let decoded = decode_dump(&encode_dump(&dump)).expect("decodes");
        for (l, dl) in dump.lanes.iter().zip(decoded.lanes.iter()) {
            prop_assert_eq!(l.events.len(), dl.events.len());
            for (e, de) in l.events.iter().zip(dl.events.iter()) {
                prop_assert!(de.aux <= AUX_MAX);
                prop_assert_eq!(e, de);
            }
        }
    }

    #[test]
    fn payload_bit_flips_are_rejected(dump in dump_strategy(), flip in any::<usize>()) {
        let mut bytes = encode_dump(&dump);
        // Flip one bit past the 12-byte magic+version preamble: it
        // lands in a checksummed frame and must not decode clean to a
        // different dump.
        let start = 12;
        let i = start + flip % (bytes.len() - start);
        bytes[i] ^= 1 << (i % 8);
        match decode_dump(&bytes) {
            Err(_) => {}
            Ok(d) => prop_assert_eq!(d, dump, "a surviving decode must be the original"),
        }
    }

    #[test]
    fn truncation_never_decodes(dump in dump_strategy(), cut in 1usize..32) {
        let bytes = encode_dump(&dump);
        if bytes.len() > cut {
            prop_assert!(decode_dump(&bytes[..bytes.len() - cut]).is_err());
        }
    }
}
