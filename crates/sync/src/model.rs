//! The deterministic model checker behind the `model` feature.
//!
//! [`Model::check`] runs a closure repeatedly, once per explored
//! schedule. Threads spawned through [`crate::thread::spawn`] run on
//! real OS threads but are serialized: a scheduler baton lets exactly
//! one thread execute at a time, and every facade operation (atomic
//! access, cell access, mutex lock/unlock, fence, yield, spawn, join)
//! is one scheduling decision. The explorer drives a depth-first search
//! over those decisions, pruned with dynamic partial-order reduction:
//! only reorderings of *dependent* operations (same location, at least
//! one write) seed new schedules.
//!
//! Synchronization is tracked with vector clocks, ThreadSanitizer
//! style: values are sequentially consistent (the real atomics are
//! used for storage), but clocks only propagate along the *declared*
//! orderings — an `Acquire` load joins a location's clock only if it
//! was published by a `Release`-or-stronger store (or an RMW extending
//! its release sequence). A missing `Release`/`Acquire` pair therefore
//! surfaces as a happens-before data race on the [`crate::SyncCell`]
//! data it was supposed to order.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model-thread ids (dense, small).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `self ≤ other` pointwise: everything `self` knows, `other` knows.
    fn leq(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What a visible operation did (recorded post-execution, so a failed
/// CAS shows up as the load it behaved as).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Load(Ordering),
    Store(Ordering),
    Rmw(Ordering),
    CellRead,
    CellWrite,
    Lock,
    Unlock,
    Fence(Ordering),
    Yield,
    Spawn,
    Join,
}

impl Op {
    fn is_write(self) -> bool {
        matches!(self, Op::Store(_) | Op::Rmw(_) | Op::CellWrite | Op::Unlock)
    }
}

#[derive(Clone, Debug)]
struct Event {
    tid: usize,
    op: Op,
    /// Display id of the touched location (`None` for fence/yield/
    /// spawn/join), assigned in first-touch order.
    loc: Option<usize>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} ", self.tid)?;
        match self.op {
            Op::Load(o) => write!(f, "load({o:?})")?,
            Op::Store(o) => write!(f, "store({o:?})")?,
            Op::Rmw(o) => write!(f, "rmw({o:?})")?,
            Op::CellRead => write!(f, "cell-read")?,
            Op::CellWrite => write!(f, "cell-write")?,
            Op::Lock => write!(f, "lock")?,
            Op::Unlock => write!(f, "unlock")?,
            Op::Fence(o) => write!(f, "fence({o:?})")?,
            Op::Yield => write!(f, "yield")?,
            Op::Spawn => write!(f, "spawn")?,
            Op::Join => write!(f, "join")?,
        }
        if let Some(l) = self.loc {
            write!(f, " @a{l}")?;
        }
        Ok(())
    }
}

/// Two events fail to commute: same location with at least one write,
/// or lock-protocol ops on the same mutex, or a yield against any
/// write (a write is what re-enables a yielded spinner).
fn dependent(a: &Event, b: &Event) -> bool {
    if a.tid == b.tid {
        return false;
    }
    if matches!(a.op, Op::Yield) {
        return b.op.is_write();
    }
    if matches!(b.op, Op::Yield) {
        return a.op.is_write();
    }
    match (a.loc, b.loc) {
        (Some(x), Some(y)) if x == y => match (a.op, b.op) {
            // Mutex protocol: two acquires of the same (free) mutex are
            // the only co-enabled dependent pair. Unlock↔lock and
            // unlock↔unlock can never both be enabled — one requires
            // the mutex held, the other free — so there is no
            // reordering to backtrack into, and treating them as
            // dependent would shadow the lock↔lock pair (DPOR only
            // looks at the *last* dependent event).
            (Op::Lock, Op::Lock) => true,
            (Op::Lock | Op::Unlock, _) | (_, Op::Lock | Op::Unlock) => false,
            _ => a.op.is_write() || b.op.is_write(),
        },
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Failures and results
// ---------------------------------------------------------------------------

/// Why a check failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Two unordered accesses to the same `SyncCell`, at least one a write.
    DataRace,
    /// A plain store clobbered a value the storing thread loaded before
    /// another thread changed it (use an RMW or CAS loop instead).
    LostUpdate,
    /// No thread can make progress (includes spin livelock: every live
    /// thread yield-blocked with no writer left to wake it).
    Deadlock,
    /// The closure panicked (assertion failure, index out of bounds, …).
    Panic,
    /// A bound was hit (`max_steps`); the run is inconclusive, not racy.
    Limit,
}

/// A failed check: what went wrong, on which schedule, with the event
/// trace that led there. `schedule` can be fed to [`Model::replay`] to
/// deterministically re-execute the failing interleaving.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Thread choice per decision — the replayable schedule.
    pub schedule: Vec<usize>,
    /// Human-readable event per decision.
    pub trace: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model check failed: {:?}: {}", self.kind, self.message)?;
        writeln!(f, "replayable schedule: {:?}", self.schedule)?;
        writeln!(f, "trace ({} events):", self.trace.len())?;
        for (i, t) in self.trace.iter().enumerate() {
            writeln!(f, "  [{i:3}] {t}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

/// A successful exploration.
#[derive(Clone, Copy, Debug)]
pub struct Explored {
    /// Number of schedules executed.
    pub schedules: usize,
    /// `true` if the state space was exhausted within the bounds
    /// (`false` means `max_schedules` stopped the search early).
    pub complete: bool,
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

/// A parked thread's announced next operation. Some fields are only
/// read through `Debug` (the deadlock report names what each thread
/// was parked on).
#[derive(Clone, Debug)]
#[allow(dead_code)]
enum Pending {
    Atomic(Op, usize),
    Cell(Op, usize),
    Lock(usize),
    Unlock(usize),
    Fence(Ordering),
    /// Yield, with the global write epoch at announce time: enabled
    /// only once some other thread has written since.
    Yield(u64),
    Spawn,
    /// Join on a model thread id: enabled once that thread finished.
    Join(usize),
}

#[derive(Default)]
struct ThreadState {
    parked: Option<Pending>,
    finished: bool,
    clock: VClock,
    /// Clocks gathered by `Relaxed` loads, claimable by an acquire fence.
    acq_pending: VClock,
    /// Clock staged by a release fence, published by later `Relaxed` stores.
    fence_release: VClock,
    /// Per-location version observed at this thread's last atomic load.
    last_load: HashMap<usize, u64>,
    /// Global write epoch at this thread's last completed op. A yield
    /// blocks until a write lands *after* that op — capturing the epoch
    /// at yield time instead would lose wakeups (the writer may finish
    /// between the spin body's check and the yield).
    seen_epoch: u64,
}

#[derive(Default)]
struct Loc {
    /// Display id (first-touch order).
    id: usize,
    /// Clock published by the last release store (grown by RMWs
    /// extending the release sequence), joined by acquire loads.
    release: VClock,
    /// Bumped on every atomic write; drives lost-update detection.
    version: u64,
    /// Cell state: clock of the last writer, and per-thread read marks.
    cell_write: Option<VClock>,
    cell_reads: HashMap<usize, u64>,
}

/// One decision point of the current execution.
#[derive(Clone, Debug)]
struct Branch {
    enabled: BTreeSet<usize>,
    choice: usize,
}

struct SchedState {
    threads: Vec<ThreadState>,
    live: usize,
    /// Thread currently granted the baton (executing its visible op).
    executing: Option<usize>,
    /// Thread choices to follow; extended by the default policy past
    /// its end.
    prescription: Vec<usize>,
    depth: usize,
    branches: Vec<Branch>,
    trace: Vec<Event>,
    locs: HashMap<usize, Loc>,
    next_loc_id: usize,
    /// Held model mutexes (by address).
    held: BTreeSet<usize>,
    /// Bumped on every write; wakes yield-blocked spinners.
    write_epoch: u64,
    /// The epoch of the last forced spinner wake (see `maybe_decide`):
    /// when it still equals `write_epoch`, the wake produced no real
    /// write and an all-yield stall is a genuine deadlock.
    forced_wake_epoch: Option<u64>,
    failure: Option<Failure>,
    aborting: bool,
    max_steps: usize,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind model threads after a failure.
struct Abort;

fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Scheduler {
    fn new(prescription: Vec<usize>, max_steps: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                threads: vec![ThreadState { clock: VClock(vec![1]), ..Default::default() }],
                live: 1,
                executing: None,
                prescription,
                depth: 0,
                branches: Vec::new(),
                trace: Vec::new(),
                locs: HashMap::new(),
                next_loc_id: 0,
                held: BTreeSet::new(),
                write_epoch: 0,
                forced_wake_epoch: None,
                failure: None,
                aborting: false,
                max_steps,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Park at a visible op and wait for the baton. Returns with the
    /// baton held (`executing == Some(tid)`); the caller must finish
    /// the op via [`Self::complete`].
    fn acquire(&self, tid: usize, pending: Pending) {
        let mut st = self.state.lock().expect("model scheduler poisoned");
        st.threads[tid].parked = Some(pending);
        maybe_decide(&mut st, &self.cv);
        loop {
            if st.aborting {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.executing == Some(tid) {
                st.threads[tid].parked = None;
                return;
            }
            st = self.cv.wait(st).expect("model scheduler poisoned");
        }
    }

    /// Record the executed event, run clock bookkeeping, release the
    /// baton. If bookkeeping raised a failure, start aborting.
    fn complete(
        &self,
        tid: usize,
        ev: Event,
        book: impl FnOnce(&mut SchedState) -> Result<(), (FailureKind, String)>,
    ) {
        let mut st = self.state.lock().expect("model scheduler poisoned");
        st.threads[tid].clock.tick(tid);
        st.trace.push(ev);
        if let Err((kind, message)) = book(&mut st) {
            fail(&mut st, kind, message);
        }
        let epoch = st.write_epoch;
        st.threads[tid].seen_epoch = epoch;
        st.executing = None;
        self.cv.notify_all();
        let abort = st.aborting;
        drop(st);
        if abort {
            panic::panic_any(Abort);
        }
    }

    fn finish(&self, tid: usize) {
        let mut st = self.state.lock().expect("model scheduler poisoned");
        st.threads[tid].finished = true;
        st.live -= 1;
        maybe_decide(&mut st, &self.cv);
        self.cv.notify_all();
    }
}

fn fail(st: &mut SchedState, kind: FailureKind, message: String) {
    if st.failure.is_none() {
        st.failure = Some(Failure {
            kind,
            message,
            schedule: st.branches.iter().map(|b| b.choice).collect(),
            trace: st.trace.iter().map(|e| e.to_string()).collect(),
        });
    }
    st.aborting = true;
}

/// Is `p` runnable right now?
fn pending_enabled(st: &SchedState, p: &Pending) -> bool {
    match p {
        Pending::Lock(addr) => !st.held.contains(addr),
        Pending::Join(child) => st.threads[*child].finished,
        Pending::Yield(epoch) => st.write_epoch != *epoch,
        _ => true,
    }
}

/// If every live thread is parked (or blocked) and nobody holds the
/// baton, pick the next thread: prescription first, then
/// continue-the-last-thread, then lowest enabled id.
fn maybe_decide(st: &mut SchedState, cv: &Condvar) {
    if st.executing.is_some() || st.aborting {
        return;
    }
    let all_parked = st.threads.iter().all(|t| t.finished || t.parked.is_some());
    if !all_parked || st.live == 0 {
        return;
    }
    let runnable = |st: &SchedState| -> BTreeSet<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .filter(|(_, t)| t.parked.as_ref().is_some_and(|p| pending_enabled(st, p)))
            .map(|(i, _)| i)
            .collect()
    };
    let mut enabled = runnable(st);
    if enabled.is_empty() {
        // A yield parks until a *new* write arrives — but a spinner
        // that itself wrote after the state it failed on had already
        // changed (e.g. a wait-entry hook updating a gauge after the
        // consumer's pop) would park here forever even though its next
        // re-read succeeds. When every live thread is yield-parked,
        // grant one forced wake; only if the wake round produces no
        // real write is the stall a genuine deadlock/livelock.
        let all_yield = st
            .threads
            .iter()
            .filter(|t| !t.finished)
            .all(|t| matches!(t.parked, Some(Pending::Yield(_))));
        if all_yield && st.forced_wake_epoch != Some(st.write_epoch) {
            st.write_epoch += 1;
            st.forced_wake_epoch = Some(st.write_epoch);
            enabled = runnable(st);
        }
    }
    if enabled.is_empty() {
        let waits: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .map(|(i, t)| format!("t{i} blocked on {:?}", t.parked))
            .collect();
        fail(
            st,
            FailureKind::Deadlock,
            format!("no thread can make progress: {}", waits.join("; ")),
        );
        cv.notify_all();
        return;
    }
    if st.depth >= st.max_steps {
        fail(st, FailureKind::Limit, format!("schedule exceeded max_steps = {}", st.max_steps));
        cv.notify_all();
        return;
    }
    let d = st.depth;
    let choice = match st.prescription.get(d) {
        Some(&c) if enabled.contains(&c) => c,
        Some(&c) => {
            // Stale prescription (nondeterministic closure); fall back.
            debug_assert!(false, "prescribed t{c} not enabled at depth {d}");
            *enabled.iter().next().expect("nonempty")
        }
        None => {
            let last = st.trace.last().map(|e| e.tid);
            let c = match last {
                Some(t) if enabled.contains(&t) => t,
                _ => *enabled.iter().next().expect("nonempty"),
            };
            st.prescription.push(c);
            c
        }
    };
    st.branches.push(Branch { enabled, choice });
    st.depth += 1;
    st.executing = Some(choice);
    cv.notify_all();
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn loc_entry(st: &mut SchedState, addr: usize) -> &mut Loc {
    let next = &mut st.next_loc_id;
    st.locs.entry(addr).or_insert_with(|| {
        let id = *next;
        *next += 1;
        Loc { id, ..Default::default() }
    })
}

// ---------------------------------------------------------------------------
// Thread-local context: the facade's entry point
// ---------------------------------------------------------------------------

pub(crate) mod ctx {
    use super::*;
    use std::cell::RefCell;

    /// Kind of plain atomic op, as announced by the facade.
    #[derive(Clone, Copy, Debug)]
    pub(crate) enum AtomKind {
        Load,
        Store,
        Rmw,
    }

    pub(crate) struct Ctx {
        sched: Arc<Scheduler>,
        tid: usize,
    }

    thread_local! {
        static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    }

    pub(crate) fn in_model() -> bool {
        CTX.with(|c| c.borrow().is_some())
    }

    /// Run `f` with this thread's model context, or `None` outside a
    /// model run (the facade then falls through to the raw op).
    pub(crate) fn with<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
        CTX.with(|c| {
            // A shared borrow is held across `f`, which may re-enter
            // `with` from nested facade calls — shared borrows stack.
            let b = c.borrow();
            b.as_ref().map(f)
        })
    }

    fn set(ctx: Option<Ctx>) {
        CTX.with(|c| *c.borrow_mut() = ctx);
    }

    impl Ctx {
        /// During abort unwinding, destructors may still hit facade
        /// ops; run them raw instead of re-entering the scheduler.
        fn bypass(&self) -> bool {
            let st = self.sched.state.lock().expect("model scheduler poisoned");
            st.aborting && std::thread::panicking()
        }

        pub(crate) fn atomic<R>(
            &self,
            addr: usize,
            kind: AtomKind,
            ord: Ordering,
            body: impl FnOnce() -> R,
        ) -> R {
            if self.bypass() {
                return body();
            }
            let tid = self.tid;
            let (pending, op) = match kind {
                AtomKind::Load => (Pending::Atomic(Op::Load(ord), addr), Op::Load(ord)),
                AtomKind::Store => (Pending::Atomic(Op::Store(ord), addr), Op::Store(ord)),
                AtomKind::Rmw => (Pending::Atomic(Op::Rmw(ord), addr), Op::Rmw(ord)),
            };
            self.sched.acquire(tid, pending);
            let r = body();
            self.sched.complete(tid, Event { tid, op, loc: None }, |st| {
                let loc = loc_entry(st, addr);
                let id = loc.id;
                let result = apply_atomic(st, tid, addr, op);
                if let Some(ev) = st.trace.last_mut() {
                    ev.loc = Some(id);
                }
                result
            });
            r
        }

        pub(crate) fn cas<R>(
            &self,
            addr: usize,
            success: Ordering,
            failure: Ordering,
            body: impl FnOnce() -> (R, bool),
        ) -> R {
            if self.bypass() {
                return body().0;
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Atomic(Op::Rmw(success), addr));
            let (r, ok) = body();
            let op = if ok { Op::Rmw(success) } else { Op::Load(failure) };
            self.sched.complete(tid, Event { tid, op, loc: None }, |st| {
                let loc = loc_entry(st, addr);
                let id = loc.id;
                let result = apply_atomic(st, tid, addr, op);
                if let Some(ev) = st.trace.last_mut() {
                    ev.loc = Some(id);
                }
                result
            });
            r
        }

        pub(crate) fn cell_read<R>(&self, addr: usize, body: impl FnOnce() -> R) -> R {
            self.cell(addr, Op::CellRead, body)
        }

        pub(crate) fn cell_write<R>(&self, addr: usize, body: impl FnOnce() -> R) -> R {
            self.cell(addr, Op::CellWrite, body)
        }

        fn cell<R>(&self, addr: usize, op: Op, body: impl FnOnce() -> R) -> R {
            if self.bypass() {
                return body();
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Cell(op, addr));
            // Race check happens BEFORE the raw access: a racy access
            // is UB in the modeled program, so report instead of doing
            // it. Under the serialized scheduler the access itself is
            // physically safe either way, but the report must win.
            {
                let mut st = self.sched.state.lock().expect("model scheduler poisoned");
                let clock = st.threads[tid].clock.clone();
                let loc = loc_entry(&mut st, addr);
                let id = loc.id;
                let mut racy = None;
                if let Some(w) = &loc.cell_write {
                    if !w.leq(&clock) {
                        racy = Some("concurrent write not ordered before this access");
                    }
                }
                if op == Op::CellWrite && racy.is_none() {
                    for (&u, &c) in &loc.cell_reads {
                        if clock.get(u) < c {
                            racy = Some("concurrent read not ordered before this write");
                            break;
                        }
                    }
                }
                if let Some(why) = racy {
                    let kind_s = if op == Op::CellWrite { "write" } else { "read" };
                    st.trace.push(Event { tid, op, loc: Some(id) });
                    fail(
                        &mut st,
                        FailureKind::DataRace,
                        format!("data race: t{tid} cell-{kind_s} @a{id}: {why}"),
                    );
                    self.sched.cv.notify_all();
                    drop(st);
                    panic::panic_any(Abort);
                }
            }
            let r = body();
            self.sched.complete(tid, Event { tid, op, loc: None }, move |st| {
                let clock = st.threads[tid].clock.clone();
                let epoch = clock.get(tid);
                let loc = loc_entry(st, addr);
                let id = loc.id;
                if op == Op::CellWrite {
                    loc.cell_write = Some(clock);
                    loc.cell_reads.clear();
                    st.write_epoch += 1;
                } else {
                    loc.cell_reads.insert(tid, epoch);
                }
                if let Some(ev) = st.trace.last_mut() {
                    ev.loc = Some(id);
                }
                Ok(())
            });
            r
        }

        pub(crate) fn mutex_lock(&self, addr: usize) {
            if self.bypass() {
                return;
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Lock(addr));
            self.sched.complete(tid, Event { tid, op: Op::Lock, loc: None }, |st| {
                let loc = loc_entry(st, addr);
                let id = loc.id;
                let release = loc.release.clone();
                st.threads[tid].clock.join(&release);
                st.held.insert(addr);
                if let Some(ev) = st.trace.last_mut() {
                    ev.loc = Some(id);
                }
                Ok(())
            });
        }

        pub(crate) fn mutex_unlock(&self, addr: usize) {
            if self.bypass() {
                return;
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Unlock(addr));
            self.sched.complete(tid, Event { tid, op: Op::Unlock, loc: None }, |st| {
                let clock = st.threads[tid].clock.clone();
                let loc = loc_entry(st, addr);
                let id = loc.id;
                loc.release = clock;
                st.held.remove(&addr);
                st.write_epoch += 1;
                if let Some(ev) = st.trace.last_mut() {
                    ev.loc = Some(id);
                }
                Ok(())
            });
        }

        pub(crate) fn fence(&self, ord: Ordering) {
            if self.bypass() {
                return;
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Fence(ord));
            self.sched.complete(tid, Event { tid, op: Op::Fence(ord), loc: None }, |st| {
                let t = &mut st.threads[tid];
                if is_acquire(ord) {
                    let pend = t.acq_pending.clone();
                    t.clock.join(&pend);
                }
                if is_release(ord) {
                    t.fence_release = t.clock.clone();
                }
                Ok(())
            });
        }

        pub(crate) fn yield_now(&self) {
            if self.bypass() {
                return;
            }
            let tid = self.tid;
            let epoch = {
                let st = self.sched.state.lock().expect("model scheduler poisoned");
                st.threads[tid].seen_epoch
            };
            self.sched.acquire(tid, Pending::Yield(epoch));
            self.sched.complete(tid, Event { tid, op: Op::Yield, loc: None }, |_| Ok(()));
        }

        pub(crate) fn spawn(&self, f: Box<dyn FnOnce() + Send>) -> usize {
            if self.bypass() {
                // No meaningful way to model-spawn while aborting; run
                // inline so the closure's effects still happen.
                f();
                return usize::MAX;
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Spawn);
            let child = {
                let mut st = self.sched.state.lock().expect("model scheduler poisoned");
                let child = st.threads.len();
                let mut clock = st.threads[tid].clock.clone();
                clock.tick(child);
                st.threads.push(ThreadState { clock, ..Default::default() });
                st.live += 1;
                child
            };
            let sched = self.sched.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sso-model-t{child}"))
                .spawn(move || run_model_thread(sched, child, f))
                .expect("spawn model thread");
            self.sched.handles.lock().expect("handles").push(handle);
            self.sched.complete(tid, Event { tid, op: Op::Spawn, loc: None }, |_| Ok(()));
            child
        }

        pub(crate) fn join(&self, child: usize) {
            if self.bypass() {
                return;
            }
            let tid = self.tid;
            self.sched.acquire(tid, Pending::Join(child));
            self.sched.complete(tid, Event { tid, op: Op::Join, loc: None }, |st| {
                let child_clock = st.threads[child].clock.clone();
                st.threads[tid].clock.join(&child_clock);
                Ok(())
            });
        }
    }

    /// Clock bookkeeping shared by plain atomics and CAS outcomes.
    fn apply_atomic(
        st: &mut SchedState,
        tid: usize,
        addr: usize,
        op: Op,
    ) -> Result<(), (FailureKind, String)> {
        match op {
            Op::Load(ord) => {
                let release = loc_entry(st, addr).release.clone();
                let version = loc_entry(st, addr).version;
                let t = &mut st.threads[tid];
                if is_acquire(ord) {
                    t.clock.join(&release);
                } else {
                    t.acq_pending.join(&release);
                }
                t.last_load.insert(addr, version);
                Ok(())
            }
            Op::Store(ord) => {
                let (version, id) = {
                    let loc = loc_entry(st, addr);
                    (loc.version, loc.id)
                };
                if let Some(&seen) = st.threads[tid].last_load.get(&addr) {
                    if seen != version {
                        return Err((
                            FailureKind::LostUpdate,
                            format!(
                                "lost update: t{tid} stores to @a{id} but the value \
                                 changed since its last load (loaded v{seen}, now v{version}); \
                                 use fetch_add/compare_exchange"
                            ),
                        ));
                    }
                }
                let clock = st.threads[tid].clock.clone();
                let staged = st.threads[tid].fence_release.clone();
                let loc = loc_entry(st, addr);
                loc.version += 1;
                // A release store publishes this thread's clock; a
                // relaxed store publishes only what a prior release
                // fence staged (and severs any earlier release).
                loc.release = if is_release(ord) { clock } else { staged };
                let v = loc.version;
                st.threads[tid].last_load.insert(addr, v);
                st.write_epoch += 1;
                Ok(())
            }
            Op::Rmw(ord) => {
                let release = loc_entry(st, addr).release.clone();
                {
                    let t = &mut st.threads[tid];
                    if is_acquire(ord) {
                        t.clock.join(&release);
                    } else {
                        t.acq_pending.join(&release);
                    }
                }
                let clock = st.threads[tid].clock.clone();
                let loc = loc_entry(st, addr);
                loc.version += 1;
                // An RMW extends the release sequence: the prior
                // release clock is kept even when the RMW is Relaxed,
                // and a Release RMW adds this thread's clock on top.
                if is_release(ord) {
                    loc.release.join(&clock);
                }
                let v = loc.version;
                st.threads[tid].last_load.insert(addr, v);
                st.write_epoch += 1;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    pub(super) fn run_model_thread(sched: Arc<Scheduler>, tid: usize, f: Box<dyn FnOnce() + Send>) {
        set(Some(Ctx { sched: sched.clone(), tid }));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        set(None);
        if let Err(payload) = result {
            if payload.downcast_ref::<Abort>().is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                let mut st = sched.state.lock().expect("model scheduler poisoned");
                fail(&mut st, FailureKind::Panic, format!("t{tid} panicked: {msg}"));
                sched.cv.notify_all();
            }
        }
        sched.finish(tid);
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Persistent DFS state for one decision depth, shared across
/// executions with an identical prefix.
struct StackFrame {
    enabled: BTreeSet<usize>,
    done: BTreeSet<usize>,
    /// DPOR: threads whose op was found dependent with a later event
    /// and must be tried at this point.
    backtrack: BTreeSet<usize>,
}

/// Model-check builder. See the crate docs for the memory-model rules.
#[derive(Clone, Debug)]
pub struct Model {
    max_schedules: usize,
    max_steps: usize,
    dpor: bool,
    replay: Option<Vec<usize>>,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    pub fn new() -> Self {
        Model { max_schedules: 50_000, max_steps: 20_000, dpor: true, replay: None }
    }

    /// Stop after this many schedules (`Explored::complete` turns false).
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Fail any single schedule longer than `n` decisions with
    /// [`FailureKind::Limit`] (guards runaway loops).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Disable partial-order reduction (full DFS over enabled sets).
    pub fn dpor(mut self, on: bool) -> Self {
        self.dpor = on;
        self
    }

    /// Execute exactly one schedule — the one a [`Failure`] printed.
    pub fn replay(mut self, schedule: Vec<usize>) -> Self {
        self.replay = Some(schedule);
        self
    }

    /// Explore interleavings of `f`. `f` runs once per schedule and
    /// must build its state from scratch each time (it gets no input;
    /// capture configuration by value).
    pub fn check(self, f: impl Fn() + Send + Sync + 'static) -> Result<Explored, Box<Failure>> {
        install_panic_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);

        if let Some(schedule) = self.replay {
            let (_, _, failure) = run_one(&f, schedule, self.max_steps);
            return match failure {
                Some(fl) => Err(Box::new(fl)),
                None => Ok(Explored { schedules: 1, complete: false }),
            };
        }

        let mut stack: Vec<StackFrame> = Vec::new();
        let mut schedules = 0usize;
        let mut prescription: Vec<usize> = Vec::new();

        loop {
            if schedules >= self.max_schedules {
                return Ok(Explored { schedules, complete: false });
            }
            schedules += 1;
            let (branches, events, failure) = run_one(&f, prescription, self.max_steps);
            if let Some(fl) = failure {
                return Err(Box::new(fl));
            }

            // Fold this execution into the DFS stack. The prefix up to
            // the backtrack point is unchanged from the previous run,
            // so frames stay valid; deeper frames are fresh.
            let path: Vec<usize> = branches.iter().map(|b| b.choice).collect();
            for (d, b) in branches.iter().enumerate() {
                if d < stack.len() {
                    stack[d].done.insert(b.choice);
                } else {
                    stack.push(StackFrame {
                        enabled: b.enabled.clone(),
                        done: BTreeSet::from([b.choice]),
                        backtrack: BTreeSet::new(),
                    });
                }
            }
            stack.truncate(branches.len());

            if self.dpor {
                // Classic DPOR: for each event, find the most recent
                // dependent event of another thread; its decision point
                // must also try (roughly) this event's thread.
                for (j, ej) in events.iter().enumerate() {
                    let Some(i) = (0..j).rev().find(|&i| dependent(&events[i], ej)) else {
                        continue;
                    };
                    let frame = &mut stack[i];
                    if frame.enabled.contains(&ej.tid) {
                        frame.backtrack.insert(ej.tid);
                    } else {
                        // ej's thread wasn't schedulable there; try
                        // everything enabled (conservative).
                        let all = frame.enabled.clone();
                        frame.backtrack.extend(all);
                    }
                }
            }

            // Deepest frame with an untried candidate.
            let next = (0..stack.len()).rev().find_map(|d| {
                let fr = &stack[d];
                let pool = if self.dpor { &fr.backtrack } else { &fr.enabled };
                pool.iter().find(|c| !fr.done.contains(c)).map(|&c| (d, c))
            });
            match next {
                Some((d, c)) => {
                    prescription = path[..d].to_vec();
                    prescription.push(c);
                    stack.truncate(d + 1);
                }
                None => return Ok(Explored { schedules, complete: true }),
            }
        }
    }
}

/// Explore with default bounds.
pub fn check(f: impl Fn() + Send + Sync + 'static) -> Result<Explored, Box<Failure>> {
    Model::new().check(f)
}

fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    prescription: Vec<usize>,
    max_steps: usize,
) -> (Vec<Branch>, Vec<Event>, Option<Failure>) {
    let sched = Scheduler::new(prescription, max_steps);
    let root = f.clone();
    let s2 = sched.clone();
    let root_handle = std::thread::Builder::new()
        .name("sso-model-t0".into())
        .spawn(move || ctx::run_model_thread(s2, 0, Box::new(move || root())))
        .expect("spawn model root thread");

    {
        let mut st = sched.state.lock().expect("model scheduler poisoned");
        while st.live > 0 {
            st = sched.cv.wait(st).expect("model scheduler poisoned");
        }
    }
    root_handle.join().ok();
    for h in sched.handles.lock().expect("handles").drain(..) {
        h.join().ok();
    }

    let sched = Arc::try_unwrap(sched).unwrap_or_else(|_| panic!("scheduler still shared"));
    let st = sched.state.into_inner().expect("model scheduler poisoned");
    (st.branches, st.trace, st.failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hint, thread, SyncCell, SyncMutex, SyncU64};

    #[test]
    fn counter_rmw_explores_and_passes() {
        let explored = check(|| {
            let c = Arc::new(SyncU64::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            h.join();
            assert_eq!(c.load(Ordering::Relaxed), 2);
        })
        .expect("no race in RMW counter");
        assert!(explored.complete);
        assert!(explored.schedules >= 2, "interleavings were explored: {explored:?}");
    }

    #[test]
    fn release_acquire_publication_is_race_free() {
        check(|| {
            let data = Arc::new(SyncCell::new(0u64));
            let flag = Arc::new(SyncU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                unsafe { d2.with_mut(|v| *v = 42) };
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                let v = unsafe { data.with(|v| *v) };
                assert_eq!(v, 42);
            }
            h.join();
        })
        .expect("release/acquire publication is sound");
    }

    #[test]
    fn relaxed_publication_is_a_data_race() {
        let failure = check(|| {
            let data = Arc::new(SyncCell::new(0u64));
            let flag = Arc::new(SyncU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                unsafe { d2.with_mut(|v| *v = 42) };
                f2.store(1, Ordering::Relaxed); // BUG: needs Release
            });
            if flag.load(Ordering::Acquire) == 1 {
                unsafe { data.with(|v| *v) };
            }
            h.join();
        })
        .expect_err("relaxed flag must not order the cell");
        assert_eq!(failure.kind, FailureKind::DataRace);
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn fences_upgrade_relaxed_publication() {
        check(|| {
            let data = Arc::new(SyncCell::new(0u64));
            let flag = Arc::new(SyncU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                unsafe { d2.with_mut(|v| *v = 42) };
                crate::fence(Ordering::Release);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                crate::fence(Ordering::Acquire);
                unsafe { data.with(|v| *v) };
            }
            h.join();
        })
        .expect("fence pair orders the relaxed flag");
    }

    #[test]
    fn load_then_store_loses_updates() {
        let failure = check(|| {
            let c = Arc::new(SyncU64::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed); // BUG: racy increment
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            h.join();
        })
        .expect_err("racy load+store increment must be reported");
        assert_eq!(failure.kind, FailureKind::LostUpdate);
    }

    #[test]
    fn abba_lock_order_deadlocks() {
        let failure = check(|| {
            let a = Arc::new(SyncMutex::new(()));
            let b = Arc::new(SyncMutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            h.join();
        })
        .expect_err("ABBA ordering must deadlock in some schedule");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn replay_reproduces_a_failure() {
        let scenario = || {
            let data = Arc::new(SyncCell::new(0u64));
            let flag = Arc::new(SyncU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                unsafe { d2.with_mut(|v| *v = 1) };
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                unsafe { data.with(|v| *v) };
            }
            h.join();
        };
        let failure = check(scenario).expect_err("race expected");
        let replayed = Model::new()
            .replay(failure.schedule.clone())
            .check(scenario)
            .expect_err("replaying the failing schedule reproduces the race");
        assert_eq!(replayed.kind, failure.kind);
    }

    #[test]
    fn spin_yield_wakes_on_write_and_livelock_is_deadlock() {
        check(|| {
            let flag = Arc::new(SyncU64::new(0));
            let f2 = flag.clone();
            let h = thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            while flag.load(Ordering::Acquire) == 0 {
                hint::spin_yield();
            }
            h.join();
        })
        .expect("spin loop terminates once the writer runs");

        let failure = check(|| {
            let flag = SyncU64::new(0);
            while flag.load(Ordering::Acquire) == 0 {
                hint::spin_yield();
            }
        })
        .expect_err("spinning with no writer is a livelock");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    /// A spinner that *itself writes* inside the wait loop (the
    /// wait-entry gauge pattern) can advance its own wake epoch past
    /// the very store it is waiting for: writer stores the flag, then
    /// the spinner's gauge RMW bumps the epoch, then it parks — and no
    /// further write would ever wake it. The scheduler grants one
    /// forced wake per epoch before declaring deadlock, so the re-read
    /// observes the flag; a truly writer-less spin still fails.
    #[test]
    fn self_writing_spinner_is_woken_not_deadlocked() {
        check(|| {
            let flag = Arc::new(SyncU64::new(0));
            let gauge = Arc::new(SyncU64::new(0));
            let f2 = flag.clone();
            let h = thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            while flag.load(Ordering::Acquire) == 0 {
                gauge.fetch_add(1, Ordering::Relaxed);
                hint::spin_yield();
            }
            h.join();
        })
        .expect("a spinner whose own RMW trails the store must still wake");

        // Write once at wait entry, then pure-spin with no writer: the
        // single forced wake produces no new write, so the second stall
        // is still reported as a genuine deadlock.
        let failure = check(|| {
            let flag = SyncU64::new(0);
            let gauge = SyncU64::new(0);
            let mut entered = false;
            while flag.load(Ordering::Acquire) == 0 {
                if !entered {
                    entered = true;
                    gauge.fetch_add(1, Ordering::Relaxed);
                }
                hint::spin_yield();
            }
        })
        .expect_err("one forced wake must not mask a writer-less livelock");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn mutex_guards_cells() {
        check(|| {
            let m = Arc::new(SyncMutex::new(()));
            let data = Arc::new(SyncCell::new(0u64));
            let (m2, d2) = (m.clone(), data.clone());
            let h = thread::spawn(move || {
                let _g = m2.lock();
                unsafe { d2.with_mut(|v| *v += 1) };
            });
            {
                let _g = m.lock();
                unsafe { data.with_mut(|v| *v += 1) };
            }
            h.join();
        })
        .expect("lock-protected cell writes are ordered");
    }

    #[test]
    fn assertion_failures_surface_as_panic_with_schedule() {
        let failure = check(|| {
            let c = Arc::new(SyncU64::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                c2.store(1, Ordering::Release);
            });
            // BUG (intentional): asserts a value another thread may
            // change concurrently.
            assert_eq!(c.load(Ordering::Acquire), 0, "seeded assertion");
            h.join();
        })
        .expect_err("some schedule violates the assertion");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("seeded assertion"), "{}", failure.message);
    }
}
