//! The generic sampling operator: specification and runtime.
//!
//! [`SamplingOperator::process`] implements the evaluation loop of §6.4:
//!
//! 1. compute the group-by variable values for the tuple;
//! 2. if an ordered (window-defining) group-by value changed, close the
//!    window: run each state's window-end hook, evaluate HAVING on every
//!    group, emit the sampled groups, move supergroup states to the "old"
//!    table, and clear the group and supergroup tables;
//! 3. find or create the tuple's supergroup — a new supergroup whose key
//!    existed in the previous window inherits its state via the library's
//!    `state_init(old)`;
//! 4. evaluate WHERE (with tuple, group-by values, superaggregates and
//!    SFUN states in scope); discard the tuple on false;
//! 5. update superaggregates;
//! 6. find or create the group; update its aggregates; register new
//!    groups with the supergroup and its superaggregates;
//! 7. evaluate CLEANING WHEN; when true, apply CLEANING BY to every
//!    group of this supergroup and evict the groups for which it is
//!    false (updating superaggregates).
//!
//! Three tables back this, as in §6.4: the group table, the supergroup
//! table (with its "old" twin for cross-window state carry-over), and
//! the supergroup→groups index (kept in insertion order so output is
//! deterministic).

use std::any::Any;
use std::sync::Arc;

use rustc_hash::FxHashMap;
use sso_types::wire::{put_bytes, put_tuple, put_u32, take_tuple, Reader};
use sso_types::{Tuple, Value};

use crate::agg::{AggSpec, AggState};
use crate::error::OpError;
use crate::expr::{EvalCtx, Expr};
use crate::metrics::OperatorMetrics;
use crate::sfun::{SfunLibrary, SfunStates, SfunTelemetry};
use crate::superagg::{SuperAggSpec, SuperAggState};

/// Full specification of a sampling (or plain aggregation) query over
/// one input stream.
#[derive(Debug, Clone)]
pub struct OperatorSpec {
    /// Output columns: name + group-phase expression.
    pub select: Vec<(String, Expr)>,
    /// Tuple-phase admission predicate (may call SFUNs, e.g.
    /// `ssample(len, 1000) = TRUE`).
    pub where_clause: Option<Expr>,
    /// Group-by variables: name + tuple-phase expression.
    pub group_by: Vec<(String, Expr)>,
    /// Indices into `group_by` of the window-defining (ordered)
    /// variables, e.g. `time/20 as tb`.
    pub window_indices: Vec<usize>,
    /// Indices into `group_by` forming the supergroup key (excluding
    /// window variables). Empty = the `ALL` supergroup.
    pub supergroup_indices: Vec<usize>,
    /// Finishing-off predicate, evaluated per group at window close.
    pub having: Option<Expr>,
    /// Cleaning trigger, evaluated per admitted tuple.
    pub cleaning_when: Option<Expr>,
    /// Per-group keep predicate of the cleaning phase (false = evict).
    pub cleaning_by: Option<Expr>,
    /// Group aggregate slots.
    pub aggregates: Vec<AggSpec>,
    /// Superaggregate slots.
    pub superaggs: Vec<SuperAggSpec>,
    /// Stateful-function libraries (state slots per supergroup).
    pub sfun_libs: Vec<Arc<SfunLibrary>>,
}

impl OperatorSpec {
    /// A minimal aggregation spec (no sampling clauses) — useful as a
    /// starting point for builders.
    pub fn aggregation(select: Vec<(String, Expr)>, group_by: Vec<(String, Expr)>) -> Self {
        OperatorSpec {
            select,
            where_clause: None,
            group_by,
            window_indices: Vec::new(),
            supergroup_indices: Vec::new(),
            having: None,
            cleaning_when: None,
            cleaning_by: None,
            aggregates: Vec::new(),
            superaggs: Vec::new(),
            sfun_libs: Vec::new(),
        }
    }

    /// The schema of this operator's output stream: one field per SELECT
    /// column. Fields whose expression is a window-defining group-by
    /// variable are marked `increasing`, so a downstream operator (a §8
    /// *cascade*) can window on them. Field types are nominal (`U64`) —
    /// values stay dynamically typed end to end.
    pub fn output_schema(&self, name: &str) -> sso_types::Schema {
        use sso_types::{Field, FieldType, Ordering};
        let fields = self
            .select
            .iter()
            .map(|(col_name, expr)| {
                let ordering = match expr {
                    Expr::GroupVar(i) if self.window_indices.contains(i) => Ordering::Increasing,
                    _ => Ordering::None,
                };
                Field { name: col_name.clone(), ty: FieldType::U64, ordering }
            })
            .collect();
        sso_types::Schema::new(name, fields)
    }

    /// The window-defining group-by expressions, cloned in
    /// `window_indices` order. A supervisor evaluates these against raw
    /// tuples while a shard is quarantined, to see when the stream has
    /// moved past the poisoned window (cheap: typically one `time/N`).
    pub fn window_exprs(&self) -> Vec<Expr> {
        self.window_indices.iter().map(|&i| self.group_by[i].1.clone()).collect()
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), OpError> {
        if self.select.is_empty() {
            return Err(OpError::InvalidSpec("SELECT list is empty".into()));
        }
        if self.group_by.is_empty() {
            return Err(OpError::InvalidSpec("GROUP BY list is empty".into()));
        }
        for &i in &self.window_indices {
            if i >= self.group_by.len() {
                return Err(OpError::InvalidSpec(format!(
                    "window index {i} out of range ({} group-by vars)",
                    self.group_by.len()
                )));
            }
        }
        for &i in &self.supergroup_indices {
            if i >= self.group_by.len() {
                return Err(OpError::InvalidSpec(format!(
                    "supergroup index {i} out of range ({} group-by vars)",
                    self.group_by.len()
                )));
            }
            if self.window_indices.contains(&i) {
                return Err(OpError::InvalidSpec(format!(
                    "supergroup index {i} is a window variable; window variables are \
                     implicitly part of every supergroup and must not be listed"
                )));
            }
        }
        if self.cleaning_when.is_some() != self.cleaning_by.is_some() {
            return Err(OpError::InvalidSpec(
                "CLEANING WHEN and CLEANING BY must be specified together".into(),
            ));
        }
        Ok(())
    }

    /// Estimated resident bytes of one group-table entry under this
    /// spec: the key tuple (one [`Value`] per group-by variable), the
    /// aggregate-state vector, and the hash-table slot. The static
    /// audit multiplies this by its certified group ceiling to turn a
    /// group count into a memory ceiling, so the estimate errs high.
    pub fn group_entry_bytes(&self) -> usize {
        let key = TUPLE_HEADER_BYTES + self.group_by.len() * VALUE_BYTES;
        let aggs = TUPLE_HEADER_BYTES + self.aggregates.len() * AGG_STATE_BYTES;
        key + aggs + HASH_SLOT_BYTES
    }

    /// Estimated resident bytes of one supergroup-table entry: the key
    /// tuple, the superaggregate states, one SFUN state slot per
    /// library, and the per-supergroup member index (whose backing
    /// storage is accounted per group via [`Self::group_entry_bytes`]).
    pub fn supergroup_entry_bytes(&self) -> usize {
        let key = TUPLE_HEADER_BYTES + self.supergroup_indices.len() * VALUE_BYTES;
        let supers = TUPLE_HEADER_BYTES + self.superaggs.len() * SUPERAGG_STATE_BYTES;
        let states = TUPLE_HEADER_BYTES + self.sfun_libs.len() * SFUN_STATE_BYTES;
        key + supers + states + TUPLE_HEADER_BYTES + HASH_SLOT_BYTES
    }
}

/// Size of one dynamically-typed [`Value`] (discriminant + payload,
/// padded).
pub const VALUE_BYTES: usize = 24;
/// `Vec` header (pointer + length + capacity).
pub const TUPLE_HEADER_BYTES: usize = 24;
/// One aggregate state (tagged union of running value(s)).
pub const AGG_STATE_BYTES: usize = 48;
/// One superaggregate state; `KthSmallest` keeps a k-bounded heap whose
/// elements are accounted to the groups they shadow.
pub const SUPERAGG_STATE_BYTES: usize = 64;
/// One boxed SFUN state (e.g. the subset-sum threshold record).
pub const SFUN_STATE_BYTES: usize = 96;
/// Amortized hash-table slot overhead per entry.
pub const HASH_SLOT_BYTES: usize = 16;

/// Pre-sizing hints for an operator instance, produced by the static
/// audit's [`OperatorSpec`]-level state bounds (`sso-analysis`
/// `BoundsReport`) and consumed by the sharded runtime so group tables
/// and rings start at their certified ceilings instead of growing
/// through rehash cycles mid-window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizingHints {
    /// Expected peak live groups per operator instance.
    pub groups: usize,
    /// Expected peak live supergroups per operator instance.
    pub supergroups: usize,
    /// Ring depth override in batches; `None` keeps the runtime
    /// default.
    pub ring_batches: Option<usize>,
}

impl SizingHints {
    /// Cap on pre-reserved table entries: a certified-but-huge bound
    /// (e.g. a rows-per-window fallback at datacenter rate) must not
    /// translate into an allocation larger than the state it guards
    /// against.
    pub const MAX_RESERVE: usize = 1 << 20;
}

/// One group: its aggregate states. The key lives in the table.
#[derive(Debug)]
struct GroupEntry {
    aggs: Vec<AggState>,
}

/// A pluggable group-table backend that may page entries to disk.
///
/// The operator's group table is normally an in-RAM hash map. When live
/// state would exceed a configured budget, `sso-store` substitutes a
/// paged table (fixed-size pages, clock eviction, spill file) through
/// this trait. Lookups take `&mut self` because a miss may fault a page
/// in — and evict another to stay under budget.
pub trait PagedBackend: Send {
    /// Is this key present (resident or spilled)?
    fn contains(&mut self, key: &Tuple) -> bool;
    /// Insert a new entry (the key must not already be present).
    fn insert(&mut self, key: Tuple, aggs: Vec<AggState>);
    /// Mutable access to an entry's aggregate states, faulting its page
    /// in if spilled.
    fn aggs_mut(&mut self, key: &Tuple) -> Option<&mut Vec<AggState>>;
    /// Remove an entry, returning its aggregate states.
    fn remove(&mut self, key: &Tuple) -> Option<Vec<AggState>>;
    /// Live entries (resident + spilled).
    fn len(&self) -> usize;
    /// Is the table empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop every entry and reset the spill file (window close).
    fn clear(&mut self);
    /// Size hint from the audit's certified ceiling.
    fn reserve(&mut self, additional: usize);
    /// Estimated bytes of RAM-resident state right now.
    fn resident_bytes(&self) -> u64;
    /// High-water mark of [`Self::resident_bytes`].
    fn peak_resident_bytes(&self) -> u64;
    /// Spilled pages faulted back in so far.
    fn page_faults(&self) -> u64;
    /// Pages currently in the spill file.
    fn spilled_pages(&self) -> u64;
}

/// Spill counters of a paged group table (see [`PagedBackend`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Estimated bytes of RAM-resident group state.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
    /// Page faults served from the spill file.
    pub page_faults: u64,
    /// Pages currently spilled.
    pub spilled_pages: u64,
}

/// The group table: in-RAM by default, paged under a state budget.
enum GroupTable {
    Ram(FxHashMap<Tuple, GroupEntry>),
    Paged(Box<dyn PagedBackend>),
}

impl GroupTable {
    fn contains(&mut self, key: &Tuple) -> bool {
        match self {
            GroupTable::Ram(m) => m.contains_key(key),
            GroupTable::Paged(b) => b.contains(key),
        }
    }

    fn insert(&mut self, key: Tuple, aggs: Vec<AggState>) {
        match self {
            GroupTable::Ram(m) => {
                m.insert(key, GroupEntry { aggs });
            }
            GroupTable::Paged(b) => b.insert(key, aggs),
        }
    }

    fn aggs_mut(&mut self, key: &Tuple) -> Option<&mut Vec<AggState>> {
        match self {
            GroupTable::Ram(m) => m.get_mut(key).map(|e| &mut e.aggs),
            GroupTable::Paged(b) => b.aggs_mut(key),
        }
    }

    fn remove(&mut self, key: &Tuple) -> Option<Vec<AggState>> {
        match self {
            GroupTable::Ram(m) => m.remove(key).map(|e| e.aggs),
            GroupTable::Paged(b) => b.remove(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            GroupTable::Ram(m) => m.len(),
            GroupTable::Paged(b) => b.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            GroupTable::Ram(m) => m.clear(),
            GroupTable::Paged(b) => b.clear(),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            GroupTable::Ram(m) => m.reserve(additional),
            GroupTable::Paged(b) => b.reserve(additional),
        }
    }
}

/// One supergroup: superaggregates, SFUN states, and its member groups
/// in insertion order.
struct SupergroupEntry {
    key: Tuple,
    superaggs: Vec<SuperAggState>,
    states: SfunStates,
    groups: Vec<Tuple>,
}

/// Per-window counters (Figures 3–4 read these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Tuples that arrived in the window.
    pub tuples: u64,
    /// Tuples that passed WHERE.
    pub admitted: u64,
    /// Cleaning phases triggered by CLEANING WHEN.
    pub cleaning_phases: u64,
    /// Groups created.
    pub groups_created: u64,
    /// Groups evicted by cleaning phases.
    pub evictions: u64,
    /// Rows emitted at window close.
    pub output_rows: u64,
}

/// Cumulative counters across the operator's lifetime.
#[derive(Debug, Clone, Default)]
pub struct OperatorStats {
    /// Windows closed.
    pub windows: u64,
    /// Tuples processed.
    pub tuples: u64,
    /// Tuples admitted by WHERE.
    pub admitted: u64,
    /// Cleaning phases.
    pub cleaning_phases: u64,
    /// Groups created.
    pub groups_created: u64,
    /// Groups evicted by cleaning phases.
    pub evictions: u64,
    /// Rows emitted.
    pub output_rows: u64,
}

impl OperatorStats {
    fn accumulate(&mut self, w: &WindowStats) {
        self.windows += 1;
        self.tuples += w.tuples;
        self.admitted += w.admitted;
        self.cleaning_phases += w.cleaning_phases;
        self.groups_created += w.groups_created;
        self.evictions += w.evictions;
        self.output_rows += w.output_rows;
    }
}

/// Degradation metadata attached to a window's output: how much of the
/// window's offered traffic the result actually covers.
///
/// A single-instance run always covers everything. A sharded run under
/// faults can lose traffic to a quarantined (panicked) worker or to a
/// straggler shard cut off by the window deadline; the merge-finalize
/// path then re-thresholds the surviving shards' samples — unbiased over
/// the *covered* traffic — and records the shortfall here instead of
/// silently pretending the window was whole.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Fraction of the window's offered tuples represented by the rows
    /// (`covered / (covered + uncovered)`), in `(0, 1]`.
    pub coverage: f64,
    /// True when any traffic was lost to a fault (i.e. `coverage < 1`).
    pub degraded: bool,
}

impl Default for Degradation {
    fn default() -> Self {
        Degradation { coverage: 1.0, degraded: false }
    }
}

impl Degradation {
    /// Coverage from covered/uncovered tuple counts. Zero offered tuples
    /// (an empty window) counts as fully covered.
    pub fn from_counts(covered: u64, uncovered: u64) -> Self {
        if uncovered == 0 {
            return Degradation::default();
        }
        Degradation { coverage: covered as f64 / (covered + uncovered) as f64, degraded: true }
    }
}

/// The output of one closed window.
#[derive(Debug, Clone)]
pub struct WindowOutput {
    /// The window-defining group-by values (e.g. the time bucket).
    pub window: Tuple,
    /// Output rows, one per group that passed HAVING, in group insertion
    /// order (per supergroup, supergroups in insertion order).
    pub rows: Vec<Tuple>,
    /// The window's counters.
    pub stats: WindowStats,
    /// Fault-coverage metadata (full coverage unless a sharded run
    /// degraded; see [`Degradation`]).
    pub degradation: Degradation,
}

/// The sampling operator runtime.
pub struct SamplingOperator {
    spec: Arc<OperatorSpec>,
    groups: GroupTable,
    sg_index: FxHashMap<Tuple, usize>,
    sgs: Vec<SupergroupEntry>,
    old_sgs: FxHashMap<Tuple, SfunStates>,
    window: Option<Vec<Value>>,
    wstats: WindowStats,
    stats: OperatorStats,
    metrics: Option<OperatorMetrics>,
    // Durable-store support: when enabled, every window flush captures
    // the carry-over and aux bytes at the boundary, so a worker can
    // persist them without re-deriving window keys per tuple.
    capture_flush: bool,
    flush_state: Option<(Vec<u8>, Vec<u8>)>,
    // Reused per-tuple buffers (group-by values, supergroup key);
    // process() runs for every input tuple, so its allocations dominate
    // rejected-tuple cost.
    gb_scratch: Vec<Value>,
    sg_scratch: Vec<Value>,
}

impl std::fmt::Debug for SamplingOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplingOperator")
            .field("group_by", &self.spec.group_by.len())
            .field("groups", &self.groups.len())
            .field("supergroups", &self.sgs.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SamplingOperator {
    /// Build an operator from a validated spec.
    pub fn new(spec: OperatorSpec) -> Result<Self, OpError> {
        spec.validate()?;
        Ok(SamplingOperator {
            spec: Arc::new(spec),
            groups: GroupTable::Ram(FxHashMap::default()),
            sg_index: FxHashMap::default(),
            sgs: Vec::new(),
            old_sgs: FxHashMap::default(),
            window: None,
            wstats: WindowStats::default(),
            stats: OperatorStats::default(),
            metrics: None,
            capture_flush: false,
            flush_state: None,
            gb_scratch: Vec::new(),
            sg_scratch: Vec::new(),
        })
    }

    /// Attach registry-backed instrumentation. Per-tuple counters stay
    /// batched in [`WindowStats`] and flush at window close; only the
    /// sampled phase spans touch the clock.
    pub fn set_metrics(&mut self, metrics: OperatorMetrics) {
        self.metrics = Some(metrics);
    }

    /// Replace the in-RAM group table with a paged (spill-to-disk)
    /// backend. Must be called before any tuple is processed; existing
    /// entries are not migrated.
    pub fn set_group_backend(&mut self, backend: Box<dyn PagedBackend>) {
        debug_assert_eq!(self.groups.len(), 0, "backend swap on a live group table");
        self.groups = GroupTable::Paged(backend);
    }

    /// Spill counters when a paged backend is installed; `None` for the
    /// default in-RAM table.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        match &self.groups {
            GroupTable::Ram(_) => None,
            GroupTable::Paged(b) => Some(SpillStats {
                resident_bytes: b.resident_bytes(),
                peak_resident_bytes: b.peak_resident_bytes(),
                page_faults: b.page_faults(),
                spilled_pages: b.spilled_pages(),
            }),
        }
    }

    /// Pre-size the group and supergroup tables from the audit's
    /// certified ceilings, capped at [`SizingHints::MAX_RESERVE`]
    /// entries so an intentionally loose bound cannot cause a larger
    /// allocation than the workload itself would.
    pub fn reserve(&mut self, hints: &SizingHints) {
        let groups = hints.groups.min(SizingHints::MAX_RESERVE);
        let sgs = hints.supergroups.min(SizingHints::MAX_RESERVE);
        self.groups.reserve(groups);
        self.sg_index.reserve(sgs);
        self.sgs.reserve(sgs);
        self.old_sgs.reserve(sgs);
    }

    /// The spec this operator runs.
    pub fn spec(&self) -> &OperatorSpec {
        &self.spec
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Live group count (current window).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Live supergroup count (current window).
    pub fn supergroup_count(&self) -> usize {
        self.sgs.len()
    }

    /// Output column names, in SELECT order.
    pub fn output_columns(&self) -> Vec<&str> {
        self.spec.select.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The window-defining group-by values of the window currently being
    /// accumulated, if any. A supervisor uses this after catching a
    /// worker panic to know which window the poisoned operator was in —
    /// the operator's tables may be mid-update, but the window key is a
    /// plain value vector and stays readable.
    pub fn current_window(&self) -> Option<Tuple> {
        self.window.as_ref().map(|v| Tuple::new(v.clone()))
    }

    /// Capture [`Self::export_carry`] + [`Self::export_aux`] bytes at
    /// every window flush, for [`Self::take_flush_state`]. This is how a
    /// durable worker gets boundary-exact snapshots without evaluating
    /// window keys per tuple: the operator already detects the boundary
    /// in [`Self::process`], so it encodes the carry-over right there.
    pub fn set_capture_flush(&mut self, on: bool) {
        self.capture_flush = on;
    }

    /// The carry/aux bytes captured at the most recent window flush
    /// (see [`Self::set_capture_flush`]), consumed. `None` when capture
    /// is off or no window has flushed since the last take.
    pub fn take_flush_state(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        self.flush_state.take()
    }

    /// Process one tuple. If the tuple opens a new window, the previous
    /// window's output is returned (the tuple itself is processed into
    /// the new window).
    pub fn process(&mut self, tuple: &Tuple) -> Result<Option<WindowOutput>, OpError> {
        let _span = self.metrics.as_ref().and_then(|m| m.process_span.start());
        let spec = Arc::clone(&self.spec);
        // 1. Group-by values, into the reused scratch buffer (an eval
        // error forfeits the buffer; the next tuple just reallocates).
        let mut gb = std::mem::take(&mut self.gb_scratch);
        gb.clear();
        {
            let mut ctx = EvalCtx { tuple: Some(tuple), ..EvalCtx::empty("GROUP BY") };
            for (_, e) in &spec.group_by {
                gb.push(e.eval(&mut ctx)?);
            }
        }
        // 2. Window boundary: compare in place, allocate the window-value
        // vector only when the window actually turns over.
        let same_window = match &self.window {
            Some(cur) => spec.window_indices.iter().map(|&i| &gb[i]).eq(cur.iter()),
            None => false,
        };
        let out = if same_window {
            None
        } else {
            let o = match self.window {
                Some(_) => Some(self.flush_window()?),
                None => None,
            };
            self.window = Some(spec.window_indices.iter().map(|&i| gb[i].clone()).collect());
            o
        };
        self.wstats.tuples += 1;
        // 3. Supergroup lookup / creation (with state carry-over). The
        // lookup borrows a reused value buffer; a key `Tuple` is only
        // allocated when the supergroup is new.
        self.sg_scratch.clear();
        self.sg_scratch.extend(spec.supergroup_indices.iter().map(|&i| gb[i].clone()));
        let sg_idx = match self.sg_index.get(self.sg_scratch.as_slice()) {
            Some(&i) => i,
            None => {
                let sg_key = Tuple::new(std::mem::take(&mut self.sg_scratch));
                let old = self.old_sgs.get(&sg_key);
                let states: SfunStates = spec
                    .sfun_libs
                    .iter()
                    .enumerate()
                    .map(|(li, lib)| {
                        let prev = old.and_then(|v| v.get(li)).map(|b| b.as_ref() as &dyn Any);
                        lib.init_state(prev)
                    })
                    .collect();
                let superaggs = spec.superaggs.iter().map(|s| s.init()).collect();
                let idx = self.sgs.len();
                self.sgs.push(SupergroupEntry {
                    key: sg_key.clone(),
                    superaggs,
                    states,
                    groups: Vec::new(),
                });
                self.sg_index.insert(sg_key, idx);
                idx
            }
        };
        // 4. WHERE.
        let admitted = match &spec.where_clause {
            Some(w) => {
                let SupergroupEntry { superaggs, states, .. } = &mut self.sgs[sg_idx];
                let mut ctx = EvalCtx {
                    clause: "WHERE",
                    tuple: Some(tuple),
                    group_vars: Some(&gb),
                    aggs: None,
                    superaggs: Some(superaggs),
                    sfun_states: Some(states.as_mut_slice()),
                };
                w.eval_bool(&mut ctx)?
            }
            None => true,
        };
        if !admitted {
            gb.clear();
            self.gb_scratch = gb;
            return Ok(out);
        }
        self.wstats.admitted += 1;
        // 5. Superaggregate per-tuple updates.
        {
            let SupergroupEntry { superaggs, states, .. } = &mut self.sgs[sg_idx];
            for (i, sa) in spec.superaggs.iter().enumerate() {
                let mut ctx = EvalCtx {
                    clause: "SUPERAGG",
                    tuple: Some(tuple),
                    group_vars: Some(&gb),
                    aggs: None,
                    superaggs: None,
                    sfun_states: Some(states.as_mut_slice()),
                };
                sa.on_tuple(&mut superaggs[i], &mut ctx)?;
            }
        }
        // 6. Group lookup / creation and aggregate update.
        let gkey = Tuple::new(gb.clone());
        let is_new = !self.groups.contains(&gkey);
        if is_new {
            let aggs = spec.aggregates.iter().map(|a| a.init()).collect();
            self.groups.insert(gkey.clone(), aggs);
            self.wstats.groups_created += 1;
        }
        {
            let entry_aggs = self.groups.aggs_mut(&gkey).expect("group just ensured");
            let SupergroupEntry { superaggs, states, groups: sg_groups, .. } =
                &mut self.sgs[sg_idx];
            for (i, a) in spec.aggregates.iter().enumerate() {
                let mut ctx = EvalCtx {
                    clause: "AGGREGATE",
                    tuple: Some(tuple),
                    group_vars: Some(&gb),
                    aggs: None,
                    superaggs: None,
                    sfun_states: Some(states.as_mut_slice()),
                };
                a.update(&mut entry_aggs[i], &mut ctx)?;
            }
            if is_new {
                sg_groups.push(gkey.clone());
                for (i, sa) in spec.superaggs.iter().enumerate() {
                    sa.on_group_add(&mut superaggs[i], &gb)?;
                }
            }
        }
        // 7. CLEANING WHEN / cleaning phase.
        if let Some(cw) = &spec.cleaning_when {
            let trigger = {
                let SupergroupEntry { superaggs, states, .. } = &mut self.sgs[sg_idx];
                let mut ctx = EvalCtx {
                    clause: "CLEANING WHEN",
                    tuple: Some(tuple),
                    group_vars: Some(&gb),
                    aggs: None,
                    superaggs: Some(superaggs),
                    sfun_states: Some(states.as_mut_slice()),
                };
                cw.eval_bool(&mut ctx)?
            };
            if trigger {
                self.wstats.cleaning_phases += 1;
                self.clean_supergroup(sg_idx)?;
            }
        }
        gb.clear();
        self.gb_scratch = gb;
        Ok(out)
    }

    /// Apply CLEANING BY to every group of supergroup `sg_idx`, evicting
    /// groups for which it is false.
    fn clean_supergroup(&mut self, sg_idx: usize) -> Result<(), OpError> {
        let _span = self.metrics.as_ref().and_then(|m| m.clean_span.start());
        let spec = Arc::clone(&self.spec);
        let Some(cb) = &spec.cleaning_by else {
            return Ok(());
        };
        let group_keys = std::mem::take(&mut self.sgs[sg_idx].groups);
        let mut kept = Vec::with_capacity(group_keys.len());
        for gkey in group_keys {
            let keep = {
                let entry_aggs = self.groups.aggs_mut(&gkey).expect("group listed in supergroup");
                let SupergroupEntry { superaggs, states, .. } = &mut self.sgs[sg_idx];
                let mut ctx = EvalCtx {
                    clause: "CLEANING BY",
                    tuple: None,
                    group_vars: Some(gkey.values()),
                    aggs: Some(entry_aggs),
                    superaggs: Some(superaggs),
                    sfun_states: Some(states.as_mut_slice()),
                };
                cb.eval_bool(&mut ctx)?
            };
            if keep {
                kept.push(gkey);
            } else {
                self.wstats.evictions += 1;
                let entry_aggs = self.groups.remove(&gkey).expect("group listed in supergroup");
                let superaggs = &mut self.sgs[sg_idx].superaggs;
                for (i, sa) in spec.superaggs.iter().enumerate() {
                    sa.on_group_remove(&mut superaggs[i], gkey.values(), &entry_aggs)?;
                }
            }
        }
        self.sgs[sg_idx].groups = kept;
        Ok(())
    }

    /// Close the current window: HAVING + SELECT per group, state
    /// carry-over, table reset.
    fn flush_window(&mut self) -> Result<WindowOutput, OpError> {
        let _span = self.metrics.as_ref().and_then(|m| m.window_span.start());
        let spec = Arc::clone(&self.spec);
        // Signal window end to every state (the paper's final_init()).
        for sg in &mut self.sgs {
            for (li, lib) in spec.sfun_libs.iter().enumerate() {
                lib.on_window_end(sg.states[li].as_mut());
            }
        }
        let mut rows = Vec::new();
        for sg_idx in 0..self.sgs.len() {
            let group_keys = std::mem::take(&mut self.sgs[sg_idx].groups);
            for gkey in group_keys {
                let entry_aggs = self.groups.aggs_mut(&gkey).expect("group listed in supergroup");
                let SupergroupEntry { superaggs, states, .. } = &mut self.sgs[sg_idx];
                let mut ctx = EvalCtx {
                    clause: "HAVING",
                    tuple: None,
                    group_vars: Some(gkey.values()),
                    aggs: Some(entry_aggs),
                    superaggs: Some(superaggs),
                    sfun_states: Some(states.as_mut_slice()),
                };
                let keep = match &spec.having {
                    Some(h) => h.eval_bool(&mut ctx)?,
                    None => true,
                };
                if keep {
                    ctx.clause = "SELECT";
                    let mut row = Vec::with_capacity(spec.select.len());
                    for (_, e) in &spec.select {
                        row.push(e.eval(&mut ctx)?);
                    }
                    rows.push(Tuple::new(row));
                }
            }
        }
        // Probe sampling telemetry while this window's states are still
        // live — `ssfinal_clean` sets the achieved sample size during
        // the HAVING pass above. Telemetry from multiple supergroups is
        // summed (the threshold is taken as the max).
        let telemetry = if self.metrics.is_some() {
            let mut acc: Option<SfunTelemetry> = None;
            for sg in &self.sgs {
                for (li, lib) in spec.sfun_libs.iter().enumerate() {
                    if let Some(t) = lib.probe_telemetry(sg.states[li].as_ref()) {
                        let a = acc.get_or_insert_with(SfunTelemetry::default);
                        a.threshold = a.threshold.max(t.threshold);
                        a.achieved += t.achieved;
                        a.target += t.target;
                        a.offered += t.offered;
                        a.cleanings += t.cleanings;
                    }
                }
            }
            acc
        } else {
            None
        };
        let groups_at_close = self.groups.len() as u64;
        // Carry supergroup states into the old table for the next window.
        self.old_sgs.clear();
        for sg in self.sgs.drain(..) {
            self.old_sgs.insert(sg.key, sg.states);
        }
        self.sg_index.clear();
        self.groups.clear();
        let mut stats = std::mem::take(&mut self.wstats);
        stats.output_rows = rows.len() as u64;
        self.stats.accumulate(&stats);
        if let Some(m) = &self.metrics {
            m.on_window(&stats, groups_at_close, telemetry.as_ref());
        }
        if self.capture_flush {
            let carry = self.export_carry().map_err(OpError::InvalidSpec)?;
            self.flush_state = Some((carry, self.export_aux()));
        }
        let window = Tuple::new(self.window.clone().unwrap_or_default());
        Ok(WindowOutput { window, rows, stats, degradation: Degradation::default() })
    }

    /// Can every SFUN library of this spec persist its state? Durable
    /// checkpointing requires it.
    pub fn can_persist(&self) -> bool {
        self.spec.sfun_libs.iter().all(|l| l.can_persist())
    }

    /// Export the cross-window carry-over — the "old" supergroup state
    /// table populated at the last window close — as bytes. Entries are
    /// sorted by encoded key so the same logical state always produces
    /// the same bytes (hash-map iteration order must not leak into
    /// snapshots).
    ///
    /// Call between [`Self::finish`] (or a window turnover) and the next
    /// tuple; mid-window live state is intentionally not exportable —
    /// the recovery contract is *window-level*.
    pub fn export_carry(&self) -> Result<Vec<u8>, String> {
        let mut entries = Vec::with_capacity(self.old_sgs.len());
        for (key, states) in &self.old_sgs {
            let mut kb = Vec::new();
            put_tuple(&mut kb, key);
            let mut sb = Vec::new();
            put_u32(&mut sb, states.len() as u32);
            for (li, st) in states.iter().enumerate() {
                let lib = &self.spec.sfun_libs[li];
                let enc = lib.encode_state(st.as_ref()).ok_or_else(|| {
                    format!("SFUN library '{}' cannot persist its state", lib.name())
                })?;
                put_bytes(&mut sb, &enc);
            }
            entries.push((kb, sb));
        }
        entries.sort();
        let mut out = Vec::new();
        put_u32(&mut out, entries.len() as u32);
        for (kb, sb) in entries {
            out.extend_from_slice(&kb);
            out.extend_from_slice(&sb);
        }
        Ok(out)
    }

    /// Restore the carry-over table from [`Self::export_carry`] bytes.
    /// The next window's supergroups then inherit state exactly as they
    /// would have in the original run. Empty input (recovery before any
    /// window closed) is a no-op.
    pub fn import_carry(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut r = Reader::new(bytes);
        let n = r.take_u32().map_err(|e| e.to_string())? as usize;
        for _ in 0..n {
            let key = take_tuple(&mut r).map_err(|e| e.to_string())?;
            let nlibs = r.take_u32().map_err(|e| e.to_string())? as usize;
            if nlibs != self.spec.sfun_libs.len() {
                return Err(format!(
                    "carry-over entry has {nlibs} state slots, spec has {}",
                    self.spec.sfun_libs.len()
                ));
            }
            let mut states: SfunStates = Vec::with_capacity(nlibs);
            for li in 0..nlibs {
                let sb = r.take_bytes().map_err(|e| e.to_string())?;
                let lib = &self.spec.sfun_libs[li];
                let st = lib.decode_state(sb).ok_or_else(|| {
                    format!("SFUN library '{}' rejected persisted state", lib.name())
                })?;
                states.push(st);
            }
            self.old_sgs.insert(key, states);
        }
        if !r.is_empty() {
            return Err("trailing bytes in carry-over record".to_string());
        }
        Ok(())
    }

    /// Export each library's auxiliary state (state the library holds
    /// outside any supergroup, e.g. the reservoir seed counter).
    pub fn export_aux(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.spec.sfun_libs.len() as u32);
        for lib in &self.spec.sfun_libs {
            put_bytes(&mut out, &lib.encode_aux());
        }
        out
    }

    /// Restore library-auxiliary state from [`Self::export_aux`] bytes.
    pub fn import_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut r = Reader::new(bytes);
        let n = r.take_u32().map_err(|e| e.to_string())? as usize;
        if n != self.spec.sfun_libs.len() {
            return Err(format!(
                "auxiliary record has {n} library slots, spec has {}",
                self.spec.sfun_libs.len()
            ));
        }
        for lib in &self.spec.sfun_libs {
            let sb = r.take_bytes().map_err(|e| e.to_string())?;
            if !lib.decode_aux(sb) {
                return Err(format!("SFUN library '{}' rejected auxiliary state", lib.name()));
            }
        }
        Ok(())
    }

    /// Force-close the current window at end of stream.
    pub fn finish(&mut self) -> Result<Option<WindowOutput>, OpError> {
        if self.window.is_none() {
            return Ok(None);
        }
        let _span = self.metrics.as_ref().and_then(|m| m.finalize_span.start());
        let out = self.flush_window()?;
        self.window = None;
        Ok(Some(out))
    }

    /// Convenience: run a whole tuple iterator, returning every window's
    /// output (including the final partial window).
    pub fn run<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a Tuple>,
    ) -> Result<Vec<WindowOutput>, OpError> {
        let mut out = Vec::new();
        for t in tuples {
            if let Some(w) = self.process(t)? {
                out.push(w);
            }
        }
        if let Some(w) = self.finish()? {
            out.push(w);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;

    /// SELECT tb, sum(v), count(*) GROUP BY t/10 as tb, k
    fn simple_agg_spec() -> OperatorSpec {
        let mut spec = OperatorSpec::aggregation(
            vec![
                ("tb".into(), Expr::GroupVar(0)),
                ("k".into(), Expr::GroupVar(1)),
                ("sum_v".into(), Expr::Aggregate(0)),
                ("cnt".into(), Expr::Aggregate(1)),
            ],
            vec![
                ("tb".into(), Expr::Column(0).div(Expr::lit(10u64))),
                ("k".into(), Expr::Column(1)),
            ],
        );
        spec.window_indices = vec![0];
        spec.aggregates = vec![AggSpec::Sum(Expr::Column(2)), AggSpec::Count];
        spec
    }

    fn t(time: u64, k: u64, v: u64) -> Tuple {
        Tuple::new(vec![Value::U64(time), Value::U64(k), Value::U64(v)])
    }

    #[test]
    fn aggregation_per_window() {
        let mut op = SamplingOperator::new(simple_agg_spec()).unwrap();
        let tuples = [t(1, 7, 10), t(2, 7, 5), t(3, 8, 1), t(11, 7, 100)];
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs.len(), 2);
        // Window 0: group (0,7) sum 15 count 2; group (0,8) sum 1 count 1.
        assert_eq!(outs[0].window, Tuple::new(vec![Value::U64(0)]));
        assert_eq!(
            outs[0].rows,
            vec![
                Tuple::new(vec![Value::U64(0), Value::U64(7), Value::U64(15), Value::U64(2)]),
                Tuple::new(vec![Value::U64(0), Value::U64(8), Value::U64(1), Value::U64(1)]),
            ]
        );
        // Window 1: group (1,7) sum 100.
        assert_eq!(
            outs[1].rows,
            vec![Tuple::new(vec![Value::U64(1), Value::U64(7), Value::U64(100), Value::U64(1)])]
        );
        assert_eq!(op.stats().windows, 2);
        assert_eq!(op.stats().tuples, 4);
    }

    #[test]
    fn where_filters_tuples() {
        let mut spec = simple_agg_spec();
        // WHERE v > 4
        spec.where_clause = Some(Expr::Column(2).gt(Expr::lit(4u64)));
        let mut op = SamplingOperator::new(spec).unwrap();
        let tuples = [t(1, 7, 10), t(2, 7, 3)];
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs[0].rows.len(), 1);
        assert_eq!(outs[0].rows[0].get(2), &Value::U64(10));
        assert_eq!(outs[0].stats.tuples, 2);
        assert_eq!(outs[0].stats.admitted, 1);
    }

    #[test]
    fn having_filters_groups() {
        let mut spec = simple_agg_spec();
        // HAVING count(*) >= 2
        spec.having = Some(Expr::Aggregate(1).ge(Expr::lit(2u64)));
        let mut op = SamplingOperator::new(spec).unwrap();
        let tuples = [t(1, 7, 10), t(2, 7, 5), t(3, 8, 1)];
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs[0].rows.len(), 1);
        assert_eq!(outs[0].rows[0].get(1), &Value::U64(7));
    }

    #[test]
    fn count_distinct_superagg_and_cleaning() {
        // Keep at most 2 groups per supergroup: clean when
        // count_distinct$ > 2, keep only groups with sum >= 10.
        let mut spec = simple_agg_spec();
        spec.superaggs = vec![SuperAggSpec::CountDistinct];
        spec.cleaning_when = Some(Expr::SuperAgg(0).gt(Expr::lit(2u64)));
        spec.cleaning_by = Some(Expr::Aggregate(0).ge(Expr::lit(10u64)));
        let mut op = SamplingOperator::new(spec).unwrap();
        let tuples = [t(1, 1, 100), t(2, 2, 3), t(3, 3, 50)];
        let outs = op.run(tuples.iter()).unwrap();
        // Third group triggers cleaning; group k=2 (sum 3) evicted.
        assert_eq!(outs[0].stats.cleaning_phases, 1);
        let keys: Vec<&Value> = outs[0].rows.iter().map(|r| r.get(1)).collect();
        assert_eq!(keys, vec![&Value::U64(1), &Value::U64(3)]);
    }

    #[test]
    fn supergroup_partitioning() {
        // Supergroup by k: each k gets its own count_distinct$.
        let mut spec = OperatorSpec::aggregation(
            vec![
                ("k".into(), Expr::GroupVar(1)),
                ("v".into(), Expr::GroupVar(2)),
                ("cd".into(), Expr::SuperAgg(0)),
            ],
            vec![
                ("tb".into(), Expr::Column(0).div(Expr::lit(10u64))),
                ("k".into(), Expr::Column(1)),
                ("v".into(), Expr::Column(2)),
            ],
        );
        spec.window_indices = vec![0];
        spec.supergroup_indices = vec![1];
        spec.superaggs = vec![SuperAggSpec::CountDistinct];
        let mut op = SamplingOperator::new(spec).unwrap();
        // k=1 has groups v=1,2; k=2 has v=3.
        let tuples = [t(1, 1, 1), t(2, 1, 2), t(3, 2, 3)];
        let outs = op.run(tuples.iter()).unwrap();
        let rows = &outs[0].rows;
        assert_eq!(rows.len(), 3);
        // count_distinct$ read at flush: 2 for k=1's groups, 1 for k=2's.
        assert_eq!(rows[0].get(2), &Value::U64(2));
        assert_eq!(rows[1].get(2), &Value::U64(2));
        assert_eq!(rows[2].get(2), &Value::U64(1));
    }

    #[test]
    fn window_stats_reset_between_windows() {
        let mut op = SamplingOperator::new(simple_agg_spec()).unwrap();
        let tuples = [t(1, 1, 1), t(2, 2, 2), t(11, 3, 3)];
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs[0].stats.tuples, 2);
        assert_eq!(outs[0].stats.groups_created, 2);
        assert_eq!(outs[1].stats.tuples, 1);
        assert_eq!(outs[1].stats.groups_created, 1);
    }

    #[test]
    fn finish_without_tuples_is_none() {
        let mut op = SamplingOperator::new(simple_agg_spec()).unwrap();
        assert!(op.finish().unwrap().is_none());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = simple_agg_spec();
        spec.select.clear();
        assert!(SamplingOperator::new(spec).is_err());

        let mut spec = simple_agg_spec();
        spec.window_indices = vec![9];
        assert!(SamplingOperator::new(spec).is_err());

        let mut spec = simple_agg_spec();
        spec.supergroup_indices = vec![0]; // window var listed as supergroup
        assert!(SamplingOperator::new(spec).is_err());

        let mut spec = simple_agg_spec();
        spec.cleaning_when = Some(Expr::lit(true));
        assert!(SamplingOperator::new(spec).is_err(), "CLEANING WHEN without CLEANING BY");
    }

    #[test]
    fn group_and_supergroup_counts_track_tables() {
        let mut op = SamplingOperator::new(simple_agg_spec()).unwrap();
        op.process(&t(1, 1, 1)).unwrap();
        op.process(&t(2, 2, 1)).unwrap();
        assert_eq!(op.group_count(), 2);
        assert_eq!(op.supergroup_count(), 1);
        op.process(&t(11, 1, 1)).unwrap(); // new window
        assert_eq!(op.group_count(), 1);
    }

    #[test]
    fn output_columns_match_select() {
        let op = SamplingOperator::new(simple_agg_spec()).unwrap();
        assert_eq!(op.output_columns(), vec!["tb", "k", "sum_v", "cnt"]);
    }

    #[test]
    fn metrics_flush_at_window_close() {
        let registry = sso_obs::Registry::new();
        let mut op = SamplingOperator::new(simple_agg_spec()).unwrap();
        op.set_metrics(OperatorMetrics::register(&registry, ""));
        op.run([t(1, 7, 10), t(2, 7, 5), t(3, 8, 1), t(11, 7, 100)].iter()).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.value("op.tuples"), 4.0);
        assert_eq!(snap.value("op.windows"), 2.0);
        assert_eq!(snap.value("op.output_rows"), 3.0);
        assert_eq!(snap.value("op.groups_created"), 3.0);
    }

    #[test]
    fn evictions_are_counted() {
        let mut spec = simple_agg_spec();
        spec.superaggs = vec![SuperAggSpec::CountDistinct];
        spec.cleaning_when = Some(Expr::SuperAgg(0).gt(Expr::lit(2u64)));
        spec.cleaning_by = Some(Expr::Aggregate(0).ge(Expr::lit(10u64)));
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run([t(1, 1, 100), t(2, 2, 3), t(3, 3, 50)].iter()).unwrap();
        assert_eq!(outs[0].stats.evictions, 1, "group k=2 (sum 3) evicted");
        assert_eq!(op.stats().evictions, 1);
    }
}
