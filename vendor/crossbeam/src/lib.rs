//! Offline drop-in subset of `crossbeam`: only `channel::bounded`,
//! implemented over `std::sync::mpsc::sync_channel`. The workspace uses
//! the channel as a single-producer/single-consumer ring between the
//! low-level node thread and the sampling operator thread, which the
//! std sync channel models exactly (blocking `send` when full,
//! `Err` on disconnect).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued; `Err` if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send: `Err(Full)` when the ring is at capacity,
        /// `Err(Disconnected)` when the receiver is gone. Lets a producer
        /// account stalls/drops instead of silently blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; `Err` once all senders are gone
        /// and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    /// Draining iterator over a receiver.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// A bounded channel with capacity `cap` (minimum 1: a rendezvous
    /// channel would deadlock a producer that also polls).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trips() {
        let (tx, rx) = channel::bounded::<u64>(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100u64 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert!(rx.recv().is_err());
        });
    }

    #[test]
    fn try_send_reports_full_ring() {
        let (tx, rx) = channel::bounded::<u64>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(tx.try_send(3), Err(channel::TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4))));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u64>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
