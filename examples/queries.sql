-- The paper's example-query corpus (sso_core::queries::EXAMPLE_QUERIES),
-- one statement per query. `scripts/check.sh` audits this file with
-- `sso audit --json --deny-warnings`; tests/audit.rs asserts it stays
-- in sync with the library constant. Every query reads a base stream,
-- so no statement cascades into the next.

SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/60 as tb;

SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKTS
WHERE ssample(len, 100) = TRUE
GROUP BY time/60 as tb, srcIP, destIP, uts
HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
CLEANING BY ssclean_with(sum(len)) = TRUE;

SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKTS
WHERE ssample(len, 1) = TRUE
GROUP BY time/60 as tb, srcIP, destIP, uts;

SELECT tb, srcIP, sum(len), count(*) FROM TCP
GROUP BY time/60 as tb, srcIP
HAVING count(*) >= 50
CLEANING WHEN local_count(100) = TRUE
CLEANING BY count(*) + first(current_bucket()) > current_bucket();

SELECT tb, srcIP, HX FROM TCP
WHERE HX <= Kth_smallest_value$(HX, 10)
GROUP BY time/60 as tb, srcIP, H(destIP) as HX
SUPERGROUP tb, srcIP
HAVING HX <= Kth_smallest_value$(HX, 10)
CLEANING WHEN count_distinct$(*) > 10
CLEANING BY HX <= Kth_smallest_value$(HX, 10);

SELECT tb, srcIP, count(*), dscale(), count_distinct$(*) FROM PKT
WHERE dsample(srcIP, 256) = TRUE
GROUP BY time/60 as tb, srcIP
CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE
CLEANING BY dclean_with(srcIP) = TRUE;

SELECT tb, srcIP, destIP FROM TCP
WHERE rsample(25) = TRUE
GROUP BY time/60 as tb, srcIP, destIP
HAVING rsfinal_clean(count_distinct$(*)) = TRUE
CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
CLEANING BY rsclean_with() = TRUE;
