//! Offline drop-in subset of `rustc-hash`: the Fx hasher (a fast,
//! non-cryptographic multiply-xor hash) plus the `FxHashMap` /
//! `FxHashSet` aliases the workspace uses.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: wrapping multiply + rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));

        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("a".to_string());
        assert!(s.contains("a"));
        assert!(!s.contains("b"));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"world"));
    }
}
