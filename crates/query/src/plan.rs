//! The planner: resolve a parsed [`Query`] against a stream [`Schema`]
//! and the registered SFUN libraries, producing an executable
//! [`OperatorSpec`].
//!
//! Name resolution (per clause scope):
//!
//! * **GROUP BY expressions** see only input columns and scalar
//!   functions.
//! * **Tuple-phase clauses** (WHERE, CLEANING WHEN, aggregate arguments)
//!   see input columns, group-by variables, stateful functions, and
//!   superaggregates — but no aggregates.
//! * **Group-phase clauses** (SELECT, HAVING, CLEANING BY) see group-by
//!   variables, aggregates, superaggregates, and stateful functions —
//!   but no raw input columns (a bare column must be a group-by
//!   variable).
//!
//! Window variables are inferred: a group-by expression referencing an
//! *ordered* schema attribute (e.g. `time/20 as tb` over
//! `time increasing`) defines the query window, exactly as Gigascope
//! determines evaluation windows by analyzing how queries reference
//! ordered attributes (§3).

use std::sync::Arc;

use sso_core::agg::AggSpec;
use sso_core::expr::{BinOp, Expr};
use sso_core::libs::distinct::{self, DistinctOpConfig};
use sso_core::libs::heavy_hitter;
use sso_core::libs::reservoir::{self, ReservoirOpConfig};
use sso_core::libs::subset_sum::{self, SubsetSumOpConfig};
use sso_core::operator::OperatorSpec;
use sso_core::sfun::SfunLibrary;
use sso_core::superagg::SuperAggSpec;
use sso_types::Schema;

use crate::ast::{AstExpr, BinAstOp, ExprKind, Query};
use crate::diag;
use crate::error::QueryError;

/// The libraries (and thereby algorithm parameters) available to
/// queries.
#[derive(Clone)]
pub struct PlannerConfig {
    /// SFUN libraries, searched in order for function names.
    pub libraries: Vec<Arc<SfunLibrary>>,
}

impl PlannerConfig {
    /// All four SFUN libraries with their default parameters.
    pub fn standard() -> Self {
        Self::with_configs(SubsetSumOpConfig::default(), ReservoirOpConfig::default())
    }

    /// All four SFUN libraries with explicit subset-sum and reservoir
    /// parameters (the paper's knobs: `N`, `γ`, `f`, `T`).
    pub fn with_configs(ss: SubsetSumOpConfig, rs: ReservoirOpConfig) -> Self {
        PlannerConfig {
            libraries: vec![
                Arc::new(subset_sum::library(ss)),
                Arc::new(reservoir::library(rs)),
                Arc::new(heavy_hitter::library()),
                Arc::new(distinct::library(DistinctOpConfig::default())),
            ],
        }
    }

    /// No libraries (aggregation/min-hash queries only).
    pub fn empty() -> Self {
        PlannerConfig { libraries: Vec::new() }
    }
}

/// Plan a parsed query into an operator spec.
///
/// The semantic analyzer runs first and collects *all* problems; if any
/// are errors the plan fails with [`QueryError::Analysis`] carrying the
/// full batch. The planner's own checks below then act as a safety net
/// (they should be unreachable for analyzer-approved queries).
pub fn plan(
    query: &Query,
    schema: &Schema,
    config: &PlannerConfig,
) -> Result<OperatorSpec, QueryError> {
    let diags = crate::analyze::analyze(query, schema, config);
    if diag::has_errors(&diags) {
        return Err(QueryError::Analysis(diags));
    }
    Planner::new(query, schema, config)?.finish(query)
}

/// Where an expression is being compiled; controls name resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// A GROUP BY expression.
    GroupBy,
    /// WHERE / CLEANING WHEN / aggregate arguments.
    Tuple,
    /// SELECT / HAVING / CLEANING BY.
    Group,
    /// The key expression of `Kth_smallest_value$`.
    SuperKey,
}

impl Scope {
    fn name(self) -> &'static str {
        match self {
            Scope::GroupBy => "GROUP BY",
            Scope::Tuple => "a tuple-phase clause",
            Scope::Group => "a group-phase clause",
            Scope::SuperKey => "a superaggregate key",
        }
    }
}

struct Planner<'a> {
    schema: &'a Schema,
    config: &'a PlannerConfig,
    gb_names: Vec<String>,
    gb_exprs: Vec<Expr>,
    window_indices: Vec<usize>,
    aggregates: Vec<AggSpec>,
    agg_keys: Vec<String>,
    superaggs: Vec<SuperAggSpec>,
    superagg_keys: Vec<String>,
    /// config library index -> spec slot (first-use order).
    lib_slots: Vec<Option<usize>>,
    used_libs: Vec<Arc<SfunLibrary>>,
}

impl<'a> Planner<'a> {
    fn new(
        query: &Query,
        schema: &'a Schema,
        config: &'a PlannerConfig,
    ) -> Result<Self, QueryError> {
        let mut p = Planner {
            schema,
            config,
            gb_names: Vec::new(),
            gb_exprs: Vec::new(),
            window_indices: Vec::new(),
            aggregates: Vec::new(),
            agg_keys: Vec::new(),
            superaggs: Vec::new(),
            superagg_keys: Vec::new(),
            lib_slots: vec![None; config.libraries.len()],
            used_libs: Vec::new(),
        };
        if query.group_by.is_empty() {
            return Err(QueryError::Semantic("GROUP BY list is empty".into()));
        }
        for (i, item) in query.group_by.iter().enumerate() {
            let name = item.name(i);
            if p.gb_names.contains(&name) {
                return Err(QueryError::Semantic(format!(
                    "duplicate group-by variable name `{name}`"
                )));
            }
            let compiled = p.compile(&item.expr, Scope::GroupBy)?;
            if references_ordered_column(&item.expr, schema) {
                p.window_indices.push(i);
            }
            p.gb_names.push(name);
            p.gb_exprs.push(compiled);
        }
        Ok(p)
    }

    fn finish(mut self, query: &Query) -> Result<OperatorSpec, QueryError> {
        // Supergroup: named group-by variables, minus the implicit
        // window variables.
        let mut supergroup_indices = Vec::new();
        for name in &query.supergroup {
            let idx = self.gb_names.iter().position(|n| n == &name.text).ok_or_else(|| {
                QueryError::Semantic(format!(
                    "SUPERGROUP variable `{name}` is not a group-by variable"
                ))
            })?;
            if self.window_indices.contains(&idx) {
                continue; // ordered vars are implicitly part of every supergroup
            }
            if !supergroup_indices.contains(&idx) {
                supergroup_indices.push(idx);
            }
        }

        let where_clause =
            query.where_clause.as_ref().map(|e| self.compile(e, Scope::Tuple)).transpose()?;
        let cleaning_when =
            query.cleaning_when.as_ref().map(|e| self.compile(e, Scope::Tuple)).transpose()?;
        let cleaning_by =
            query.cleaning_by.as_ref().map(|e| self.compile(e, Scope::Group)).transpose()?;
        let having = query.having.as_ref().map(|e| self.compile(e, Scope::Group)).transpose()?;
        let mut select = Vec::with_capacity(query.select.len());
        for (i, item) in query.select.iter().enumerate() {
            let name = item.output_name(i);
            let compiled = self.compile(&item.expr, Scope::Group)?;
            select.push((name, compiled));
        }

        let spec = OperatorSpec {
            select,
            where_clause,
            group_by: self.gb_names.iter().cloned().zip(self.gb_exprs.iter().cloned()).collect(),
            window_indices: self.window_indices.clone(),
            supergroup_indices,
            having,
            cleaning_when,
            cleaning_by,
            aggregates: self.aggregates,
            superaggs: self.superaggs,
            sfun_libs: self.used_libs,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn gb_index(&self, name: &str) -> Option<usize> {
        self.gb_names.iter().position(|n| n == name)
    }

    fn compile(&mut self, e: &AstExpr, scope: Scope) -> Result<Expr, QueryError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Expr::lit(*v)),
            ExprKind::Float(v) => Ok(Expr::lit(*v)),
            ExprKind::Str(s) => Ok(Expr::lit(s.as_str())),
            ExprKind::Bool(b) => Ok(Expr::lit(*b)),
            ExprKind::Star => Err(QueryError::Semantic(
                "`*` is only valid as the argument of count(*) or count_distinct$(*)".into(),
            )),
            ExprKind::Neg(inner) => {
                let c = self.compile(inner, scope)?;
                Ok(Expr::lit(0i64).sub(c))
            }
            ExprKind::Not(inner) => {
                let c = self.compile(inner, scope)?;
                Ok(Expr::Not(Box::new(c)))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.compile(lhs, scope)?;
                let r = self.compile(rhs, scope)?;
                Ok(Expr::bin(bin_op(*op), l, r))
            }
            ExprKind::Ident(name) => {
                // Group-by variables shadow columns outside GROUP BY.
                if scope != Scope::GroupBy {
                    if let Some(i) = self.gb_index(name) {
                        return Ok(Expr::GroupVar(i));
                    }
                }
                match scope {
                    Scope::GroupBy | Scope::Tuple => {
                        let idx = self.schema.index_of(name).map_err(|_| {
                            QueryError::Semantic(format!(
                                "unknown name `{name}` (not a column of {} or a group-by variable)",
                                self.schema.name
                            ))
                        })?;
                        Ok(Expr::Column(idx))
                    }
                    Scope::Group => Err(QueryError::Semantic(format!(
                        "`{name}` referenced in {} but is not a group-by variable or aggregate",
                        scope.name()
                    ))),
                    Scope::SuperKey => Err(QueryError::Semantic(format!(
                        "superaggregate key `{name}` must be a group-by variable"
                    ))),
                }
            }
            ExprKind::Call { name, superagg: true, args } => {
                self.compile_superagg(name, args, scope)
            }
            ExprKind::Call { name, superagg: false, args } => {
                self.compile_call(name, args, scope, e)
            }
        }
    }

    fn compile_superagg(
        &mut self,
        name: &str,
        args: &[AstExpr],
        scope: Scope,
    ) -> Result<Expr, QueryError> {
        if scope == Scope::GroupBy {
            return Err(QueryError::Semantic(format!(
                "superaggregate `{name}$` is not allowed in GROUP BY"
            )));
        }
        let key = format!("{name}$({})", join_args(args));
        if let Some(i) = self.superagg_keys.iter().position(|k| *k == key) {
            return Ok(Expr::SuperAgg(i));
        }
        let spec = match name.to_ascii_lowercase().as_str() {
            "count_distinct" => {
                if !(args.is_empty() || is_star_arg(args)) {
                    return Err(QueryError::Semantic(
                        "count_distinct$ takes no argument or `*`".into(),
                    ));
                }
                SuperAggSpec::CountDistinct
            }
            "kth_smallest_value" => {
                if args.len() != 2 {
                    return Err(QueryError::Semantic(
                        "Kth_smallest_value$ expects (expr, k)".into(),
                    ));
                }
                let expr = self.compile(&args[0], Scope::SuperKey)?;
                let k = match args[1].kind {
                    ExprKind::Int(k) if k > 0 => k as usize,
                    _ => {
                        return Err(QueryError::Semantic(
                            "Kth_smallest_value$'s second argument must be a positive \
                             integer literal"
                                .into(),
                        ))
                    }
                };
                SuperAggSpec::KthSmallest { expr, k }
            }
            "min" | "max" => {
                if args.len() != 1 {
                    return Err(QueryError::Semantic(format!("{name}$ expects one argument")));
                }
                let expr = self.compile(&args[0], Scope::SuperKey)?;
                SuperAggSpec::Extreme { expr, max: name.eq_ignore_ascii_case("max") }
            }
            "sum" => {
                if args.len() != 1 {
                    return Err(QueryError::Semantic("sum$ expects one argument".into()));
                }
                let tuple_expr = self.compile(&args[0], Scope::Tuple)?;
                // Pair with a group aggregate over the same expression so
                // evictions can subtract the group's contribution.
                let agg_slot = self.agg_slot(&format!("sum({})", args[0]), || {
                    Ok(AggSpec::Sum(tuple_expr.clone()))
                })?;
                SuperAggSpec::Sum { expr: tuple_expr, agg_slot }
            }
            other => {
                return Err(QueryError::Semantic(format!("unknown superaggregate `{other}$`")))
            }
        };
        self.superaggs.push(spec);
        self.superagg_keys.push(key);
        Ok(Expr::SuperAgg(self.superaggs.len() - 1))
    }

    fn agg_slot(
        &mut self,
        key: &str,
        make: impl FnOnce() -> Result<AggSpec, QueryError>,
    ) -> Result<usize, QueryError> {
        if let Some(i) = self.agg_keys.iter().position(|k| k == key) {
            return Ok(i);
        }
        let spec = make()?;
        self.aggregates.push(spec);
        self.agg_keys.push(key.to_string());
        Ok(self.aggregates.len() - 1)
    }

    fn compile_call(
        &mut self,
        name: &str,
        args: &[AstExpr],
        scope: Scope,
        whole: &AstExpr,
    ) -> Result<Expr, QueryError> {
        let lower = name.to_ascii_lowercase();
        // avg(x) rewrites to sum(x) * 1.0 / count(*) (float-promoted so
        // integer division cannot truncate).
        if lower == "avg" {
            if scope != Scope::Group {
                return Err(QueryError::Semantic(
                    "aggregate `avg` is not allowed outside group-phase clauses".into(),
                ));
            }
            if args.len() != 1 {
                return Err(QueryError::Semantic("avg expects one argument".into()));
            }
            let sum_node: AstExpr =
                ExprKind::Call { name: "sum".into(), superagg: false, args: args.to_vec() }.into();
            let sum = self.compile_call("sum", args, scope, &sum_node)?;
            let star: AstExpr = ExprKind::Star.into();
            let count_node: AstExpr =
                ExprKind::Call { name: "count".into(), superagg: false, args: vec![star.clone()] }
                    .into();
            let count =
                self.compile_call("count", std::slice::from_ref(&star), scope, &count_node)?;
            return Ok(Expr::bin(BinOp::Mul, sum, Expr::lit(1.0f64)).div(count));
        }
        // Aggregates.
        if matches!(lower.as_str(), "count" | "sum" | "min" | "max" | "first" | "last") {
            if scope != Scope::Group {
                return Err(QueryError::Semantic(format!(
                    "aggregate `{name}` is not allowed in {}",
                    scope.name()
                )));
            }
            let key = whole.to_string().to_ascii_lowercase();
            if let Some(i) = self.agg_keys.iter().position(|k| *k == key) {
                return Ok(Expr::Aggregate(i));
            }
            let spec = if lower == "count" {
                if !(args.is_empty() || is_star_arg(args)) {
                    return Err(QueryError::Semantic("count takes `*` or nothing".into()));
                }
                AggSpec::Count
            } else {
                if args.len() != 1 {
                    return Err(QueryError::Semantic(format!(
                        "aggregate `{name}` expects one argument"
                    )));
                }
                let arg = self.compile(&args[0], Scope::Tuple)?;
                match lower.as_str() {
                    "sum" => AggSpec::Sum(arg),
                    "min" => AggSpec::Min(arg),
                    "max" => AggSpec::Max(arg),
                    "first" => AggSpec::First(arg),
                    "last" => AggSpec::Last(arg),
                    _ => unreachable!("count handled above"),
                }
            };
            self.aggregates.push(spec);
            self.agg_keys.push(key);
            return Ok(Expr::Aggregate(self.aggregates.len() - 1));
        }
        // Scalar functions.
        if let Some((sname, fun)) = sso_core::scalar::lookup(name) {
            let mut compiled = Vec::with_capacity(args.len());
            for a in args {
                compiled.push(self.compile(a, scope)?);
            }
            return Ok(Expr::Scalar { name: sname, fun, args: compiled });
        }
        // Stateful functions.
        for (ci, lib) in self.config.libraries.iter().enumerate() {
            if let Some((fname, fun)) = lib.function_entry(name) {
                if scope == Scope::GroupBy {
                    return Err(QueryError::Semantic(format!(
                        "stateful function `{name}` is not allowed in GROUP BY"
                    )));
                }
                let slot = match self.lib_slots[ci] {
                    Some(s) => s,
                    None => {
                        let s = self.used_libs.len();
                        self.used_libs.push(Arc::clone(lib));
                        self.lib_slots[ci] = Some(s);
                        s
                    }
                };
                let mut compiled = Vec::with_capacity(args.len());
                for a in args {
                    compiled.push(self.compile(a, scope)?);
                }
                return Ok(Expr::Sfun { lib: slot, name: fname, fun, args: compiled });
            }
        }
        Err(QueryError::Semantic(format!("unknown function `{name}`")))
    }
}

/// Compile a *pure tuple predicate* against a stream schema, outside of
/// any query: columns resolve directly (no group-by variables) and only
/// scalar functions are allowed — no aggregates, superaggregates, or
/// stateful functions. This is the lowering used for shared prefilters
/// hoisted by `sso-rewrite`: the resulting [`Expr`] can be evaluated
/// against raw tuples ahead of the shard router with no operator state.
pub fn compile_packet_predicate(e: &AstExpr, schema: &Schema) -> Result<Expr, QueryError> {
    match &e.kind {
        ExprKind::Int(v) => Ok(Expr::lit(*v)),
        ExprKind::Float(v) => Ok(Expr::lit(*v)),
        ExprKind::Str(s) => Ok(Expr::lit(s.as_str())),
        ExprKind::Bool(b) => Ok(Expr::lit(*b)),
        ExprKind::Star => {
            Err(QueryError::Semantic("`*` is not valid in a packet predicate".into()))
        }
        ExprKind::Ident(name) => {
            let idx = schema.index_of(name).map_err(|_| {
                QueryError::Semantic(format!(
                    "unknown name `{name}` (not a column of {})",
                    schema.name
                ))
            })?;
            Ok(Expr::Column(idx))
        }
        ExprKind::Neg(inner) => {
            let c = compile_packet_predicate(inner, schema)?;
            Ok(Expr::lit(0i64).sub(c))
        }
        ExprKind::Not(inner) => {
            let c = compile_packet_predicate(inner, schema)?;
            Ok(Expr::Not(Box::new(c)))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let l = compile_packet_predicate(lhs, schema)?;
            let r = compile_packet_predicate(rhs, schema)?;
            Ok(Expr::bin(bin_op(*op), l, r))
        }
        ExprKind::Call { name, superagg: true, .. } => Err(QueryError::Semantic(format!(
            "superaggregate `{name}$` is not allowed in a packet predicate"
        ))),
        ExprKind::Call { name, superagg: false, args } => {
            if let Some((sname, fun)) = sso_core::scalar::lookup(name) {
                let mut compiled = Vec::with_capacity(args.len());
                for a in args {
                    compiled.push(compile_packet_predicate(a, schema)?);
                }
                return Ok(Expr::Scalar { name: sname, fun, args: compiled });
            }
            Err(QueryError::Semantic(format!(
                "function `{name}` is not a pure scalar; packet predicates cannot hold \
                 aggregates or stateful functions"
            )))
        }
    }
}

fn bin_op(op: BinAstOp) -> BinOp {
    match op {
        BinAstOp::Add => BinOp::Add,
        BinAstOp::Sub => BinOp::Sub,
        BinAstOp::Mul => BinOp::Mul,
        BinAstOp::Div => BinOp::Div,
        BinAstOp::Rem => BinOp::Rem,
        BinAstOp::Eq => BinOp::Eq,
        BinAstOp::Ne => BinOp::Ne,
        BinAstOp::Lt => BinOp::Lt,
        BinAstOp::Le => BinOp::Le,
        BinAstOp::Gt => BinOp::Gt,
        BinAstOp::Ge => BinOp::Ge,
        BinAstOp::And => BinOp::And,
        BinAstOp::Or => BinOp::Or,
    }
}

/// Does this (GROUP BY) expression reference an ordered schema column?
pub(crate) fn references_ordered_column(e: &AstExpr, schema: &Schema) -> bool {
    match &e.kind {
        ExprKind::Ident(name) => schema.is_ordered(name),
        ExprKind::Binary { lhs, rhs, .. } => {
            references_ordered_column(lhs, schema) || references_ordered_column(rhs, schema)
        }
        ExprKind::Not(inner) | ExprKind::Neg(inner) => references_ordered_column(inner, schema),
        ExprKind::Call { args, .. } => args.iter().any(|a| references_ordered_column(a, schema)),
        _ => false,
    }
}

/// Is the argument list the single `*` of `count(*)`?
fn is_star_arg(args: &[AstExpr]) -> bool {
    matches!(args, [a] if matches!(a.kind, ExprKind::Star))
}

fn join_args(args: &[AstExpr]) -> String {
    args.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use sso_types::Packet;

    fn pkt_schema() -> Schema {
        Packet::schema()
    }

    fn plan_text(text: &str) -> Result<OperatorSpec, QueryError> {
        let q = parse_query(text).unwrap();
        plan(&q, &pkt_schema(), &PlannerConfig::standard())
    }

    #[test]
    fn plans_simple_aggregation() {
        let spec = plan_text(
            "SELECT tb, srcIP, sum(len), count(*) FROM PKT GROUP BY time/60 as tb, srcIP",
        )
        .unwrap();
        assert_eq!(spec.group_by.len(), 2);
        assert_eq!(spec.window_indices, vec![0], "time/60 defines the window");
        assert_eq!(spec.aggregates.len(), 2);
        assert_eq!(spec.select.len(), 4);
        assert!(spec.sfun_libs.is_empty());
    }

    #[test]
    fn dedupes_repeated_aggregates() {
        let spec = plan_text(
            "SELECT sum(len), sum(len), sum(len) + count(*) FROM PKT GROUP BY time/60 as tb",
        )
        .unwrap();
        assert_eq!(spec.aggregates.len(), 2, "sum(len) appears once, count(*) once");
    }

    #[test]
    fn plans_the_papers_subset_sum_query() {
        let spec = plan_text(
            "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) \
             FROM PKT \
             WHERE ssample(len, 100) = TRUE \
             GROUP BY time/20 as tb, srcIP, destIP, uts \
             HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE \
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY ssclean_with(sum(len)) = TRUE",
        )
        .unwrap();
        assert_eq!(spec.window_indices, vec![0]);
        assert!(spec.supergroup_indices.is_empty(), "default ALL supergroup");
        assert_eq!(spec.sfun_libs.len(), 1);
        assert_eq!(spec.sfun_libs[0].name(), "subsetsum_sampling_state");
        assert_eq!(spec.superaggs.len(), 1, "count_distinct$ deduped");
        assert_eq!(spec.aggregates.len(), 1, "sum(len) deduped");
    }

    #[test]
    fn plans_the_papers_minhash_query() {
        let spec = plan_text(
            "SELECT tb, srcIP, HX \
             FROM PKT \
             WHERE HX <= Kth_smallest_value$(HX, 100) \
             GROUP_BY time/60 as tb, srcIP, H(destIP) as HX \
             SUPERGROUP BY tb, srcIP \
             HAVING HX <= Kth_smallest_value$(HX, 100) \
             CLEANING WHEN count_distinct$(*) > 100 \
             CLEANING BY HX <= Kth_smallest_value$(HX, 100)",
        )
        .unwrap();
        assert_eq!(spec.window_indices, vec![0]);
        // tb is ordered and therefore implicit; srcIP remains.
        assert_eq!(spec.supergroup_indices, vec![1]);
        assert_eq!(spec.superaggs.len(), 2, "kth_smallest and count_distinct");
        assert!(spec.sfun_libs.is_empty());
    }

    #[test]
    fn plans_the_papers_heavy_hitter_query() {
        let spec = plan_text(
            "SELECT tb, srcIP, sum(len), count(*) \
             FROM PKT \
             GROUP BY time/60 as tb, srcIP \
             CLEANING WHEN local_count(100) = TRUE \
             CLEANING BY count(*) + first(current_bucket()) > current_bucket()",
        )
        .unwrap();
        assert_eq!(spec.sfun_libs.len(), 1);
        assert_eq!(spec.sfun_libs[0].name(), "heavy_hitter_state");
        // sum, count, first(current_bucket()).
        assert_eq!(spec.aggregates.len(), 3);
    }

    #[test]
    fn plans_the_papers_reservoir_query() {
        let spec = plan_text(
            "SELECT tb, srcIP, destIP \
             FROM PKT \
             WHERE rsample(100) = TRUE \
             GROUP_BY time/60 as tb, srcIP, destIP \
             HAVING rsfinal_clean(count_distinct$(*)) = TRUE \
             CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY rsclean_with() = TRUE",
        )
        .unwrap();
        assert_eq!(spec.sfun_libs.len(), 1);
        assert_eq!(spec.sfun_libs[0].name(), "reservoir_sampling_state");
    }

    #[test]
    fn sum_superaggregate_pairs_a_group_aggregate() {
        let spec = plan_text(
            "SELECT tb, srcIP, sum$(len) FROM PKT GROUP BY time/60 as tb, srcIP \
             SUPERGROUP srcIP",
        )
        .unwrap();
        assert_eq!(spec.superaggs.len(), 1);
        assert_eq!(spec.aggregates.len(), 1, "paired sum(len) auto-added");
    }

    #[test]
    fn avg_rewrites_to_float_sum_over_count() {
        let spec = plan_text("SELECT tb, avg(len) FROM PKT GROUP BY time/60 as tb").unwrap();
        // avg adds sum(len) and count(*) slots.
        assert_eq!(spec.aggregates.len(), 2);
        // And it dedupes against explicit uses.
        let spec =
            plan_text("SELECT tb, avg(len), sum(len), count(*) FROM PKT GROUP BY time/60 as tb")
                .unwrap();
        assert_eq!(spec.aggregates.len(), 2);
    }

    #[test]
    fn min_max_superaggregates_plan() {
        let spec = plan_text(
            "SELECT tb, srcIP, HX FROM PKT \
             WHERE HX <= max$(HX) GROUP BY time/60 as tb, srcIP, H(destIP) as HX \
             SUPERGROUP srcIP HAVING HX > min$(HX)",
        )
        .unwrap();
        assert_eq!(spec.superaggs.len(), 2);
    }

    #[test]
    fn prefix_scalar_groups_by_subnet() {
        let spec = plan_text(
            "SELECT net, sum(len) FROM PKT GROUP BY time/60 as tb, prefix(srcIP, 24) as net",
        )
        .unwrap();
        assert_eq!(spec.group_by.len(), 2);
    }

    #[test]
    fn distinct_sampling_query_plans_from_text() {
        let spec = plan_text(
            "SELECT tb, srcIP, count(*), dscale() FROM PKT \
             WHERE dsample(srcIP, 256) = TRUE \
             GROUP BY time/60 as tb, srcIP \
             CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY dclean_with(srcIP) = TRUE",
        )
        .unwrap();
        assert_eq!(spec.sfun_libs.len(), 1);
        assert_eq!(spec.sfun_libs[0].name(), "distinct_sampling_state");
    }

    #[test]
    fn semantic_errors() {
        // Unknown column.
        let e = plan_text("SELECT nope FROM PKT GROUP BY time/60 as tb").unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
        // Aggregate in WHERE.
        let e =
            plan_text("SELECT tb FROM PKT WHERE sum(len) > 1 GROUP BY time/60 as tb").unwrap_err();
        assert!(e.to_string().contains("not allowed"), "{e}");
        // Raw column in SELECT that is not grouped.
        let e = plan_text("SELECT len FROM PKT GROUP BY time/60 as tb").unwrap_err();
        assert!(e.to_string().contains("group-by variable"), "{e}");
        // Unknown supergroup variable.
        let e =
            plan_text("SELECT tb FROM PKT GROUP BY time/60 as tb SUPERGROUP bogus").unwrap_err();
        assert!(e.to_string().contains("bogus"), "{e}");
        // Unknown function.
        let e = plan_text("SELECT tb, zap(len) FROM PKT GROUP BY time/60 as tb").unwrap_err();
        assert!(e.to_string().contains("unknown function"), "{e}");
        // Unknown superaggregate.
        let e = plan_text("SELECT tb, weird$(*) FROM PKT GROUP BY time/60 as tb").unwrap_err();
        assert!(e.to_string().contains("unknown superaggregate"), "{e}");
        // Duplicate group-by names.
        let e = plan_text("SELECT tb FROM PKT GROUP BY time/60 as tb, len as tb").unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        // Bare star.
        let e = plan_text("SELECT * FROM PKT GROUP BY time/60 as tb").unwrap_err();
        assert!(e.to_string().contains("only valid"), "{e}");
    }

    #[test]
    fn kth_smallest_requires_literal_k_and_gb_key() {
        let e = plan_text(
            "SELECT tb FROM PKT WHERE len <= Kth_smallest_value$(len, 10) \
             GROUP BY time/60 as tb",
        )
        .unwrap_err();
        assert!(e.to_string().contains("group-by variable"), "{e}");
        let e = plan_text(
            "SELECT tb FROM PKT WHERE tb <= Kth_smallest_value$(tb, 0) GROUP BY time/60 as tb",
        )
        .unwrap_err();
        assert!(e.to_string().contains("positive integer"), "{e}");
    }

    #[test]
    fn group_by_variables_shadow_columns() {
        // srcIP is both a column and (by naming) a group-by variable;
        // SELECT resolves it as the group-by var.
        let spec = plan_text("SELECT srcIP FROM PKT GROUP BY time/60 as tb, srcIP").unwrap();
        match &spec.select[0].1 {
            Expr::GroupVar(1) => {}
            other => panic!("expected GroupVar(1), got {other:?}"),
        }
    }

    #[test]
    fn compile_and_run_end_to_end() {
        use crate::compile;
        use sso_types::{Protocol, Value};
        let mut op = compile(
            "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/2 as tb",
            &pkt_schema(),
            &PlannerConfig::standard(),
        )
        .unwrap();
        let mut tuples = Vec::new();
        for s in 0..4u64 {
            for i in 0..10u64 {
                let p = Packet {
                    uts: s * 1_000_000_000 + i,
                    src_ip: 1,
                    dest_ip: 2,
                    src_port: 3,
                    dest_port: 4,
                    proto: Protocol::Tcp,
                    len: 100,
                };
                tuples.push(p.to_tuple());
            }
        }
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert_eq!(o.rows[0].get(1), &Value::U64(2000));
            assert_eq!(o.rows[0].get(2), &Value::U64(20));
        }
    }
}
