//! The self-monitoring meta-stream.
//!
//! Gigascope's operators were diagnosed by pointing the DSMS at itself;
//! we do the same. Each registry [`Snapshot`] is rendered as a batch of
//! tuples over a published [`Schema`], so any query — including the
//! sampling operator — can consume its own telemetry: heavy-hitters
//! over eviction counts, windows over the threshold trajectory, etc.
//!
//! The `seq` field is snapshot sequence, declared `Increasing`, so the
//! query layer can window on it exactly like a timestamp.

use sso_types::{Field, FieldType, Schema, Tuple, Value};

use crate::registry::Snapshot;

/// The base-stream name the query layer resolves to [`metrics_schema`].
pub const METRICS_STREAM: &str = "METRICS";

/// Schema of the meta-stream:
/// `METRICS(seq, kind, metric, label, value, hits)`.
///
/// * `seq` — snapshot sequence number (Increasing; windowable).
/// * `kind` — `"counter" | "gauge" | "histogram"`.
/// * `metric` — metric name, e.g. `"op.threshold_z"`.
/// * `label` — instance label, e.g. `"shard=3"` (empty if unlabeled).
/// * `value` — merged scalar: counter value, gauge value, or histogram
///   sum.
/// * `hits` — observation count: 1 for counters/gauges, histogram
///   `count` for histograms.
pub fn metrics_schema() -> Schema {
    Schema::new(
        METRICS_STREAM,
        vec![
            Field::increasing("seq", FieldType::U64),
            Field::new("kind", FieldType::Str),
            Field::new("metric", FieldType::Str),
            Field::new("label", FieldType::Str),
            Field::new("value", FieldType::F64),
            Field::new("hits", FieldType::U64),
        ],
    )
}

/// Render one snapshot as meta-stream tuples (one per merged metric).
pub fn snapshot_tuples(snap: &Snapshot) -> Vec<Tuple> {
    snap.metrics
        .iter()
        .map(|m| {
            Tuple::new(vec![
                Value::U64(snap.seq),
                Value::str(m.kind.as_str()),
                Value::str(m.name),
                Value::str(&m.label),
                Value::F64(m.scalar()),
                Value::U64(m.hits()),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn schema_matches_tuples() {
        let r = Registry::new();
        r.counter("op.evictions").add(7);
        r.gauge("op.threshold_z").set(123.5);
        let h = r.histogram("op.process_ns");
        h.record(10);
        h.record(30);

        let schema = metrics_schema();
        let tuples = snapshot_tuples(&r.snapshot());
        assert_eq!(tuples.len(), 3);
        for t in &tuples {
            t.check_arity(&schema).unwrap();
            assert_eq!(t.get(0), &Value::U64(0), "first snapshot has seq 0");
        }
        // Sorted by name: evictions, process_ns, threshold_z.
        assert_eq!(tuples[0].get(2), &Value::str("op.evictions"));
        assert_eq!(tuples[0].get(4), &Value::F64(7.0));
        assert_eq!(tuples[1].get(1), &Value::str("histogram"));
        assert_eq!(tuples[1].get(4), &Value::F64(40.0));
        assert_eq!(tuples[1].get(5), &Value::U64(2));
        assert_eq!(tuples[2].get(4), &Value::F64(123.5));
    }

    #[test]
    fn seq_field_is_increasing() {
        let schema = metrics_schema();
        assert!(schema.is_ordered("seq"));
        assert_eq!(schema.index_of("seq").unwrap(), 0);
    }
}
