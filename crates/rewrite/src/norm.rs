//! Plan normalization: rewrite parsed queries into a canonical
//! symbolic form so that syntactic identity of the rendering *is*
//! plan equivalence for the sharing analysis.
//!
//! The normal form is reached by a terminating rewrite system:
//!
//! 1. **Constant folding** — integer arithmetic, boolean logic, and
//!    literal comparisons evaluate at analysis time (`2 * 30` → `60`,
//!    `1 < 2` → `TRUE`).
//! 2. **Vacuous-term elimination** — `x AND TRUE` → `x`,
//!    `FALSE OR x` → `x`, `NOT NOT x` → `x`, `x = TRUE` → `x` (for
//!    boolean `x`); the short-circuit-absorbing folds
//!    (`FALSE AND x` → `FALSE`, `TRUE OR x` → `TRUE`) are always sound
//!    because the unshared evaluator short-circuits and never runs `x`;
//!    the mirrored folds that *discard an evaluated* `x`
//!    (`x AND FALSE` → `FALSE`) apply only when `x` is pure, so no
//!    stateful call disappears.
//! 3. **Commutative-operand ordering** — `AND`/`OR`/`+`/`*` chains are
//!    flattened, deduplicated (for the idempotent logical ops), sorted
//!    by rendering, and rebuilt left-associated — but **only when every
//!    operand is pure**: reordering a conjunction containing a stateful
//!    sampling function would permute its state-update sequence.
//! 4. **Comparison orientation** — literals move to the right-hand side
//!    (`100 <= len` → `len >= 100`), so the implication prover sees one
//!    shape.
//!
//! Canonical identity is the rendered text of the normalized query
//! (spans are ignored by [`AstExpr`] equality and by `Display`); node
//! hashes in rewrite certificates are FNV-1a over that text.

use sso_query::{AstExpr, BinAstOp, ExprKind, Query, Span};
use sso_types::Schema;

/// FNV-1a over a canonical rendering: the node-hash function used in
/// rewrite certificates. Stable across runs and platforms.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Is this expression *pure*: free of stateful sampling functions,
/// aggregates, and superaggregates? Pure expressions may be reordered,
/// deduplicated, and hoisted into a shared prefilter; impure ones pin
/// evaluation order.
pub fn is_pure(e: &AstExpr) -> bool {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) | ExprKind::Bool(_) => true,
        ExprKind::Ident(_) => true,
        ExprKind::Star => false,
        ExprKind::Not(inner) | ExprKind::Neg(inner) => is_pure(inner),
        ExprKind::Binary { lhs, rhs, .. } => is_pure(lhs) && is_pure(rhs),
        ExprKind::Call { superagg: true, .. } => false,
        ExprKind::Call { name, superagg: false, args } => {
            // Only registered scalar functions are pure; anything else
            // (aggregates, SFUN library calls, unknowns) is not.
            sso_core::scalar::lookup(name).is_some() && args.iter().all(is_pure)
        }
    }
}

/// Is this expression *total*: guaranteed to evaluate without a runtime
/// error on every tuple? Division and remainder are total only when the
/// divisor is a nonzero literal. Totality is the side condition that
/// makes hoisting sound: a hoisted clause runs on tuples the original
/// query might have short-circuited past, so it must not be able to
/// fail.
pub fn is_total(e: &AstExpr) -> bool {
    match &e.kind {
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Ident(_)
        | ExprKind::Star => true,
        ExprKind::Not(inner) | ExprKind::Neg(inner) => is_total(inner),
        ExprKind::Binary { op: BinAstOp::Div | BinAstOp::Rem, lhs, rhs } => {
            is_total(lhs)
                && matches!(&rhs.kind,
                    ExprKind::Int(n) if *n != 0)
        }
        ExprKind::Binary { lhs, rhs, .. } => is_total(lhs) && is_total(rhs),
        ExprKind::Call { args, .. } => args.iter().all(is_total),
    }
}

/// Flatten a top-level `AND` chain into its conjuncts, in evaluation
/// order.
pub fn conjuncts(e: &AstExpr) -> Vec<&AstExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a AstExpr, out: &mut Vec<&'a AstExpr>) {
        if let ExprKind::Binary { op: BinAstOp::And, lhs, rhs } = &e.kind {
            walk(lhs, out);
            walk(rhs, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

fn mk(kind: ExprKind, span: Span) -> AstExpr {
    AstExpr { kind, span }
}

fn bool_lit(b: bool, span: Span) -> AstExpr {
    mk(ExprKind::Bool(b), span)
}

/// Does the expression have boolean shape (comparison, logical op,
/// NOT, or boolean literal)? Used to gate `x = TRUE` → `x`.
fn is_boolean(e: &AstExpr) -> bool {
    match &e.kind {
        ExprKind::Bool(_) | ExprKind::Not(_) => true,
        ExprKind::Binary { op, .. } => op.is_comparison() || op.is_logical(),
        _ => false,
    }
}

fn flip(op: BinAstOp) -> BinAstOp {
    match op {
        BinAstOp::Lt => BinAstOp::Gt,
        BinAstOp::Le => BinAstOp::Ge,
        BinAstOp::Gt => BinAstOp::Lt,
        BinAstOp::Ge => BinAstOp::Le,
        other => other,
    }
}

fn is_literal(e: &AstExpr) -> bool {
    matches!(e.kind, ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) | ExprKind::Bool(_))
}

fn num(e: &AstExpr) -> Option<f64> {
    match &e.kind {
        ExprKind::Int(v) => Some(*v as f64),
        ExprKind::Float(v) => Some(*v),
        _ => None,
    }
}

/// Fold a binary op over two literals, when that is exactly computable.
fn fold(op: BinAstOp, lhs: &AstExpr, rhs: &AstExpr, span: Span) -> Option<AstExpr> {
    if let (ExprKind::Int(a), ExprKind::Int(b)) = (&lhs.kind, &rhs.kind) {
        let v = match op {
            BinAstOp::Add => a.checked_add(*b),
            BinAstOp::Sub => a.checked_sub(*b),
            BinAstOp::Mul => a.checked_mul(*b),
            BinAstOp::Div => a.checked_div(*b),
            BinAstOp::Rem => a.checked_rem(*b),
            _ => None,
        };
        if let Some(v) = v {
            return Some(mk(ExprKind::Int(v), span));
        }
    }
    if op.is_comparison() {
        if let (Some(a), Some(b)) = (num(lhs), num(rhs)) {
            let v = match op {
                BinAstOp::Eq => a == b,
                BinAstOp::Ne => a != b,
                BinAstOp::Lt => a < b,
                BinAstOp::Le => a <= b,
                BinAstOp::Gt => a > b,
                BinAstOp::Ge => a >= b,
                _ => unreachable!("comparison"),
            };
            return Some(bool_lit(v, span));
        }
        if let (ExprKind::Str(a), ExprKind::Str(b)) = (&lhs.kind, &rhs.kind) {
            let v = match op {
                BinAstOp::Eq => a == b,
                BinAstOp::Ne => a != b,
                _ => return None,
            };
            return Some(bool_lit(v, span));
        }
    }
    None
}

/// Normalize one expression into canonical form. Terminates: every rule
/// strictly shrinks the tree or sorts a fixed-size operand list.
pub fn normalize(e: &AstExpr) -> AstExpr {
    let span = e.span;
    match &e.kind {
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Ident(_)
        | ExprKind::Star => e.clone(),
        ExprKind::Neg(inner) => mk(ExprKind::Neg(Box::new(normalize(inner))), span),
        ExprKind::Not(inner) => {
            let n = normalize(inner);
            match n.kind {
                ExprKind::Bool(b) => bool_lit(!b, span),
                ExprKind::Not(x) => *x,
                _ => mk(ExprKind::Not(Box::new(n)), span),
            }
        }
        ExprKind::Call { name, superagg, args } => mk(
            ExprKind::Call {
                name: name.clone(),
                superagg: *superagg,
                args: args.iter().map(normalize).collect(),
            },
            span,
        ),
        ExprKind::Binary { op, lhs, rhs } => {
            let l = normalize(lhs);
            let r = normalize(rhs);
            if let Some(folded) = fold(*op, &l, &r, span) {
                return folded;
            }
            match op {
                BinAstOp::And => normalize_logical(BinAstOp::And, l, r, span),
                BinAstOp::Or => normalize_logical(BinAstOp::Or, l, r, span),
                BinAstOp::Add | BinAstOp::Mul => normalize_chain(*op, l, r, span),
                BinAstOp::Eq | BinAstOp::Ne => {
                    // `x = TRUE` → x; `x != FALSE` → x (boolean x only).
                    if let ExprKind::Bool(b) = r.kind {
                        let keep = (b && *op == BinAstOp::Eq) || (!b && *op == BinAstOp::Ne);
                        if keep && is_boolean(&l) {
                            return l;
                        }
                    }
                    if let ExprKind::Bool(b) = l.kind {
                        let keep = (b && *op == BinAstOp::Eq) || (!b && *op == BinAstOp::Ne);
                        if keep && is_boolean(&r) {
                            return r;
                        }
                    }
                    orient(*op, l, r, span)
                }
                _ if op.is_comparison() => orient(*op, l, r, span),
                _ => mk(ExprKind::Binary { op: *op, lhs: Box::new(l), rhs: Box::new(r) }, span),
            }
        }
    }
}

/// Literal-on-the-right orientation for comparisons.
fn orient(op: BinAstOp, l: AstExpr, r: AstExpr, span: Span) -> AstExpr {
    if is_literal(&l) && !is_literal(&r) {
        mk(ExprKind::Binary { op: flip(op), lhs: Box::new(r), rhs: Box::new(l) }, span)
    } else {
        mk(ExprKind::Binary { op, lhs: Box::new(l), rhs: Box::new(r) }, span)
    }
}

/// AND/OR: identity/annihilator folds, then pure-chain canonical
/// ordering with idempotent dedup.
fn normalize_logical(op: BinAstOp, l: AstExpr, r: AstExpr, span: Span) -> AstExpr {
    let and = op == BinAstOp::And;
    // Identity element: TRUE AND x → x, FALSE OR x → x (either side).
    if matches!(l.kind, ExprKind::Bool(b) if b == and) {
        return r;
    }
    if matches!(r.kind, ExprKind::Bool(b) if b == and) {
        return l;
    }
    // Annihilator. A left annihilator short-circuits `r` away, which is
    // sound unconditionally; folding away an *evaluated* left operand
    // needs purity so no stateful call is erased.
    if matches!(l.kind, ExprKind::Bool(b) if b != and) {
        return bool_lit(!and, span);
    }
    if matches!(r.kind, ExprKind::Bool(b) if b != and) && is_pure(&l) {
        return bool_lit(!and, span);
    }
    normalize_chain(op, l, r, span)
}

/// Flatten, sort, and (for logical ops) dedup a commutative chain —
/// only when every operand is pure, because reordering impure operands
/// permutes stateful call sequences.
fn normalize_chain(op: BinAstOp, l: AstExpr, r: AstExpr, span: Span) -> AstExpr {
    let rebuilt = mk(ExprKind::Binary { op, lhs: Box::new(l), rhs: Box::new(r) }, span);
    let mut operands = Vec::new();
    fn flatten(e: &AstExpr, op: BinAstOp, out: &mut Vec<AstExpr>) {
        if let ExprKind::Binary { op: o, lhs, rhs } = &e.kind {
            if *o == op {
                flatten(lhs, op, out);
                flatten(rhs, op, out);
                return;
            }
        }
        out.push(e.clone());
    }
    flatten(&rebuilt, op, &mut operands);
    if !operands.iter().all(is_pure) {
        return rebuilt;
    }
    operands.sort_by_key(|a| a.to_string());
    if op.is_logical() {
        operands.dedup_by(|a, b| a == b);
    }
    let mut it = operands.into_iter();
    let first = it.next().expect("chain has at least one operand");
    it.fold(first, |acc, x| mk(ExprKind::Binary { op, lhs: Box::new(acc), rhs: Box::new(x) }, span))
}

/// Replace every literal with the parameter hole `?`, for
/// equivalent-modulo-constants comparison (W302).
pub fn abstract_literals(e: &AstExpr) -> AstExpr {
    let span = e.span;
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) => {
            mk(ExprKind::Ident("?".to_string()), span)
        }
        ExprKind::Bool(_) | ExprKind::Ident(_) | ExprKind::Star => e.clone(),
        ExprKind::Neg(inner) => mk(ExprKind::Neg(Box::new(abstract_literals(inner))), span),
        ExprKind::Not(inner) => mk(ExprKind::Not(Box::new(abstract_literals(inner))), span),
        ExprKind::Binary { op, lhs, rhs } => mk(
            ExprKind::Binary {
                op: *op,
                lhs: Box::new(abstract_literals(lhs)),
                rhs: Box::new(abstract_literals(rhs)),
            },
            span,
        ),
        ExprKind::Call { name, superagg, args } => mk(
            ExprKind::Call {
                name: name.clone(),
                superagg: *superagg,
                args: args.iter().map(abstract_literals).collect(),
            },
            span,
        ),
    }
}

/// A statement in canonical form, with everything the sharing analysis
/// needs precomputed.
#[derive(Debug, Clone)]
pub struct NormalizedStatement {
    /// 0-based statement index in the source file.
    pub index: usize,
    /// Byte offset of the statement in the source file (for span
    /// rebasing).
    pub base: usize,
    /// The parsed original.
    pub query: Query,
    /// The normalized clone (all clause expressions canonical).
    pub norm: Query,
    /// Canonical rendering of the normalized query.
    pub canonical: String,
    /// FNV-1a of `canonical` — the certificate node hash.
    pub hash: u64,
    /// Canonical rendering with literals abstracted to `?`.
    pub param_canonical: String,
    /// FNV-1a of `param_canonical`.
    pub param_hash: u64,
    /// The maximal *pure and total* prefix of the WHERE conjunction, in
    /// canonical form: the hoistable prefilter clauses.
    pub hoistable: Vec<AstExpr>,
    /// Base stream name (uppercased as written).
    pub stream: String,
    /// Window length in units of the ordered column's period, when the
    /// window group item has a recognizable `time/n` shape.
    pub window: Option<u64>,
    /// Span of the window-defining group item (for W304 anchors).
    pub window_span: Span,
    /// Canonical renderings of the non-window group-by expressions.
    pub group_keys: Vec<String>,
}

/// Normalize a parsed base-stream statement.
pub fn normalize_statement(
    index: usize,
    base: usize,
    query: &Query,
    schema: &Schema,
) -> NormalizedStatement {
    let norm = Query {
        select: query
            .select
            .iter()
            .map(|s| sso_query::SelectItem { expr: normalize(&s.expr), alias: s.alias.clone() })
            .collect(),
        from: query.from.clone(),
        where_clause: query.where_clause.as_ref().map(normalize),
        group_by: query
            .group_by
            .iter()
            .map(|g| sso_query::ast::GroupItem { expr: normalize(&g.expr), alias: g.alias.clone() })
            .collect(),
        supergroup: query.supergroup.clone(),
        having: query.having.as_ref().map(normalize),
        cleaning_when: query.cleaning_when.as_ref().map(normalize),
        cleaning_by: query.cleaning_by.as_ref().map(normalize),
    };
    let canonical = norm.to_string();
    let param = Query {
        select: norm
            .select
            .iter()
            .map(|s| sso_query::SelectItem {
                expr: abstract_literals(&s.expr),
                alias: s.alias.clone(),
            })
            .collect(),
        where_clause: norm.where_clause.as_ref().map(abstract_literals),
        group_by: norm
            .group_by
            .iter()
            .map(|g| sso_query::ast::GroupItem {
                expr: abstract_literals(&g.expr),
                alias: g.alias.clone(),
            })
            .collect(),
        having: norm.having.as_ref().map(abstract_literals),
        cleaning_when: norm.cleaning_when.as_ref().map(abstract_literals),
        cleaning_by: norm.cleaning_by.as_ref().map(abstract_literals),
        ..norm.clone()
    };
    let param_canonical = param.to_string();

    // Hoistable prefix: stop at the first impure or partial conjunct.
    // Everything before it runs (and short-circuits) before any
    // stateful call, so evaluating it ahead of the operator preserves
    // every sampler's state-update sequence.
    let hoistable = match &norm.where_clause {
        Some(w) => {
            conjuncts(w).into_iter().take_while(|c| is_pure(c) && is_total(c)).cloned().collect()
        }
        None => Vec::new(),
    };

    let period = |_: &str| Some(1);
    let mut window = None;
    let mut window_span = Span::DUMMY;
    let mut group_keys = Vec::new();
    for item in &query.group_by {
        match sso_analysis::bounds::window_seconds(&item.expr, schema, &period) {
            Some(w) if window.is_none() => {
                window = Some(w);
                window_span = item.expr.span;
            }
            _ => group_keys.push(normalize(&item.expr).to_string()),
        }
    }

    NormalizedStatement {
        index,
        base,
        query: query.clone(),
        hash: fnv1a(&canonical),
        param_hash: fnv1a(&param_canonical),
        canonical,
        param_canonical,
        norm,
        hoistable,
        stream: query.from.text.clone(),
        window,
        window_span,
        group_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_query::parse_query;

    fn expr(text: &str) -> AstExpr {
        parse_query(&format!("SELECT tb FROM PKT WHERE {text} GROUP BY time/60 as tb"))
            .unwrap()
            .where_clause
            .unwrap()
    }

    #[test]
    fn constants_fold() {
        assert_eq!(normalize(&expr("len > 2 * 30")).to_string(), "(len > 60)");
        assert_eq!(normalize(&expr("1 < 2")).to_string(), "TRUE");
        assert_eq!(normalize(&expr("NOT (1 < 2)")).to_string(), "FALSE");
    }

    #[test]
    fn vacuous_terms_drop() {
        assert_eq!(normalize(&expr("len > 10 AND 1 < 2")).to_string(), "(len > 10)");
        assert_eq!(normalize(&expr("(len > 10) = TRUE")).to_string(), "(len > 10)");
        assert_eq!(normalize(&expr("NOT NOT (len > 10)")).to_string(), "(len > 10)");
    }

    #[test]
    fn pure_conjunctions_sort_and_dedup() {
        let a = normalize(&expr("src_port = 80 AND len > 100"));
        let b = normalize(&expr("len > 100 AND src_port = 80"));
        assert_eq!(a, b);
        let c = normalize(&expr("len > 100 AND len > 100"));
        assert_eq!(c.to_string(), "(len > 100)");
    }

    #[test]
    fn stateful_conjunctions_keep_order() {
        let a = normalize(&expr("ssample(len, 100) AND len > 10"));
        let b = normalize(&expr("len > 10 AND ssample(len, 100)"));
        assert_ne!(a, b, "reordering around a stateful call must not happen");
    }

    #[test]
    fn comparisons_orient_literal_right() {
        assert_eq!(normalize(&expr("100 <= len")).to_string(), "(len >= 100)");
        assert_eq!(normalize(&expr("100 = len")).to_string(), "(len = 100)");
    }

    #[test]
    fn purity_and_totality_classify() {
        assert!(is_pure(&expr("len > 100")));
        assert!(!is_pure(&expr("ssample(len, 100)")));
        assert!(is_total(&expr("len / 10 > 3")));
        assert!(!is_total(&expr("len / src_port > 3")), "divisor not a literal");
        assert!(!is_total(&expr("len / 0 > 3")), "zero divisor");
    }

    #[test]
    fn hoistable_prefix_stops_at_state() {
        let schema = sso_query::base_stream_schema("PKT").unwrap();
        let q = parse_query(
            "SELECT tb FROM PKT WHERE len > 10 AND ssample(len, 100) AND src_port = 80 \
             GROUP BY time/60 as tb",
        )
        .unwrap();
        let n = normalize_statement(0, 0, &q, &schema);
        // Only the prefix before the sampler hoists; src_port = 80
        // after the sampler stays put.
        assert_eq!(n.hoistable.len(), 1);
        assert_eq!(n.hoistable[0].to_string(), "(len > 10)");
        assert_eq!(n.window, Some(60));
        assert!(n.group_keys.is_empty());
    }

    #[test]
    fn param_abstraction_equates_modulo_constants() {
        let schema = sso_query::base_stream_schema("PKT").unwrap();
        let mk = |t: &str| normalize_statement(0, 0, &parse_query(t).unwrap(), &schema);
        let a = mk("SELECT tb FROM PKT WHERE len > 100 GROUP BY time/60 as tb");
        let b = mk("SELECT tb FROM PKT WHERE len > 200 GROUP BY time/60 as tb");
        assert_ne!(a.hash, b.hash);
        assert_eq!(a.param_hash, b.param_hash);
    }
}
