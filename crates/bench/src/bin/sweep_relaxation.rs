//! **Ablation — the relaxation factor f.**
//!
//! The paper fixes `f = 10`. This ablation sweeps f ∈ {1, 2, 5, 10, 20}
//! on the bursty feed and reports the accuracy/cleaning-cost trade-off:
//! larger f buys robustness to load drops (accuracy) at the price of
//! more cleaning phases per window.

use sso_bench::{header, maybe_json, run_subset_sum};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_netgen::research_feed;

#[derive(serde::Serialize)]
struct Row {
    f: f64,
    mean_abs_err_pct: f64,
    worst_abs_err_pct: f64,
    cleanings_per_period: f64,
}

fn main() {
    const WINDOW: u64 = 20;
    const SECONDS: u64 = 600;
    const N: usize = 1000;
    let packets = research_feed(0xf162).take_seconds(SECONDS);

    let mut rows = Vec::new();
    for f in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let series = run_subset_sum(
            &packets,
            WINDOW,
            SubsetSumOpConfig { target: N, initial_z: 1.0, relax_factor: f, gamma: 2.0 },
        )
        .unwrap();
        let errs: Vec<f64> = series
            .iter()
            .filter(|w| w.actual > 0)
            .map(|w| 100.0 * (w.estimate - w.actual as f64).abs() / w.actual as f64)
            .collect();
        rows.push(Row {
            f,
            mean_abs_err_pct: errs.iter().sum::<f64>() / errs.len().max(1) as f64,
            worst_abs_err_pct: errs.iter().cloned().fold(0.0, f64::max),
            cleanings_per_period: series.iter().map(|w| w.cleanings).sum::<u64>() as f64
                / series.len().max(1) as f64,
        });
    }

    if maybe_json(&rows) {
        return;
    }
    header("Ablation: relaxation factor f (N = 1000, bursty feed, 20s periods)");
    println!(
        "{:>6} {:>14} {:>14} {:>22}",
        "f", "mean |err| %", "worst |err| %", "cleanings per period"
    );
    for r in &rows {
        println!(
            "{:>6.0} {:>14.2} {:>14.2} {:>22.1}",
            r.f, r.mean_abs_err_pct, r.worst_abs_err_pct, r.cleanings_per_period
        );
    }
    println!(
        "\ntrade-off: f = 1 (non-relaxed) is cheapest but inaccurate under load \
         drops; the paper's f = 10 buys accuracy for a few extra cleaning phases; \
         beyond that, more cleanings for little accuracy gain."
    );
}
