//! Structured diagnostics for the query analyzer, with rustc-style
//! rendering.
//!
//! The analyzer does not stop at the first problem: it walks the whole
//! query and returns a *list* of [`Diagnostic`]s, each carrying a
//! stable [`Code`], a byte-offset [`Span`] into the source, a message,
//! and an optional help line. [`render`] turns a batch of diagnostics
//! into the familiar `error[E003]: ... --> query:2:7` display with a
//! caret line under the offending characters.

use std::fmt;

use crate::ast::Span;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The query is still plannable; the construct is merely suspect.
    Warning,
    /// The query cannot be planned.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. `E...` are errors, `W...` warnings; `W1xx`
/// codes come from the Gigascope cascade linter rather than the
/// single-query analyzer, `W2xx` codes from the `sso-analysis`
/// static audit pass (memory bounds, skew, degradation safety), and
/// `W3xx` codes from the `sso-rewrite` plan-rewrite optimizer
/// (multi-query sharing analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Lexical error (bad character, unterminated string).
    E100,
    /// Syntax error.
    E101,
    /// Duplicate group-by variable name.
    E001,
    /// Unknown name: neither a column nor a group-by variable in scope.
    E002,
    /// Name or function not allowed in this clause's scope.
    E003,
    /// Unknown function.
    E004,
    /// Unknown superaggregate.
    E005,
    /// Wrong number of arguments.
    E006,
    /// `*` outside `count(*)` / `count_distinct$(*)`.
    E007,
    /// Type mismatch (e.g. arithmetic on a string).
    E008,
    /// Empty GROUP BY list.
    E009,
    /// Window-safety: sampling clauses but no ordered-attribute window.
    E010,
    /// SUPERGROUP variable is not a group-by variable.
    E011,
    /// CLEANING WHEN and CLEANING BY must appear together.
    E012,
    /// `Kth_smallest_value$` argument constraints.
    E013,
    /// CLEANING WHEN predicate is constant (never or always fires).
    W001,
    /// Subset-sum cleaning never updates its threshold.
    W002,
    /// Heavy-hitter configuration makes the count bound vacuous.
    W003,
    /// Non-boolean predicate coerced through C-style truthiness.
    W004,
    /// Duplicate output column names.
    W005,
    /// Two statements in one file apply an identical normalized
    /// prefilter over the same base stream (cheap cross-statement form
    /// of the optimizer's sharing analysis).
    W103,
    /// Cascade push-down is not partial-aggregation-safe.
    W101,
    /// Query is not shard-mergeable: it cannot run on a partitioned
    /// multi-shard runtime.
    W102,
    /// Unbounded state: exact GROUP BY over an unbounded-cardinality
    /// key with no sampling operator to cap the group table.
    W201,
    /// Skew hazard: partition-key cardinality is below the shard count
    /// (or constant), so the router cannot spread load.
    W202,
    /// Non-mergeable plan requested with `--shards > 1`; the static
    /// upgrade of the runtime-discovered [`W102`](Code::W102).
    W203,
    /// Shed-unsafe: `Backpressure::Shed` weights by a column the plan
    /// cannot prove numeric and non-negative.
    W204,
    /// Deletion-unsafe sampler: the plan's sampling state cannot absorb
    /// retractions on a turnstile stream.
    W205,
    /// State budget below the spill pager's working-set floor: the
    /// paged group table pins two pages (the open page and the touched
    /// page), so a per-shard budget under two pages cannot be enforced.
    W206,
    /// Shareable prefilter not shared: several statements' predicates
    /// all imply a common pure prefilter, but each fan-out query
    /// evaluates it independently. Fires only when the optimizer's
    /// rewrite is not applied (`sso optimize --explain`).
    W301,
    /// Two subplans are equivalent modulo integer/float constants;
    /// parameterizing the constant would let one plan serve both.
    W302,
    /// A provable sharing rewrite is blocked by a non-shard-mergeable
    /// sampler: the shared operator could not run on the partitioned
    /// runtime, so each query keeps its own instance.
    W303,
    /// Two otherwise-compatible queries window the same stream at
    /// periods differing by an integer multiple; the coarser query is
    /// derivable from the finer one's partial aggregates (§7.2).
    W304,
}

impl Code {
    /// The code as it renders, e.g. `E003`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E100 => "E100",
            Code::E101 => "E101",
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::E006 => "E006",
            Code::E007 => "E007",
            Code::E008 => "E008",
            Code::E009 => "E009",
            Code::E010 => "E010",
            Code::E011 => "E011",
            Code::E012 => "E012",
            Code::E013 => "E013",
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
            Code::W005 => "W005",
            Code::W103 => "W103",
            Code::W101 => "W101",
            Code::W102 => "W102",
            Code::W201 => "W201",
            Code::W202 => "W202",
            Code::W203 => "W203",
            Code::W204 => "W204",
            Code::W205 => "W205",
            Code::W206 => "W206",
            Code::W301 => "W301",
            Code::W302 => "W302",
            Code::W303 => "W303",
            Code::W304 => "W304",
        }
    }

    /// The severity implied by the code's letter.
    pub fn severity(self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Code {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Keep in sync with `as_str`; the round-trip is unit-tested.
        Ok(match s {
            "E100" => Code::E100,
            "E101" => Code::E101,
            "E001" => Code::E001,
            "E002" => Code::E002,
            "E003" => Code::E003,
            "E004" => Code::E004,
            "E005" => Code::E005,
            "E006" => Code::E006,
            "E007" => Code::E007,
            "E008" => Code::E008,
            "E009" => Code::E009,
            "E010" => Code::E010,
            "E011" => Code::E011,
            "E012" => Code::E012,
            "E013" => Code::E013,
            "W001" => Code::W001,
            "W002" => Code::W002,
            "W003" => Code::W003,
            "W004" => Code::W004,
            "W005" => Code::W005,
            "W103" => Code::W103,
            "W101" => Code::W101,
            "W102" => Code::W102,
            "W201" => Code::W201,
            "W202" => Code::W202,
            "W203" => Code::W203,
            "W204" => Code::W204,
            "W205" => Code::W205,
            "W206" => Code::W206,
            "W301" => Code::W301,
            "W302" => Code::W302,
            "W303" => Code::W303,
            "W304" => Code::W304,
            other => return Err(format!("unknown diagnostic code `{other}`")),
        })
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code.
    pub code: Code,
    /// Byte range in the query source this points at.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// Optional suggestion.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic; severity is derived from the code.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: code.severity(), code, span, message: message.into(), help: None }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// `true` if this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.label(), self.code, self.message)
    }
}

impl Diagnostic {
    /// One machine-readable JSON object, on one line, for `sso check
    /// --json`. The shape is fixed — `code`, `severity`, `span`
    /// (`start`/`end` byte offsets), `message`, `help` (string or
    /// null) — so editors and CI can split on newlines and parse each
    /// independently.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"code\":\"");
        out.push_str(self.code.as_str());
        out.push_str("\",\"severity\":\"");
        out.push_str(self.severity.label());
        out.push_str("\",\"span\":{\"start\":");
        out.push_str(&self.span.start.to_string());
        out.push_str(",\"end\":");
        out.push_str(&self.span.end.to_string());
        out.push_str("},\"message\":");
        json_string(&mut out, &self.message);
        out.push_str(",\"help\":");
        match &self.help {
            Some(h) => json_string(&mut out, h),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parse one line of [`to_json`](Self::to_json) output back into a
    /// diagnostic (the vendored serde has no deserializer, so this is a
    /// purpose-built reader for exactly that shape; unknown keys are
    /// rejected, key order is free). Severity is re-derived from the
    /// code, and a `severity` field that contradicts it is an error.
    pub fn from_json(line: &str) -> Result<Diagnostic, String> {
        let mut p = JsonReader::new(line);
        let (mut code, mut severity, mut span) = (None, None, None);
        let (mut message, mut help) = (None, None);
        p.expect('{')?;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "code" => code = Some(p.string()?.parse::<Code>()?),
                "severity" => severity = Some(p.string()?),
                "message" => message = Some(p.string()?),
                "help" => help = p.string_or_null()?,
                "span" => {
                    let (mut start, mut end) = (None, None);
                    p.expect('{')?;
                    loop {
                        let k = p.string()?;
                        p.expect(':')?;
                        match k.as_str() {
                            "start" => start = Some(p.number()?),
                            "end" => end = Some(p.number()?),
                            other => return Err(format!("unknown span key `{other}`")),
                        }
                        if !p.more_entries()? {
                            break;
                        }
                    }
                    span = Some(Span::new(
                        start.ok_or("span missing `start`")?,
                        end.ok_or("span missing `end`")?,
                    ));
                }
                other => return Err(format!("unknown diagnostic key `{other}`")),
            }
            if !p.more_entries()? {
                break;
            }
        }
        p.finish()?;
        let code = code.ok_or("missing `code`")?;
        let d = Diagnostic {
            severity: code.severity(),
            code,
            span: span.ok_or("missing `span`")?,
            message: message.ok_or("missing `message`")?,
            help,
        };
        if let Some(sev) = severity {
            if sev != d.severity.label() {
                return Err(format!("severity `{sev}` contradicts code {code}"));
            }
        }
        Ok(d)
    }
}

/// Append `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A cursor over one line of diagnostic JSON: just enough of the
/// grammar (objects of strings/numbers/null) for [`Diagnostic::from_json`].
struct JsonReader<'a> {
    rest: &'a str,
}

impl<'a> JsonReader<'a> {
    fn new(s: &'a str) -> Self {
        JsonReader { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        let mut chars = self.rest.chars();
        match chars.next() {
            Some(c) if c == want => {
                self.rest = chars.as_str();
                Ok(())
            }
            got => Err(format!("expected `{want}`, found {got:?}")),
        }
    }

    /// After a value: `,` means another key follows, `}` closes.
    fn more_entries(&mut self) -> Result<bool, String> {
        self.skip_ws();
        let mut chars = self.rest.chars();
        match chars.next() {
            Some(',') => {
                self.rest = chars.as_str();
                Ok(true)
            }
            Some('}') => {
                self.rest = chars.as_str();
                Ok(false)
            }
            got => Err(format!("expected `,` or `}}`, found {got:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next().map(|(_, e)| e) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut hex = String::new();
                        for _ in 0..4 {
                            hex.push(chars.next().map(|(_, h)| h).ok_or("truncated \\u escape")?);
                        }
                        let n = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(n).ok_or("\\u escape is not a scalar value")?);
                    }
                    e => return Err(format!("bad escape {e:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn string_or_null(&mut self) -> Result<Option<String>, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix("null") {
            self.rest = rest;
            return Ok(None);
        }
        self.string().map(Some)
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let end = self.rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(self.rest.len());
        let (digits, rest) = self.rest.split_at(end);
        self.rest = rest;
        digits.parse().map_err(|_| format!("expected a number, found `{digits}`"))
    }

    fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing input after diagnostic: `{}`", self.rest))
        }
    }
}

/// `true` if any diagnostic in the batch is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Drop duplicate diagnostics, keeping the first occurrence per
/// `(code, span)`. Multi-statement files can legitimately reproduce the
/// same finding once per statement (dummy-span warnings especially);
/// emitting it once is all a reader or a CI consumer needs.
pub fn dedup_diagnostics(diags: &mut Vec<Diagnostic>) {
    let mut seen: Vec<(Code, Span)> = Vec::with_capacity(diags.len());
    diags.retain(|d| {
        let key = (d.code, d.span);
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

/// 1-based (line, column) of a byte offset, counting columns in bytes.
fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = before.rfind('\n').map(|nl| offset - nl - 1).unwrap_or(offset) + 1;
    (line, col)
}

/// Render one diagnostic rustc-style against its source text.
///
/// ```text
/// error[E003]: aggregate `count` is not allowed in CLEANING WHEN
///   --> query:1:44
///    |
///  1 | SELECT tb FROM PKT ... CLEANING WHEN count(*) > 1
///    |                                      ^^^^^^^^
///    = help: aggregates are group-phase; CLEANING WHEN runs per tuple
/// ```
pub fn render_one(src: &str, source_name: &str, d: &Diagnostic) -> String {
    let (line, col) = line_col(src, d.span.start);
    let mut out = format!("{}[{}]: {}\n", d.severity.label(), d.code, d.message);
    out.push_str(&format!("  --> {source_name}:{line}:{col}\n"));
    // The source line the span starts on.
    let line_start = src[..d.span.start.min(src.len())].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = src[line_start..].find('\n').map(|i| line_start + i).unwrap_or(src.len());
    let text = &src[line_start..line_end];
    let gutter = format!("{line}");
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!(" {pad} |\n"));
    out.push_str(&format!(" {gutter} | {text}\n"));
    // Caret run: clamp the span to this line.
    let caret_start = d.span.start.saturating_sub(line_start);
    let span_end = d.span.end.max(d.span.start + 1).min(line_end.max(d.span.start + 1));
    let caret_len = span_end.saturating_sub(d.span.start).max(1);
    out.push_str(&format!(" {pad} | {}{}\n", " ".repeat(caret_start), "^".repeat(caret_len)));
    if let Some(help) = &d.help {
        out.push_str(&format!(" {pad} = help: {help}\n"));
    }
    out
}

/// Render a whole batch, errors and warnings in the order found, with a
/// summary line.
pub fn render(src: &str, source_name: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_one(src, source_name, d));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    match (errors, warnings) {
        (0, 0) => out.push_str("no problems found\n"),
        (e, 0) => out.push_str(&format!("{e} error{} found\n", plural(e))),
        (0, w) => out.push_str(&format!("{w} warning{} found\n", plural(w))),
        (e, w) => {
            out.push_str(&format!("{e} error{}, {w} warning{} found\n", plural(e), plural(w)))
        }
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_imply_severity() {
        assert_eq!(Code::E003.severity(), Severity::Error);
        assert_eq!(Code::W001.severity(), Severity::Warning);
        assert!(Diagnostic::new(Code::E002, Span::DUMMY, "x").is_error());
        assert!(!Diagnostic::new(Code::W004, Span::DUMMY, "x").is_error());
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "SELECT a\nFROM S\nGROUP BY a";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 7), (1, 8));
        assert_eq!(line_col(src, 9), (2, 1));
        assert_eq!(line_col(src, 14), (2, 6));
        assert_eq!(line_col(src, src.len()), (3, 11));
    }

    #[test]
    fn render_points_carets_at_span() {
        let src = "SELECT bogus FROM PKT GROUP BY time/60 as tb";
        let d = Diagnostic::new(Code::E002, Span::new(7, 12), "unknown name `bogus`")
            .with_help("no column or group-by variable with this name");
        let text = render_one(src, "query", &d);
        assert!(text.contains("error[E002]: unknown name `bogus`"), "{text}");
        assert!(text.contains("--> query:1:8"), "{text}");
        assert!(text.contains("^^^^^"), "{text}");
        assert!(text.contains("= help:"), "{text}");
        // Caret line aligns under `bogus`.
        let caret_line = text.lines().find(|l| l.contains('^')).unwrap();
        let src_line = text.lines().find(|l| l.contains("SELECT")).unwrap();
        assert_eq!(
            caret_line.find('^').unwrap() - (caret_line.find('|').unwrap() + 2),
            src_line.find("bogus").unwrap() - (src_line.find('|').unwrap() + 2)
        );
    }

    #[test]
    fn render_batch_summarizes() {
        let src = "SELECT a FROM S GROUP BY a";
        let diags = vec![
            Diagnostic::new(Code::E002, Span::new(7, 8), "unknown name `a`"),
            Diagnostic::new(Code::W005, Span::new(7, 8), "duplicate output column"),
        ];
        let text = render(src, "q", &diags);
        assert!(text.contains("1 error, 1 warning found"), "{text}");
        let text = render(src, "q", &[]);
        assert!(text.contains("no problems found"), "{text}");
    }

    #[test]
    fn json_round_trips() {
        let d = Diagnostic::new(
            Code::E003,
            Span::new(7, 12),
            "aggregate `count` is not allowed in CLEANING WHEN",
        )
        .with_help("aggregates are group-phase; CLEANING WHEN runs per tuple");
        let line = d.to_json();
        assert!(!line.contains('\n'), "one object per line: {line}");
        assert_eq!(Diagnostic::from_json(&line).unwrap(), d);

        // No help → null, and messages with quotes/newlines survive.
        let d = Diagnostic::new(Code::W004, Span::new(0, 3), "say \"hi\"\nthen \\ stop");
        let line = d.to_json();
        assert!(line.contains("\"help\":null"), "{line}");
        assert!(!line.contains('\n'), "escapes keep it on one line: {line}");
        assert_eq!(Diagnostic::from_json(&line).unwrap(), d);
    }

    #[test]
    fn json_rejects_malformed_input() {
        assert!(Diagnostic::from_json("").is_err());
        assert!(Diagnostic::from_json("{}").is_err(), "missing required keys");
        let good = Diagnostic::new(Code::E001, Span::new(1, 2), "m").to_json();
        assert!(Diagnostic::from_json(&good.replace("E001", "E999")).is_err(), "unknown code");
        assert!(Diagnostic::from_json(&good.replace("error", "warning")).is_err(), "severity lies");
        assert!(Diagnostic::from_json(&format!("{good}x")).is_err(), "trailing garbage");
        assert!(Diagnostic::from_json(&good[..good.len() - 2]).is_err(), "truncated");
    }

    #[test]
    fn code_as_str_round_trips() {
        for code in [
            Code::E100,
            Code::E101,
            Code::E001,
            Code::E002,
            Code::E003,
            Code::E004,
            Code::E005,
            Code::E006,
            Code::E007,
            Code::E008,
            Code::E009,
            Code::E010,
            Code::E011,
            Code::E012,
            Code::E013,
            Code::W001,
            Code::W002,
            Code::W003,
            Code::W004,
            Code::W005,
            Code::W103,
            Code::W101,
            Code::W102,
            Code::W201,
            Code::W202,
            Code::W203,
            Code::W204,
            Code::W205,
            Code::W206,
            Code::W301,
            Code::W302,
            Code::W303,
            Code::W304,
        ] {
            assert_eq!(code.as_str().parse::<Code>().unwrap(), code);
        }
        assert!("E0".parse::<Code>().is_err());
    }

    #[test]
    fn dedup_keeps_first_per_code_and_span() {
        let mut diags = vec![
            Diagnostic::new(Code::W201, Span::DUMMY, "first copy"),
            Diagnostic::new(Code::W201, Span::DUMMY, "second copy"),
            Diagnostic::new(Code::W201, Span::new(3, 9), "different span survives"),
            Diagnostic::new(Code::W103, Span::new(3, 9), "different code survives"),
            Diagnostic::new(Code::W103, Span::new(3, 9), "exact duplicate dies"),
        ];
        dedup_diagnostics(&mut diags);
        assert_eq!(diags.len(), 3);
        assert_eq!(diags[0].message, "first copy");
        assert_eq!(diags[1].message, "different span survives");
        assert_eq!(diags[2].message, "different code survives");

        // The deduped batch survives a JSON round trip unchanged.
        let reparsed: Vec<Diagnostic> =
            diags.iter().map(|d| Diagnostic::from_json(&d.to_json()).unwrap()).collect();
        assert_eq!(reparsed, diags);
    }

    #[test]
    fn multiline_source_renders_correct_line() {
        let src = "SELECT tb\nFROM PKT\nWHERE nope > 1\nGROUP BY time/60 as tb";
        let pos = src.find("nope").unwrap();
        let d = Diagnostic::new(Code::E002, Span::new(pos, pos + 4), "unknown name `nope`");
        let text = render_one(src, "query", &d);
        assert!(text.contains("--> query:3:7"), "{text}");
        assert!(text.contains("3 | WHERE nope > 1"), "{text}");
    }
}
