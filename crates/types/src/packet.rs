//! The concrete packet record used by the evaluation, and its schema.
//!
//! The paper's experiments run against `PKT`-style streams sniffed from a
//! network interface. Our synthetic feeds (see `sso-netgen`) produce
//! [`Packet`]s; the DSMS converts them to [`Tuple`]s against [`Packet::schema`].
//!
//! Field inventory (all timestamps are nanoseconds since an arbitrary
//! epoch; `time` is seconds, derived from `uts`):
//!
//! | name   | type | note |
//! |--------|------|------|
//! | `time` | u64, increasing | second-granularity timestamp |
//! | `uts`  | u64 | nanosecond-granularity timestamp, "timestamp-ness cast away"; the paper uses it "to make each tuple its own group" |
//! | `srcIP`| u64 | IPv4 as integer |
//! | `destIP`| u64 | IPv4 as integer |
//! | `srcPort`| u64 | |
//! | `destPort`| u64 | |
//! | `proto`| u64 | IP protocol number |
//! | `len`  | u64 | IP packet length in bytes |

use crate::schema::{Field, FieldType, Ordering, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// IP protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// ICMP (protocol number 1).
    Icmp,
    /// Anything else, by protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
            Protocol::Other(n) => n,
        }
    }

    /// Build from an IANA protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            1 => Protocol::Icmp,
            other => Protocol::Other(other),
        }
    }
}

/// A captured (synthetic) IP packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Nanosecond-granularity capture timestamp.
    pub uts: u64,
    /// Source IPv4 address as a 32-bit integer.
    pub src_ip: u32,
    /// Destination IPv4 address as a 32-bit integer.
    pub dest_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dest_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
    /// IP packet length in bytes.
    pub len: u32,
}

impl Packet {
    /// Second-granularity timestamp derived from [`Packet::uts`].
    pub fn time(&self) -> u64 {
        self.uts / 1_000_000_000
    }

    /// The canonical `PKT` schema matching [`Packet::to_tuple`].
    pub fn schema() -> Schema {
        Schema::new(
            "PKT",
            vec![
                Field::increasing("time", FieldType::U64),
                // `uts` is physically increasing, but the paper uses it
                // "with its timestamp-ness cast away" so that grouping by
                // uts makes each packet its own group WITHOUT closing the
                // query window on every packet. We therefore leave it
                // unordered in the schema; `time` alone drives windows.
                Field { name: "uts".to_string(), ty: FieldType::U64, ordering: Ordering::None },
                Field::new("srcIP", FieldType::U64),
                Field::new("destIP", FieldType::U64),
                Field::new("srcPort", FieldType::U64),
                Field::new("destPort", FieldType::U64),
                Field::new("proto", FieldType::U64),
                Field::new("len", FieldType::U64),
            ],
        )
    }

    /// Convert to a positional tuple matching [`Packet::schema`].
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(vec![
            Value::U64(self.time()),
            Value::U64(self.uts),
            Value::U64(self.src_ip as u64),
            Value::U64(self.dest_ip as u64),
            Value::U64(self.src_port as u64),
            Value::U64(self.dest_port as u64),
            Value::U64(self.proto.number() as u64),
            Value::U64(self.len as u64),
        ])
    }

    /// The flow 5-tuple key `(srcIP, destIP, srcPort, destPort, proto)`.
    pub fn flow_key(&self) -> (u32, u32, u16, u16, u8) {
        (self.src_ip, self.dest_ip, self.src_port, self.dest_port, self.proto.number())
    }
}

/// Format an IPv4 integer in dotted-quad notation.
pub fn format_ipv4(ip: u32) -> String {
    format!("{}.{}.{}.{}", (ip >> 24) & 0xff, (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff)
}

/// Parse a dotted-quad IPv4 string into its integer form.
pub fn parse_ipv4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut ip: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        ip = (ip << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(ip)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet {
            uts: 3_500_000_000,
            src_ip: parse_ipv4("10.0.0.1").unwrap(),
            dest_ip: parse_ipv4("192.168.1.200").unwrap(),
            src_port: 443,
            dest_port: 51000,
            proto: Protocol::Tcp,
            len: 1500,
        }
    }

    #[test]
    fn time_derives_from_uts() {
        assert_eq!(pkt().time(), 3);
        let mut p = pkt();
        p.uts = 999_999_999;
        assert_eq!(p.time(), 0);
    }

    #[test]
    fn tuple_matches_schema() {
        let p = pkt();
        let t = p.to_tuple();
        let s = Packet::schema();
        t.check_arity(&s).unwrap();
        assert_eq!(t.get_named(&s, "time").unwrap(), &Value::U64(3));
        assert_eq!(t.get_named(&s, "uts").unwrap(), &Value::U64(3_500_000_000));
        assert_eq!(t.get_named(&s, "len").unwrap(), &Value::U64(1500));
        assert_eq!(t.get_named(&s, "proto").unwrap(), &Value::U64(6));
        assert_eq!(t.get_named(&s, "srcIP").unwrap(), &Value::U64(0x0a000001));
    }

    #[test]
    fn schema_orders_time_but_not_uts() {
        // uts has its "timestamp-ness cast away" (see Packet::schema).
        let s = Packet::schema();
        assert!(s.is_ordered("time"));
        assert!(!s.is_ordered("uts"));
        assert!(!s.is_ordered("len"));
    }

    #[test]
    fn ipv4_round_trip() {
        for s in ["0.0.0.0", "255.255.255.255", "10.1.2.3", "192.168.0.1"] {
            assert_eq!(format_ipv4(parse_ipv4(s).unwrap()), s);
        }
        assert_eq!(parse_ipv4("256.0.0.1"), None);
        assert_eq!(parse_ipv4("1.2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.4.5"), None);
        assert_eq!(parse_ipv4("a.b.c.d"), None);
    }

    #[test]
    fn protocol_numbers_round_trip() {
        for p in [Protocol::Tcp, Protocol::Udp, Protocol::Icmp, Protocol::Other(89)] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn flow_key_fields() {
        let p = pkt();
        assert_eq!(p.flow_key(), (p.src_ip, p.dest_ip, 443, 51000, 6));
    }
}
