//! `sso-rewrite`: a certified plan-rewrite optimizer with multi-query
//! sharing analysis.
//!
//! The paper's §7.1 runs *simultaneous query sets* — many registered
//! queries over one packet tap — and §7.2 shows shared partial work
//! (the low-level prefilter) paying for itself many times over. This
//! crate is the static half of that story: given a multi-statement
//! query file, it
//!
//! 1. **normalizes** every plan into a canonical symbolic form
//!    ([`norm`]: constant folding, vacuous-term elimination,
//!    commutative-operand ordering over pure chains, literal-on-the-
//!    right comparisons),
//! 2. **proves** sharing opportunities with a syntactic/semantic
//!    equivalence prover ([`equiv`]: canonical identity for whole-plan
//!    deduplication, a comparison-widening implication closure for
//!    shared prefilters), and
//! 3. **emits a certificate** ([`cert`]): a checked trace of every
//!    applied rewrite — rule, statements, before/after node hashes,
//!    discharged side conditions — plus a shared-execution plan
//!    description ([`optimize`]).
//!
//! The certificate is consumed, not decorative:
//! [`OptimizeOutcome::build_shared`] verifies it before yielding
//! executable components, `sso_gigascope::shared::run_fanout_shared`
//! runs the shared plan and must produce `(window, rows)` output
//! byte-identical to unshared execution (golden + property tested), and
//! `sso-analysis` re-audits the rewritten plan so memory-bound
//! certificates survive rewriting.
//!
//! Like `sso-analysis`, this crate is a *static* pass: its clippy
//! configuration bans operator instantiation, plan execution, threads,
//! and clock reads.
//!
//! Lints (surfaced by `sso optimize`, wired into [`sso_query::Code`]):
//!
//! | code | meaning |
//! |------|---------|
//! | W301 | shareable work not shared (only in `--explain` mode) |
//! | W302 | subplans equivalent modulo constants — parameterize |
//! | W303 | rewrite blocked by a non-mergeable sampler (cause chain) |
//! | W304 | window periods differ by an integer multiple (§7.2) |

pub mod cert;
pub mod equiv;
pub mod norm;
pub mod optimize;
pub mod report;

pub use cert::{RewriteCertificate, RewriteStep};
pub use equiv::{implies, shared_prefilter};
pub use norm::{fnv1a, is_pure, is_total, normalize, normalize_statement, NormalizedStatement};
pub use optimize::{
    check_file_prefilters, optimize_file, ExecutableSharedPlan, OptimizeOptions, OptimizeOutcome,
    ReauditSummary, ShareCluster, ShareGroup, SharedGroupDesc, SharedPlanDesc,
};
pub use report::{outcome_to_json, render_summary};
