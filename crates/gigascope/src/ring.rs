//! A fixed-size single-producer ring buffer modeling the NIC ring that
//! feeds Gigascope's low-level queries.
//!
//! The real system sniffs packets into a ring and hands them to
//! low-level queries *without copying*; if the consumer falls behind,
//! the ring overwrites (drops) and the monitor loses packets. This
//! implementation preserves those semantics: bounded capacity, `push`
//! reports drops, `pop` yields in FIFO order.

/// A bounded FIFO ring buffer with drop accounting.
#[derive(Debug)]
pub struct RingBuffer<T> {
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
    dropped: u64,
    pushed: u64,
}

impl<T> RingBuffer<T> {
    /// Create a ring with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        RingBuffer { slots, head: 0, len: 0, dropped: 0, pushed: 0 }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if a push would drop.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Offer an element. Returns `true` if queued, `false` if the ring
    /// was full and the element was dropped (counted).
    pub fn push(&mut self, item: T) -> bool {
        self.pushed += 1;
        if self.is_full() {
            self.dropped += 1;
            return false;
        }
        let idx = (self.head + self.len) % self.slots.len();
        self.slots[idx] = Some(item);
        self.len += 1;
        true
    }

    /// Dequeue the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        item
    }

    /// Elements dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total elements offered.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::<u32>::new(0);
    }

    #[test]
    fn fifo_order() {
        let mut r = RingBuffer::new(4);
        for i in 0..4 {
            assert!(r.push(i));
        }
        for i in 0..4 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn drops_when_full() {
        let mut r = RingBuffer::new(2);
        assert!(r.push(1));
        assert!(r.push(2));
        assert!(!r.push(3));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.pushed(), 3);
        assert_eq!(r.pop(), Some(1));
        assert!(r.push(4));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(4));
    }

    #[test]
    fn wraps_around_many_times() {
        let mut r = RingBuffer::new(3);
        for round in 0..100u32 {
            assert!(r.push(round));
            assert_eq!(r.pop(), Some(round));
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn len_tracking() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 2);
        assert!(!r.is_full());
        r.push(3);
        assert!(r.is_full());
        r.pop();
        assert_eq!(r.len(), 2);
    }
}
