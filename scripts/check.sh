#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== sharded runtime determinism suite =="
cargo test -q --test sharded

echo "== sso --shards smoke run =="
cargo run -q --bin sso -- --feed research --seconds 2 --shards 4 \
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb" >/dev/null

echo "All checks passed."
