//! **Profiling overhead** — throughput cost of the causal stage tracer.
//!
//! Runs the `runtime_scaling` workload (the paper's dynamic subset-sum
//! query, 1000 samples per period, over the steady ~100k pkt/s
//! data-center feed) on the 4-way sharded runtime twice per repetition:
//! once unprofiled and once with an [`sso_profile::Profiler`] attached
//! (every batch stamped through ingest → route → ring wait → process →
//! flush → barrier wait → merge → emit). Repetitions alternate the two
//! modes so clock drift and cache warming hit both equally; best-of-reps
//! is reported.
//!
//! The acceptance gate (enforced by `scripts/check.sh` over
//! `BENCH_profile.json`) is ≤ 5% throughput overhead: the flight
//! recorder must be cheap enough to leave on in production, which is
//! the point of the fixed-capacity lanes (4 `Relaxed` stores + one
//! `Release` publish per batch, one branch per batch when disabled).
//!
//! The report also answers ROADMAP item 1's open question — *where does
//! the time go as shards scale?* — with a measured stage-attribution
//! table at 8 shards (`attribution_8shard`): per-stage share of traced
//! time, the dominant stage, and the router's share.

use std::time::Instant;

use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, shard_plan, OpError, OperatorSpec};
use sso_gigascope::{run_plan_sharded_with, SelectionNode};
use sso_netgen::datacenter_feed;
use sso_profile::{Profiler, ProfilerConfig};
use sso_runtime::RuntimeConfig;
use sso_types::Packet;

const SEED: u64 = 0x5ca1e;
const SECONDS: u64 = 20;
const WINDOW: u64 = 5;
const TARGET: usize = 1000;
const SHARDS: usize = 4;
const ATTRIB_SHARDS: usize = 8;
const REPS: usize = 7;

#[derive(serde::Serialize)]
struct Config {
    feed: &'static str,
    seed: u64,
    seconds: u64,
    packets: usize,
    window_secs: u64,
    target_samples: usize,
    shards: usize,
    reps: usize,
}

#[derive(serde::Serialize)]
struct Mode {
    profiled: bool,
    secs: f64,
    tuples_per_sec: f64,
    windows: usize,
}

#[derive(serde::Serialize)]
struct StageShare {
    stage: &'static str,
    events: u64,
    total_ns: u64,
    share_pct: f64,
}

/// Where the time goes at 8 shards: the measured answer to "is the
/// single router the next wall?" recorded alongside the gate numbers.
#[derive(serde::Serialize)]
struct Attribution {
    shards: usize,
    stages: Vec<StageShare>,
    dominant_stage: Option<&'static str>,
    router_share_pct: f64,
    window_p50_ns: u64,
    window_p99_ns: u64,
    window_count: u64,
    dropped_events: u64,
}

#[derive(serde::Serialize)]
struct Report {
    config: Config,
    unprofiled: Mode,
    profiled: Mode,
    /// Throughput lost to tracing, percent (negative = noise in the
    /// profiled run's favor).
    overhead_pct: f64,
    attribution_8shard: Attribution,
}

fn spec(shards: usize) -> impl Fn(usize) -> Result<OperatorSpec, OpError> {
    move |_shard| {
        let cfg = SubsetSumOpConfig {
            target: TARGET.div_ceil(shards),
            initial_z: 1.0,
            ..Default::default()
        };
        queries::subset_sum_query(WINDOW, cfg, false)
    }
}

fn run_once(packets: &[Packet], shards: usize, profiler: Option<&Profiler>) -> (f64, usize) {
    let full = SubsetSumOpConfig { target: TARGET, initial_z: 1.0, ..Default::default() };
    let plan = shard_plan(&queries::subset_sum_query(WINDOW, full, false).unwrap())
        .expect("subset-sum is shard-mergeable");
    let mut cfg = RuntimeConfig::new(shards);
    if let Some(p) = profiler {
        cfg = cfg.with_profile(p.clone());
    }
    let t0 = Instant::now();
    let report = run_plan_sharded_with(
        Box::new(SelectionNode::pass_all()),
        &plan,
        spec(shards),
        &cfg,
        packets.iter().cloned(),
    )
    .expect("sharded run");
    (t0.elapsed().as_secs_f64(), report.windows.len())
}

fn attribution(packets: &[Packet]) -> Attribution {
    let profiler = Profiler::new(ProfilerConfig::default());
    run_once(packets, ATTRIB_SHARDS, Some(&profiler));
    let rep = profiler.report();
    Attribution {
        shards: ATTRIB_SHARDS,
        stages: rep
            .stages
            .iter()
            .map(|s| StageShare {
                stage: s.stage.name(),
                events: s.events,
                total_ns: s.total_ns,
                share_pct: s.share_pct,
            })
            .collect(),
        dominant_stage: rep.dominant.map(|s| s.name()),
        router_share_pct: rep.router_share_pct,
        window_p50_ns: rep.windows.quantile(0.5),
        window_p99_ns: rep.windows.quantile(0.99),
        window_count: rep.window_count,
        dropped_events: rep.dropped_events,
    }
}

fn main() {
    let packets = datacenter_feed(SEED).take_seconds(SECONDS);
    let n = packets.len();
    if !sso_bench::json_mode() {
        eprintln!("# {n} packets, {REPS} alternating reps per mode");
    }

    let mut plain_best = (f64::INFINITY, 0usize);
    let mut prof_best = (f64::INFINITY, 0usize);
    for _ in 0..REPS {
        let plain = run_once(&packets, SHARDS, None);
        if plain.0 < plain_best.0 {
            plain_best = plain;
        }
        let profiler = Profiler::new(ProfilerConfig::default());
        let prof = run_once(&packets, SHARDS, Some(&profiler));
        if prof.0 < prof_best.0 {
            prof_best = prof;
        }
    }

    let plain_tps = n as f64 / plain_best.0;
    let prof_tps = n as f64 / prof_best.0;
    let report = Report {
        config: Config {
            feed: "datacenter",
            seed: SEED,
            seconds: SECONDS,
            packets: n,
            window_secs: WINDOW,
            target_samples: TARGET,
            shards: SHARDS,
            reps: REPS,
        },
        unprofiled: Mode {
            profiled: false,
            secs: plain_best.0,
            tuples_per_sec: plain_tps,
            windows: plain_best.1,
        },
        profiled: Mode {
            profiled: true,
            secs: prof_best.0,
            tuples_per_sec: prof_tps,
            windows: prof_best.1,
        },
        overhead_pct: 100.0 * (plain_tps - prof_tps) / plain_tps,
        attribution_8shard: attribution(&packets),
    };

    if maybe_json(&report) {
        return;
    }
    header("Profiling overhead: traced vs untraced sharded subset-sum");
    println!("{:>12} {:>8} {:>12} {:>8}", "mode", "secs", "tuples/s", "windows");
    for m in [&report.unprofiled, &report.profiled] {
        println!(
            "{:>12} {:>8.3} {:>12.0} {:>8}",
            if m.profiled { "profiled" } else { "unprofiled" },
            m.secs,
            m.tuples_per_sec,
            m.windows,
        );
    }
    println!("overhead: {:.2}%", report.overhead_pct);
    let a = &report.attribution_8shard;
    println!("\nstage attribution at {} shards:", a.shards);
    for s in &a.stages {
        println!("{:>14} {:>10} events {:>6.1}%", s.stage, s.events, s.share_pct);
    }
    println!(
        "dominant: {} | router share: {:.1}% | {} windows, {} dropped events",
        a.dominant_stage.unwrap_or("-"),
        a.router_share_pct,
        a.window_count,
        a.dropped_events,
    );
}
