//! Sharded two-level plans: one low-level node on the caller thread
//! feeding `N` high-level sampling-operator shards via `sso-runtime`'s
//! hash-partitioned rings, with window-aligned merge-finalize.

use std::time::Duration;

use sso_core::{shard_plan, NotMergeable, OpError, OperatorSpec, WindowOutput};
use sso_obs::{SampledSpan, Stopwatch};
use sso_runtime::{run_sharded, RouterStats, RuntimeConfig, RuntimeError, ShardStats};
use sso_types::Packet;

use crate::engine::NodeStats;
use crate::nodes::LowLevelQuery;

/// The result of a sharded plan run.
#[derive(Debug)]
pub struct ShardedRunReport {
    /// Low-level node accounting (runs on the router thread).
    pub low: NodeStats,
    /// Merged window outputs, in window order.
    pub windows: Vec<WindowOutput>,
    /// Per-shard worker accounting.
    pub shards: Vec<ShardStats>,
    /// Per-router-lane accounting.
    pub routers: Vec<RouterStats>,
    /// The span the live feed would have taken to deliver the packets.
    pub stream_span: Duration,
    /// Run-level coverage (1.0 = no faults degraded the output).
    pub coverage: f64,
    /// Shards cut off by the window deadline.
    pub stragglers: Vec<usize>,
}

impl ShardedRunReport {
    /// Tuples the shard workers processed, total.
    pub fn tuples_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.tuples()).sum()
    }

    /// Tuples dropped at full shard rings.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Tuples shed below the backpressure threshold at full rings.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed()).sum()
    }

    /// Worker panics caught and quarantined.
    pub fn quarantines(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantines()).sum()
    }

    /// Router-lane panics caught and quarantined.
    pub fn router_quarantines(&self) -> u64 {
        self.routers.iter().map(|r| r.quarantines()).sum()
    }

    /// Tuples lost to quarantined router lanes (never routed).
    pub fn router_uncovered(&self) -> u64 {
        self.routers.iter().map(|r| r.uncovered()).sum()
    }

    /// Whether any fault degraded the output.
    pub fn degraded(&self) -> bool {
        self.coverage < 1.0
    }
}

/// Why a sharded plan run failed.
#[derive(Debug)]
pub enum ShardedRunError {
    /// The query is not shard-mergeable (see [`sso_core::shard_plan`]).
    NotMergeable(NotMergeable),
    /// The runtime failed (worker error/panic, bad config).
    Runtime(RuntimeError),
}

impl std::fmt::Display for ShardedRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedRunError::NotMergeable(e) => write!(f, "{e}"),
            ShardedRunError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardedRunError {}

impl From<NotMergeable> for ShardedRunError {
    fn from(e: NotMergeable) -> Self {
        ShardedRunError::NotMergeable(e)
    }
}

impl From<RuntimeError> for ShardedRunError {
    fn from(e: RuntimeError) -> Self {
        ShardedRunError::Runtime(e)
    }
}

/// Run a two-level plan with the high level sharded `cfg.shards` ways.
///
/// The low-level node runs inline on the calling thread (it reduces the
/// packet stream before the fan-out, like the paper's low-level query
/// below a stream operator); surviving tuples are hash-partitioned on
/// the query's partition key and processed by one operator instance per
/// shard; window outputs merge per the query's merge rule.
///
/// `make_spec` builds a fresh spec per shard so stateful-function
/// libraries (and their seeded RNG streams) are never shared across
/// threads — pass the same builder you would use for the single-instance
/// plan.
pub fn run_plan_sharded<F>(
    low: Box<dyn LowLevelQuery>,
    make_spec: F,
    cfg: &RuntimeConfig,
    packets: impl IntoIterator<Item = Packet>,
) -> Result<ShardedRunReport, ShardedRunError>
where
    F: Fn(usize) -> Result<OperatorSpec, OpError> + Sync,
{
    let probe = make_spec(0).map_err(|source| RuntimeError::Op { shard: 0, source })?;
    let plan = shard_plan(&probe)?;
    run_plan_sharded_with(low, &plan, make_spec, cfg, packets)
}

/// [`run_plan_sharded`] with an explicit, pre-classified [`ShardPlan`]
/// instead of one probed from `make_spec(0)`.
///
/// This is the entry point for **sampling-budget splitting**: a caller
/// can classify the full-budget query (so the merge rule keeps the
/// caller's total target) while `make_spec` hands each shard a spec
/// whose sample target is `total / shards`. The union of per-partition
/// threshold samples, re-thresholded at the maximum shard threshold,
/// is an unbiased sample of the whole stream — same estimator quality
/// as a single instance — while each shard's sampling state (and its
/// cleaning work) stays proportionally smaller.
pub fn run_plan_sharded_with<F>(
    mut low: Box<dyn LowLevelQuery>,
    plan: &sso_core::ShardPlan,
    make_spec: F,
    cfg: &RuntimeConfig,
    packets: impl IntoIterator<Item = Packet>,
) -> Result<ShardedRunReport, ShardedRunError>
where
    F: Fn(usize) -> Result<OperatorSpec, OpError> + Sync,
{
    let mut low_stats = NodeStats { name: low.name().to_string(), ..Default::default() };
    let mut first_uts = None;
    let mut last_uts = 0u64;

    // The router thread times the low-level node through a sampled span
    // (1 in 64, scaled back up): a per-packet clock pair costs as much
    // as a cheap low-level node and would throttle the router thread,
    // which bounds the whole sharded pipeline. When the caller supplies
    // no registry, an ephemeral enabled one keeps the NodeStats busy
    // accounting live without publishing anything.
    let registry = cfg.registry.clone().unwrap_or_default();
    let low_span = SampledSpan::register(&registry, "low.process_ns", "low.busy_ns", "", 6);
    let prof_start = cfg.profile.as_ref().map(|p| p.now_ns());

    // Drive the low-level node lazily from inside the router loop: the
    // adapter runs on the calling thread, so the node needs no Sync and
    // its accounting can borrow locally.
    let mut packets = packets.into_iter();
    let mut tail: Vec<sso_types::Tuple> = Vec::new();
    let mut tail_at = 0usize;
    let tuples = std::iter::from_fn(|| loop {
        if tail_at < tail.len() {
            let t = tail[tail_at].clone();
            tail_at += 1;
            low_stats.tuples_out += 1;
            return Some(t);
        }
        match packets.next() {
            Some(pkt) => {
                first_uts.get_or_insert(pkt.uts);
                last_uts = pkt.uts;
                low_stats.tuples_in += 1;
                let forwarded = {
                    let _span = low_span.start();
                    low.process(&pkt)
                };
                if let Some(tuple) = forwarded {
                    low_stats.tuples_out += 1;
                    return Some(tuple);
                }
            }
            None => {
                if tail.is_empty() {
                    let sw = Stopwatch::start();
                    tail = low.finish();
                    // The finish pass is unsampled; add it to the same
                    // busy cell the span scales its samples into.
                    low_span.busy_counter().add(sw.elapsed_ns());
                    if tail.is_empty() {
                        return None;
                    }
                } else {
                    return None;
                }
            }
        }
    });

    let report = run_sharded(plan, make_spec, cfg, tuples)?;
    low_stats.busy = Duration::from_nanos(low_span.busy_counter().get());
    if let (Some(p), Some(start)) = (cfg.profile.as_ref(), prof_start) {
        // The low node runs inline on the router thread, interleaved
        // with sends; its lineage stamp is one span for the whole run
        // (busy time, not wall time) so stage attribution can separate
        // low-level reduction cost from router fan-out cost.
        let mut lane = p.lane(sso_profile::LaneKind::Low, 0);
        lane.record(
            sso_profile::Event::new(sso_profile::Stage::Low, start, low_span.busy_counter().get())
                .aux(low_stats.tuples_in),
        );
        lane.publish();
    }
    if cfg.registry.is_some() {
        registry.counter("low.tuples_in").add(low_stats.tuples_in);
        registry.counter("low.tuples_out").add(low_stats.tuples_out);
    }
    let stream_span = Duration::from_nanos(last_uts.saturating_sub(first_uts.unwrap_or(0)));
    Ok(ShardedRunReport {
        low: low_stats,
        windows: report.windows,
        shards: report.shards,
        routers: report.routers,
        stream_span,
        coverage: report.coverage,
        stragglers: report.stragglers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_plan, TwoLevelPlan};
    use crate::nodes::SelectionNode;
    use sso_core::{queries, SamplingOperator};
    use sso_netgen::research_feed;

    #[test]
    fn sharded_total_sum_matches_single_instance_exactly() {
        let pkts = research_feed(21).take_seconds(3);
        let single = run_plan(
            TwoLevelPlan::new(
                Box::new(SelectionNode::pass_all()),
                SamplingOperator::new(queries::total_sum_query(1)).unwrap(),
            ),
            pkts.clone(),
        )
        .unwrap();
        for shards in [1, 2, 8] {
            let sharded = run_plan_sharded(
                Box::new(SelectionNode::pass_all()),
                |_| Ok(queries::total_sum_query(1)),
                &RuntimeConfig::new(shards),
                pkts.clone(),
            )
            .unwrap();
            assert_eq!(single.windows.len(), sharded.windows.len());
            for (a, b) in single.windows.iter().zip(&sharded.windows) {
                assert_eq!(a.window, b.window);
                assert_eq!(a.rows, b.rows, "{shards} shards drifted");
            }
            assert_eq!(sharded.low.tuples_in, pkts.len() as u64);
            assert_eq!(sharded.tuples_processed(), pkts.len() as u64);
        }
    }

    #[test]
    fn non_mergeable_queries_are_refused() {
        use sso_core::libs::distinct::DistinctOpConfig;
        let pkts = research_feed(22).take_seconds(1);
        let err = run_plan_sharded(
            Box::new(SelectionNode::pass_all()),
            |_| {
                let cfg = DistinctOpConfig { capacity: 64, carry_level: true };
                queries::distinct_sample_query(1, cfg)
            },
            &RuntimeConfig::new(2),
            pkts,
        )
        .unwrap_err();
        assert!(matches!(err, ShardedRunError::NotMergeable(_)), "got: {err}");
    }
}
