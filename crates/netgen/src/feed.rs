//! Trace generation: turning a rate process and a flow model into an
//! ordered packet stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sso_types::Packet;

use crate::flow::{spawn_flow, AddressSpace, Flow};
use crate::rate::{BurstRate, DatacenterRate, DdosRate, RateProcess, ResearchRate};

/// Configuration of a [`TraceGenerator`].
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// RNG seed — the same seed always produces the same trace.
    pub seed: u64,
    /// Probability that a packet slot starts a new flow rather than
    /// continuing an active one.
    pub new_flow_prob: f64,
    /// Upper bound on concurrently active flows (memory guard).
    pub max_active_flows: usize,
    /// Address space packets are drawn from.
    pub space: AddressSpace,
    /// When `Some((start, end))`, packets in that second range are drawn
    /// from tiny spoofed attack flows (the DDoS scenario).
    pub attack_seconds: Option<(u64, u64)>,
}

impl FeedConfig {
    /// Defaults shared by all feeds.
    pub fn new(seed: u64) -> Self {
        FeedConfig {
            seed,
            new_flow_prob: 0.08,
            max_active_flows: 50_000,
            space: AddressSpace::new(),
            attack_seconds: None,
        }
    }
}

/// A deterministic packet-trace generator: an iterator over [`Packet`]s
/// with strictly increasing nanosecond timestamps.
pub struct TraceGenerator {
    rng: StdRng,
    cfg: FeedConfig,
    rate: Box<dyn RateProcess + Send>,
    active: Vec<Flow>,
    second: u64,
    /// Packets remaining in the current second and the inter-packet gap.
    budget: u64,
    gap_ns: u64,
    next_uts: u64,
    last_uts: u64,
}

impl TraceGenerator {
    /// Build a generator from a config and a rate process.
    pub fn new(cfg: FeedConfig, rate: Box<dyn RateProcess + Send>) -> Self {
        TraceGenerator {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            rate,
            active: Vec::new(),
            second: 0,
            budget: 0,
            gap_ns: 1,
            next_uts: 0,
            last_uts: 0,
        }
    }

    /// The current trace second (useful for scenario assertions).
    pub fn second(&self) -> u64 {
        self.second
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Generate all packets for the first `seconds` seconds of the trace.
    pub fn take_seconds(&mut self, seconds: u64) -> Vec<Packet> {
        let end_uts = seconds * 1_000_000_000;
        let mut out = Vec::new();
        for p in self {
            if p.uts >= end_uts {
                break;
            }
            out.push(p);
        }
        out
    }

    fn in_attack(&self) -> bool {
        match self.cfg.attack_seconds {
            Some((start, end)) => self.second >= start && self.second < end,
            None => false,
        }
    }

    fn begin_second(&mut self) {
        let rate = self.rate.next_rate(&mut self.rng).max(1);
        self.budget = rate;
        self.gap_ns = (1_000_000_000 / rate).max(1);
        self.next_uts = self.second * 1_000_000_000;
    }

    fn next_packet(&mut self) -> Packet {
        let attack = self.in_attack();
        let spawn_prob = if attack { 0.9 } else { self.cfg.new_flow_prob };
        let need_new = self.active.is_empty()
            || (self.active.len() < self.cfg.max_active_flows
                && self.rng.gen::<f64>() < spawn_prob);
        if need_new {
            let f = spawn_flow(&mut self.rng, &self.cfg.space, attack);
            self.active.push(f);
        }
        let idx = self.rng.gen_range(0..self.active.len());
        // Strictly increasing uts: the paper relies on uts uniqueness to
        // make every packet its own group.
        let uts = self.next_uts.max(self.last_uts + 1);
        self.last_uts = uts;
        let pkt = self.active[idx].emit(uts, &mut self.rng);
        if self.active[idx].done() {
            self.active.swap_remove(idx);
        }
        self.next_uts += self.gap_ns;
        pkt
    }
}

impl Iterator for TraceGenerator {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.budget == 0 {
            // Advance to the next second. A fresh generator starts at
            // second 0 without advancing.
            if self.last_uts != 0 || self.second != 0 || self.next_uts != 0 {
                self.second += 1;
            }
            self.begin_second();
        }
        self.budget -= 1;
        Some(self.next_packet())
    }
}

/// The bursty research-center feed (Figures 2–4): 5k–15k pkt/s typical,
/// log-AR(1) swings, occasional deep lulls.
pub fn research_feed(seed: u64) -> TraceGenerator {
    TraceGenerator::new(FeedConfig::new(seed), Box::new(ResearchRate::new()))
}

/// The steady data-center feed (Figures 5–6): ~100k pkt/s ± 2%, highly
/// aggregated (many concurrent flows).
pub fn datacenter_feed(seed: u64) -> TraceGenerator {
    let mut cfg = FeedConfig::new(seed);
    cfg.new_flow_prob = 0.15; // more aggregation: more concurrent flows
    TraceGenerator::new(cfg, Box::new(DatacenterRate::new()))
}

/// The burst stress profile: a square wave alternating 20k pkt/s busy
/// and 400 pkt/s quiet every 10 seconds. Aligning the operator's window
/// with the half-period reproduces the §7.1 under-sampling pathology
/// deterministically (busy-window thresholds carried into quiet
/// windows), which is what the telemetry under-sampling detector
/// watches for.
pub fn burst_feed(seed: u64) -> TraceGenerator {
    TraceGenerator::new(FeedConfig::new(seed), Box::new(BurstRate::new()))
}

/// The DDoS stress scenario from the paper's conclusion: a baseline feed
/// with a storm of tiny single-packet spoofed flows during
/// `[attack_start, attack_end)` seconds.
pub fn ddos_feed(seed: u64, attack_start: u64, attack_end: u64) -> TraceGenerator {
    let mut cfg = FeedConfig::new(seed);
    cfg.attack_seconds = Some((attack_start, attack_end));
    TraceGenerator::new(cfg, Box::new(DdosRate::new(5_000.0, 60_000.0, attack_start, attack_end)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn timestamps_strictly_increase() {
        let mut gen = research_feed(1);
        let pkts = gen.take_seconds(5);
        assert!(!pkts.is_empty());
        for pair in pkts.windows(2) {
            assert!(pair[1].uts > pair[0].uts, "uts must strictly increase");
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = research_feed(7).take_seconds(3);
        let b = research_feed(7).take_seconds(3);
        assert_eq!(a, b);
        let c = research_feed(8).take_seconds(3);
        assert_ne!(a, c);
    }

    #[test]
    fn research_feed_rate_is_in_paper_band() {
        // "5,000 to 15,000 packets per second ... highly variable":
        // the long-run mean should land in or near that band. Lulls
        // last tens of seconds, so a short sample can sit entirely
        // inside one — average over several lull lifetimes.
        let pkts = research_feed(2).take_seconds(300);
        let rate = pkts.len() as f64 / 300.0;
        assert!((2_000.0..20_000.0).contains(&rate), "mean rate {rate}");
    }

    #[test]
    fn research_feed_volume_swings_between_windows() {
        let pkts = research_feed(3).take_seconds(400);
        // 20-second windows, byte volume per window.
        let mut volumes = vec![0u64; 20];
        for p in &pkts {
            volumes[(p.time() / 20) as usize] += p.len as u64;
        }
        let max = *volumes.iter().max().unwrap() as f64;
        let min = *volumes.iter().min().unwrap().max(&1) as f64;
        assert!(max / min > 5.0, "volume swing too small: {volumes:?}");
    }

    #[test]
    fn datacenter_feed_is_fast_and_stable() {
        let pkts = datacenter_feed(4).take_seconds(5);
        let mut per_second = [0u64; 5];
        for p in &pkts {
            per_second[p.time() as usize] += 1;
        }
        for (s, &n) in per_second.iter().enumerate() {
            assert!((95_000..=105_000).contains(&n), "second {s}: {n} packets, expected ~100k");
        }
    }

    #[test]
    fn datacenter_bitrate_is_roughly_400_mbit() {
        let pkts = datacenter_feed(5).take_seconds(3);
        let bytes: u64 = pkts.iter().map(|p| p.len as u64).sum();
        let mbits = bytes as f64 * 8.0 / 3.0 / 1e6;
        // The paper reports ~400 Mbit/s at 100k pkt/s (i.e. ~500B mean).
        assert!((300.0..900.0).contains(&mbits), "bitrate {mbits} Mbit/s");
    }

    #[test]
    fn ddos_feed_explodes_flow_count_during_attack() {
        let mut gen = ddos_feed(6, 2, 4);
        let pkts = gen.take_seconds(6);
        let flows = |lo: u64, hi: u64| -> usize {
            let set: HashSet<_> = pkts
                .iter()
                .filter(|p| p.time() >= lo && p.time() < hi)
                .map(|p| p.flow_key())
                .collect();
            set.len()
        };
        let before = flows(0, 2);
        let during = flows(2, 4);
        assert!(during > 10 * before, "attack flows ({during}) should dwarf baseline ({before})");
    }

    #[test]
    fn ddos_attack_packets_are_tiny_and_focused() {
        let mut gen = ddos_feed(7, 0, 2);
        let pkts = gen.take_seconds(1);
        let tiny_to_victim = pkts.iter().filter(|p| p.len == 40 && p.dest_ip == 0xc0a8_0001).count()
            as f64
            / pkts.len() as f64;
        assert!(tiny_to_victim > 0.5, "attack fraction {tiny_to_victim}");
    }

    #[test]
    fn take_seconds_respects_boundary() {
        let mut gen = datacenter_feed(8);
        let pkts = gen.take_seconds(2);
        assert!(pkts.iter().all(|p| p.time() < 2));
    }

    #[test]
    fn flow_pool_stays_bounded() {
        let mut gen = ddos_feed(9, 0, 30);
        let _ = gen.take_seconds(10);
        assert!(gen.active_flows() <= gen.cfg.max_active_flows);
    }
}
