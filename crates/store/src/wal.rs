//! Checkpoint and WAL files, one set per shard.
//!
//! ## Frame format
//!
//! Every durable record travels in the same frame:
//!
//! ```text
//! u64  checksum     FNV-1a over the payload
//! u32  length       payload bytes
//! [..] payload
//! ```
//!
//! A reader stops at the first frame whose checksum or length does not
//! hold — a torn tail is data loss bounded to that record, never a
//! panic.
//!
//! ## WAL record payload (one per closed window)
//!
//! ```text
//! u64   seq         window ordinal (0-based) — the chain check
//! bytes output      encoded WindowOutput
//! bytes carry       operator export_carry bytes
//! bytes aux         operator export_aux bytes
//! ```
//!
//! ## Checkpoint file (`shard-K.ckpt`)
//!
//! ```text
//! magic "SSOSTOR1", u32 version
//! frame meta:     u64 seq, u8 has_watermark, [tuple], bytes carry, bytes aux
//! frame output×seq
//! ```
//!
//! A checkpoint is a compaction: it carries every output so far plus
//! the latest carry/aux, and the WAL restarts empty. Replay accepts a
//! WAL record only when its `seq` equals the state's next expected
//! ordinal, so records that belong after a *newer* (corrupted and
//! discarded) checkpoint cannot be grafted onto an older one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use sso_core::snapshot::{put_window_output, take_window_output};
use sso_core::WindowOutput;
use sso_types::wire::{checksum, put_bytes, put_tuple, put_u32, put_u64, take_tuple, Reader};
use sso_types::Tuple;

const MAGIC: &[u8; 8] = b"SSOSTOR1";
const VERSION: u32 = 1;

/// When WAL appends reach the platter (matters for power loss, not for
/// process crashes — the OS keeps written pages either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: at most one window lost even to
    /// power failure, at streaming cost.
    Always,
    /// `fsync` every `n` records: bounded loss window, amortized cost.
    EveryN(u32),
    /// Never `fsync` the WAL (checkpoints still sync): survives process
    /// crashes, not power loss. The default.
    Never,
}

impl FsyncPolicy {
    /// Parse `always`, `never`, or `every=N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("every=").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!("bad fsync policy '{s}' (always | never | every=N)")),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Where and how a durable run persists its state.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the per-shard files and the run MANIFEST.
    pub dir: PathBuf,
    /// Windows between checkpoints; `0` = checkpoint only at end of
    /// stream (the WAL carries everything in between).
    pub checkpoint_every: u64,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
}

impl StoreConfig {
    /// A config with the default cadence (checkpoint every 8 windows,
    /// no WAL fsync).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig { dir: dir.into(), checkpoint_every: 8, fsync: FsyncPolicy::Never }
    }
}

/// One closed window's durable payload.
#[derive(Debug)]
pub struct WindowRecord<'a> {
    /// The window's emitted output.
    pub output: &'a WindowOutput,
    /// Operator carry-over bytes (`SamplingOperator::export_carry`).
    pub carry: &'a [u8],
    /// Library-auxiliary bytes (`SamplingOperator::export_aux`).
    pub aux: &'a [u8],
}

/// A shard's recovered durable state.
#[derive(Debug, Default)]
pub struct RecoveredShard {
    /// Every durably recorded window output, in window order.
    pub outputs: Vec<WindowOutput>,
    /// Carry-over bytes as of the last recorded window.
    pub carry: Vec<u8>,
    /// Library-auxiliary bytes as of the last recorded window.
    pub aux: Vec<u8>,
    /// Window key of the last recorded window — the resume watermark.
    pub watermark: Option<Tuple>,
}

/// Append one frame (checksum + length + payload).
fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<usize> {
    let mut head = Vec::with_capacity(12);
    put_u64(&mut head, checksum(payload));
    put_u32(&mut head, payload.len() as u32);
    w.write_all(&head)?;
    w.write_all(payload)?;
    Ok(head.len() + payload.len())
}

/// Read the frame starting at `*pos`; `None` on a torn or corrupt
/// frame. Advances `*pos` past the frame on success.
fn read_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let rest = buf.get(*pos..)?;
    if rest.len() < 12 {
        return None;
    }
    let sum = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")) as usize;
    let payload = rest.get(12..12 + len)?;
    if checksum(payload) != sum {
        return None;
    }
    *pos += 12 + len;
    Some(payload)
}

/// In-memory image of a shard's durable state (what the next checkpoint
/// will contain).
#[derive(Default)]
struct ShardState {
    /// Encoded outputs, one per recorded window.
    outputs: Vec<Vec<u8>>,
    carry: Vec<u8>,
    aux: Vec<u8>,
    watermark: Option<Tuple>,
}

impl ShardState {
    fn seq(&self) -> u64 {
        self.outputs.len() as u64
    }

    fn apply(&mut self, output_bytes: Vec<u8>, watermark: Tuple, carry: Vec<u8>, aux: Vec<u8>) {
        self.outputs.push(output_bytes);
        self.carry = carry;
        self.aux = aux;
        self.watermark = Some(watermark);
    }
}

/// Per-shard durable writer: WAL appends per window, periodic
/// checkpoint compaction.
pub struct ShardStore {
    dir: PathBuf,
    shard: usize,
    checkpoint_every: u64,
    fsync: FsyncPolicy,
    wal: File,
    unsynced: u32,
    since_ckpt: u64,
    state: ShardState,
    wal_appends: u64,
    wal_bytes: u64,
    ckpt_writes: u64,
    ckpt_bytes: u64,
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt"))
}

fn ckpt_prev_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt.prev"))
}

/// The shard's spill-file path (used by the paged group table so all of
/// a shard's durable artifacts live together).
pub(crate) fn spill_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.spill"))
}

impl ShardStore {
    /// Start a fresh durable run for one shard, removing any previous
    /// run's files for it.
    pub fn create(cfg: &StoreConfig, shard: usize) -> io::Result<Self> {
        fs::create_dir_all(&cfg.dir)?;
        for p in [
            wal_path(&cfg.dir, shard),
            ckpt_path(&cfg.dir, shard),
            ckpt_prev_path(&cfg.dir, shard),
            spill_path(&cfg.dir, shard),
        ] {
            match fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let wal = OpenOptions::new().create(true).append(true).open(wal_path(&cfg.dir, shard))?;
        Ok(ShardStore {
            dir: cfg.dir.clone(),
            shard,
            checkpoint_every: cfg.checkpoint_every,
            fsync: cfg.fsync,
            wal,
            unsynced: 0,
            since_ckpt: 0,
            state: ShardState::default(),
            wal_appends: 0,
            wal_bytes: 0,
            ckpt_writes: 0,
            ckpt_bytes: 0,
        })
    }

    /// Resume a durable run: recover the shard's state, then restart
    /// the files from a fresh compacting checkpoint (which also
    /// truncates any torn WAL tail).
    pub fn open_resumed(cfg: &StoreConfig, shard: usize) -> io::Result<(Self, RecoveredShard)> {
        let recovered = recover_shard(&cfg.dir, shard)?;
        let mut state = ShardState::default();
        for out in &recovered.outputs {
            let mut b = Vec::new();
            put_window_output(&mut b, out);
            state.outputs.push(b);
        }
        state.carry = recovered.carry.clone();
        state.aux = recovered.aux.clone();
        state.watermark = recovered.watermark.clone();
        // Recreate the WAL empty; the immediate checkpoint below makes
        // the recovered state durable again before any new window.
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(&cfg.dir, shard))?;
        let mut store = ShardStore {
            dir: cfg.dir.clone(),
            shard,
            checkpoint_every: cfg.checkpoint_every,
            fsync: cfg.fsync,
            wal,
            unsynced: 0,
            since_ckpt: 0,
            state,
            wal_appends: 0,
            wal_bytes: 0,
            ckpt_writes: 0,
            ckpt_bytes: 0,
        };
        store.checkpoint()?;
        Ok((store, recovered))
    }

    /// Durably record one closed window, checkpointing when the cadence
    /// says so.
    pub fn record_window(&mut self, rec: &WindowRecord<'_>) -> io::Result<()> {
        let mut ob = Vec::new();
        put_window_output(&mut ob, rec.output);
        let mut payload = Vec::with_capacity(ob.len() + rec.carry.len() + rec.aux.len() + 24);
        put_u64(&mut payload, self.state.seq());
        put_bytes(&mut payload, &ob);
        put_bytes(&mut payload, rec.carry);
        put_bytes(&mut payload, rec.aux);
        let n = write_frame(&mut self.wal, &payload)?;
        self.wal_appends += 1;
        self.wal_bytes += n as u64;
        match self.fsync {
            FsyncPolicy::Always => self.wal.sync_data()?,
            FsyncPolicy::EveryN(k) => {
                self.unsynced += 1;
                if self.unsynced >= k {
                    self.wal.sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.state.apply(ob, rec.output.window.clone(), rec.carry.to_vec(), rec.aux.to_vec());
        self.since_ckpt += 1;
        if self.checkpoint_every > 0 && self.since_ckpt >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Write a full checkpoint (tmp + rename, previous kept as
    /// `.ckpt.prev`) and restart the WAL.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let ckpt = ckpt_path(&self.dir, self.shard);
        let prev = ckpt_prev_path(&self.dir, self.shard);
        let tmp = self.dir.join(format!("shard-{}.ckpt.tmp", self.shard));
        let mut f = File::create(&tmp)?;
        let mut written = 0usize;
        f.write_all(MAGIC)?;
        let mut ver = Vec::with_capacity(4);
        put_u32(&mut ver, VERSION);
        f.write_all(&ver)?;
        written += MAGIC.len() + ver.len();
        let mut meta = Vec::new();
        put_u64(&mut meta, self.state.seq());
        match &self.state.watermark {
            Some(w) => {
                meta.push(1);
                put_tuple(&mut meta, w);
            }
            None => meta.push(0),
        }
        put_bytes(&mut meta, &self.state.carry);
        put_bytes(&mut meta, &self.state.aux);
        written += write_frame(&mut f, &meta)?;
        for ob in &self.state.outputs {
            written += write_frame(&mut f, ob)?;
        }
        // Checkpoints always sync: they are the fallback the WAL chains
        // onto, and they are rare.
        f.sync_all()?;
        drop(f);
        match fs::rename(&ckpt, &prev) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        fs::rename(&tmp, &ckpt)?;
        self.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(&self.dir, self.shard))?;
        self.unsynced = 0;
        self.since_ckpt = 0;
        self.ckpt_writes += 1;
        self.ckpt_bytes += written as u64;
        Ok(())
    }

    /// Seal the run at end of stream with a final checkpoint.
    pub fn finalize(&mut self) -> io::Result<()> {
        self.checkpoint()
    }

    /// WAL records appended by this writer.
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends
    }

    /// WAL bytes appended by this writer.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Checkpoints written by this writer.
    pub fn ckpt_writes(&self) -> u64 {
        self.ckpt_writes
    }

    /// Checkpoint bytes written by this writer.
    pub fn ckpt_bytes(&self) -> u64 {
        self.ckpt_bytes
    }

    /// Windows recorded since the last checkpoint (the checkpoint age,
    /// in windows).
    pub fn windows_since_ckpt(&self) -> u64 {
        self.since_ckpt
    }

    /// Windows durably recorded in total.
    pub fn windows_recorded(&self) -> u64 {
        self.state.seq()
    }
}

/// Parse a checkpoint file into a [`RecoveredShard`]-shaped state;
/// `None` when missing, truncated, or checksum-corrupt anywhere.
fn load_ckpt(path: &Path) -> Option<(RecoveredShard, u64)> {
    let buf = fs::read(path).ok()?;
    if buf.len() < 12 || &buf[..8] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) != VERSION {
        return None;
    }
    let mut pos = 12usize;
    let meta = read_frame(&buf, &mut pos)?;
    let mut r = Reader::new(meta);
    let seq = r.take_u64().ok()?;
    let watermark = match r.take_u8().ok()? {
        0 => None,
        _ => Some(take_tuple(&mut r).ok()?),
    };
    let carry = r.take_bytes().ok()?.to_vec();
    let aux = r.take_bytes().ok()?.to_vec();
    if !r.is_empty() {
        return None;
    }
    let mut outputs = Vec::with_capacity(seq.min(1 << 20) as usize);
    for _ in 0..seq {
        let ob = read_frame(&buf, &mut pos)?;
        let mut or = Reader::new(ob);
        let out = take_window_output(&mut or).ok()?;
        if !or.is_empty() {
            return None;
        }
        outputs.push(out);
    }
    Some((RecoveredShard { outputs, carry, aux, watermark }, seq))
}

/// Recover one shard's durable state: newest valid checkpoint (falling
/// back to `.ckpt.prev`, then to empty), plus every WAL record that
/// chains onto it. Never panics on corrupt input — a bad record simply
/// ends the replay.
pub fn recover_shard(dir: &Path, shard: usize) -> io::Result<RecoveredShard> {
    let (mut state, mut seq) = load_ckpt(&ckpt_path(dir, shard))
        .or_else(|| load_ckpt(&ckpt_prev_path(dir, shard)))
        .unwrap_or((RecoveredShard::default(), 0));
    let wal = match fs::read(wal_path(dir, shard)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut pos = 0usize;
    while let Some(payload) = read_frame(&wal, &mut pos) {
        let mut r = Reader::new(payload);
        let Ok(rec_seq) = r.take_u64() else { break };
        if rec_seq != seq {
            // The record belongs after a checkpoint we did not load
            // (e.g. the newest one was corrupt): stop, the state is
            // consistent as of `seq` windows.
            break;
        }
        let Ok(ob) = r.take_bytes() else { break };
        let Ok(carry) = r.take_bytes() else { break };
        let Ok(aux) = r.take_bytes() else { break };
        let mut or = Reader::new(ob);
        let Ok(out) = take_window_output(&mut or) else { break };
        if !or.is_empty() || !r.is_empty() {
            break;
        }
        state.watermark = Some(out.window.clone());
        state.outputs.push(out);
        state.carry = carry.to_vec();
        state.aux = aux.to_vec();
        seq += 1;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_core::operator::{Degradation, WindowStats};
    use sso_types::Value;

    fn out(w: u64, rows: u64) -> WindowOutput {
        WindowOutput {
            window: Tuple::new(vec![Value::U64(w)]),
            rows: (0..rows)
                .map(|i| Tuple::new(vec![Value::U64(w), Value::U64(i), Value::F64(i as f64)]))
                .collect(),
            stats: WindowStats { tuples: rows * 2, output_rows: rows, ..Default::default() },
            degradation: Degradation::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sso-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn record(store: &mut ShardStore, w: u64, carry: &[u8], aux: &[u8]) {
        let o = out(w, 3);
        store.record_window(&WindowRecord { output: &o, carry, aux }).unwrap();
    }

    #[test]
    fn wal_only_recovery_round_trips() {
        let dir = tmpdir("walonly");
        let cfg = StoreConfig { checkpoint_every: 0, ..StoreConfig::new(&dir) };
        let mut store = ShardStore::create(&cfg, 0).unwrap();
        record(&mut store, 1, b"carry1", b"aux1");
        record(&mut store, 2, b"carry2", b"aux2");
        drop(store); // crash: no finalize
        let rec = recover_shard(&dir, 0).unwrap();
        assert_eq!(rec.outputs.len(), 2);
        assert_eq!(rec.outputs[1].rows.len(), 3);
        assert_eq!(rec.carry, b"carry2");
        assert_eq!(rec.aux, b"aux2");
        assert_eq!(rec.watermark, Some(Tuple::new(vec![Value::U64(2)])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_plus_wal_recovery() {
        let dir = tmpdir("ckptwal");
        let cfg = StoreConfig { checkpoint_every: 2, ..StoreConfig::new(&dir) };
        let mut store = ShardStore::create(&cfg, 3).unwrap();
        for w in 1..=5 {
            record(&mut store, w, format!("c{w}").as_bytes(), b"");
        }
        assert_eq!(store.ckpt_writes(), 2, "checkpoints at windows 2 and 4");
        assert_eq!(store.windows_since_ckpt(), 1);
        drop(store);
        let rec = recover_shard(&dir, 3).unwrap();
        assert_eq!(rec.outputs.len(), 5);
        assert_eq!(rec.carry, b"c5");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        let cfg = StoreConfig { checkpoint_every: 0, ..StoreConfig::new(&dir) };
        let mut store = ShardStore::create(&cfg, 0).unwrap();
        record(&mut store, 1, b"c1", b"");
        record(&mut store, 2, b"c2", b"");
        drop(store);
        // Tear the last record.
        let p = wal_path(&dir, 0);
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() - 5]).unwrap();
        let rec = recover_shard(&dir, 0).unwrap();
        assert_eq!(rec.outputs.len(), 1, "torn second record dropped");
        assert_eq!(rec.carry, b"c1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        let cfg = StoreConfig { checkpoint_every: 2, ..StoreConfig::new(&dir) };
        let mut store = ShardStore::create(&cfg, 0).unwrap();
        for w in 1..=4 {
            record(&mut store, w, format!("c{w}").as_bytes(), b"");
        }
        drop(store);
        // Flip a payload byte in the newest checkpoint; its checksum now
        // fails and recovery must use shard-0.ckpt.prev (state as of
        // window 2). The WAL is empty (truncated at the window-4
        // checkpoint), so nothing chains past it.
        let p = ckpt_path(&dir, 0);
        let mut bytes = fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&p, &bytes).unwrap();
        let rec = recover_shard(&dir, 0).unwrap();
        assert_eq!(rec.outputs.len(), 2, "previous checkpoint state");
        assert_eq!(rec.carry, b"c2");
        assert_eq!(rec.watermark, Some(Tuple::new(vec![Value::U64(2)])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_restarts_from_fresh_checkpoint() {
        let dir = tmpdir("resume");
        let cfg = StoreConfig { checkpoint_every: 0, ..StoreConfig::new(&dir) };
        let mut store = ShardStore::create(&cfg, 0).unwrap();
        record(&mut store, 1, b"c1", b"a1");
        drop(store);
        let (mut resumed, rec) = ShardStore::open_resumed(&cfg, 0).unwrap();
        assert_eq!(rec.outputs.len(), 1);
        assert_eq!(rec.carry, b"c1");
        record(&mut resumed, 2, b"c2", b"a2");
        resumed.finalize().unwrap();
        drop(resumed);
        let rec = recover_shard(&dir, 0).unwrap();
        assert_eq!(rec.outputs.len(), 2);
        assert_eq!(rec.carry, b"c2");
        assert_eq!(rec.aux, b"a2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("every=16").unwrap(), FsyncPolicy::EveryN(16));
        assert!(FsyncPolicy::parse("every=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryN(4).to_string(), "every=4");
    }
}
